#!/usr/bin/env bash
# check_bench_regression.sh MEASURED.json [BASELINE.json] [MAX_RATIO]
#
# Guards the scheduling hot path: fails when the measured greedy
# pipeline_sec at the probe size (the largest n present in the baseline,
# n=20000 as checked in) exceeds MAX_RATIO (default 1.5) times the
# checked-in baseline. Both files use the BENCH_pipeline.json schema
# (runs[] per GOMAXPROCS setting); the first run of each file is compared.
#
# Caveat — this is a cross-hardware wall-clock comparison: the baseline was
# recorded single-threaded on a 1-CPU container, and the CI gate pins
# GOMAXPROCS=1 to match, but a markedly slower runner generation can still
# trip it without a code change. If the gate reddens on unrelated PRs,
# re-record BENCH_baseline.json on current CI hardware
# (`GOMAXPROCS=1 go run ./cmd/aggrate bench --sizes 20000 --naive-max 0
# --algo greedy --procs 1 --out BENCH_baseline.json`) or pass a larger
# MAX_RATIO as the third argument rather than deleting the gate.
set -euo pipefail

measured=${1:?usage: check_bench_regression.sh MEASURED.json [BASELINE.json] [MAX_RATIO]}
baseline=${2:-$(dirname "$0")/../BENCH_baseline.json}
max_ratio=${3:-1.5}

python3 - "$measured" "$baseline" "$max_ratio" <<'EOF'
import json, sys

measured_path, baseline_path, max_ratio = sys.argv[1], sys.argv[2], float(sys.argv[3])

def greedy_pipeline_secs(path):
    with open(path) as f:
        report = json.load(f)
    out = {}
    for entry in report["runs"][0]["entries"]:
        for algo in entry["algos"]:
            if algo["algo"] == "greedy":
                out[entry["n"]] = algo["pipeline_sec"]
    return out

base = greedy_pipeline_secs(baseline_path)
meas = greedy_pipeline_secs(measured_path)
if not base:
    sys.exit(f"{baseline_path}: no greedy entries")
n = max(n for n in base if n in meas) if any(n in meas for n in base) else None
if n is None:
    sys.exit(f"{measured_path}: no size overlaps the baseline sizes {sorted(base)}")

ratio = meas[n] / base[n]
print(f"greedy n={n}: measured {meas[n]:.3f}s vs baseline {base[n]:.3f}s -> {ratio:.2f}x (limit {max_ratio}x)")
if ratio > max_ratio:
    sys.exit(f"pipeline regression: {ratio:.2f}x exceeds the {max_ratio}x budget")
EOF
