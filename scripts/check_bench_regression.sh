#!/usr/bin/env bash
# check_bench_regression.sh MEASURED.json [BASELINE.json] [MAX_RATIO]
#
# Guards the scheduling and verification hot paths: fails when, at the probe
# size (the largest measured n present in the baseline, n=20000 as checked
# in), the measured greedy pipeline_sec, build_sec, mst_sec, or verify_sec
# exceeds MAX_RATIO (default 1.5) times the checked-in baseline; when the run-level
# kernel_ns_per_pair (the symmetric near-field kernel micro-measurement)
# exceeds MAX_RATIO times the baseline's — and, independently of the
# baseline, when the fast verify engine's exact_pairs_frac exceeds 0.05 at
# the probe size, when the probe instance escalated γ without the retry
# being served from the lookahead filter scan (build_reused), or when the
# probe's grid-warm re-verify reports verify_grid_reused == 0 (the
# persistent slot structures stopped being reused), or when the conflict
# build's candidate-efficiency ratio (build_cand_scanned per
# build_cand_accepted — distance tests per accepted edge) exceeds the
# baseline's by more than 5%, meaning the per-cell bbox/min-length screen
# stopped rejecting cells. The
# fraction gate is hardware-independent: it measures how
# much of the naive O(m²) pairwise work the engine performed, so a blown
# far-field bound or broken refinement ladder trips it even on a fast
# runner. Both files use the BENCH_pipeline.json schema (runs[] per
# GOMAXPROCS setting); the first run of each file is compared.
#
# Caveat — the time gates are a cross-hardware wall-clock comparison: the
# baseline was recorded single-threaded on a 1-CPU container, and the CI
# gate pins GOMAXPROCS=1 to match, but a markedly slower runner generation
# can still trip it without a code change. If the gate reddens on unrelated
# PRs, re-record BENCH_baseline.json on current CI hardware
# (`GOMAXPROCS=1 go run ./cmd/aggrate bench --sizes 20000 --naive-max 0
# --algo greedy --procs 1 --out BENCH_baseline.json`) or pass a larger
# MAX_RATIO as the third argument rather than deleting the gate.
set -euo pipefail

measured=${1:?usage: check_bench_regression.sh MEASURED.json [BASELINE.json] [MAX_RATIO]}
baseline=${2:-$(dirname "$0")/../BENCH_baseline.json}
max_ratio=${3:-1.5}

python3 - "$measured" "$baseline" "$max_ratio" <<'EOF'
import json, sys

measured_path, baseline_path, max_ratio = sys.argv[1], sys.argv[2], float(sys.argv[3])
MAX_EXACT_PAIRS_FRAC = 0.05

def greedy_rows(path):
    with open(path) as f:
        report = json.load(f)
    run = report["runs"][0]
    out, entries = {}, {}
    for entry in run["entries"]:
        entries[entry["n"]] = entry
        for algo in entry["algos"]:
            if algo["algo"] == "greedy":
                out[entry["n"]] = algo
    return out, entries, run.get("kernel_ns_per_pair", 0.0)

base, base_entries, base_kernel = greedy_rows(baseline_path)
meas, meas_entries, meas_kernel = greedy_rows(measured_path)
if not base:
    sys.exit(f"{baseline_path}: no greedy entries")
n = max((n for n in base if n in meas), default=None)
if n is None:
    sys.exit(f"{measured_path}: no size overlaps the baseline sizes {sorted(base)}")

failures = []
for field in ("pipeline_sec", "build_sec", "verify_sec"):
    b, m = base[n].get(field), meas[n].get(field)
    if not b:
        print(f"greedy n={n}: baseline lacks {field}; skipping its time gate")
        continue
    ratio = m / b
    print(f"greedy n={n}: {field} {m:.3f}s vs baseline {b:.3f}s -> {ratio:.2f}x (limit {max_ratio}x)")
    if ratio > max_ratio:
        failures.append(f"{field} regression: {ratio:.2f}x exceeds the {max_ratio}x budget")

# EMST gate: entry-level mst_sec at the probe size — the Boruvka grid walk
# (supercell skips, champion cache) regressing shows up here, not in the
# greedy stage split.
b, m = base_entries[n].get("mst_sec", 0.0), meas_entries[n].get("mst_sec", 0.0)
if b > 0:
    ratio = m / b
    print(f"n={n}: mst_sec {m:.3f}s vs baseline {b:.3f}s -> {ratio:.2f}x (limit {max_ratio}x)")
    if ratio > max_ratio:
        failures.append(f"mst_sec regression: {ratio:.2f}x exceeds the {max_ratio}x budget")
else:
    print(f"n={n}: baseline lacks mst_sec; skipping the EMST gate")

# Candidate-efficiency gate: distance tests per accepted edge in the greedy
# conflict build, hardware-independent. A loosened per-cell screen (bbox or
# min-length) inflates the ratio even when faster hardware hides the time.
CAND_RATIO_SLACK = 1.05
bs, ba = base[n].get("build_cand_scanned", 0), base[n].get("build_cand_accepted", 0)
ms, ma = meas[n].get("build_cand_scanned", 0), meas[n].get("build_cand_accepted", 0)
if bs and ba and ms and ma:
    br, mr = bs / ba, ms / ma
    print(f"greedy n={n}: cand_scanned/accepted {mr:.3f} vs baseline {br:.3f} (limit {CAND_RATIO_SLACK}x)")
    if mr > br * CAND_RATIO_SLACK:
        failures.append(
            f"candidate-efficiency regression: {mr:.3f} tests/edge exceeds "
            f"baseline {br:.3f} by more than {CAND_RATIO_SLACK}x")
else:
    print(f"greedy n={n}: candidate counters absent (base {bs}/{ba}, measured {ms}/{ma}); skipping the efficiency gate")

# γ-lookahead gate: the probe instance (γ=2 oblivious) escalates, and the
# retry's conflict graph must come from the lookahead filter scan — a lost
# build_reused means every escalation pays a second full build again.
retries = meas[n].get("gamma_retries", 0)
reused = meas[n].get("build_reused", False)
print(f"greedy n={n}: gamma_retries {retries}, build_reused {reused}")
if retries >= 1 and not reused:
    failures.append(
        "lookahead regression: the escalating probe instance rebuilt its "
        "conflict graph from scratch instead of filtering the lookahead build")

# Kernel gate: a run-level micro-measurement of the symmetric near-field
# kernel, free of slot-structure and cache effects — a lost unroll or a
# reintroduced per-pair math.Pow shows up here even when structure reuse
# hides it from verify_sec.
if base_kernel > 0 and meas_kernel > 0:
    ratio = meas_kernel / base_kernel
    print(f"kernel_ns_per_pair {meas_kernel:.3f} vs baseline {base_kernel:.3f} -> {ratio:.2f}x (limit {max_ratio}x)")
    if ratio > max_ratio:
        failures.append(
            f"kernel regression: {ratio:.2f}x exceeds the {max_ratio}x budget")
else:
    print(f"kernel_ns_per_pair: baseline {base_kernel}, measured {meas_kernel}; skipping the kernel gate")

# Persistent-slot-structure gate: the probe's grid-warm re-verify drops the
# cached margins but keeps the built slot structures; zero reused grids
# means every re-verified slot paid buildGrid again.
grid_reused = meas[n].get("verify_grid_reused", 0)
print(f"greedy n={n}: verify_grid_reused {grid_reused}")
if meas[n].get("verify_grid_warm_sec", 0.0) > 0 and grid_reused == 0:
    failures.append(
        "slot-structure regression: the grid-warm re-verify rebuilt every "
        "slot grid instead of reusing the cached structures")

frac = meas[n].get("exact_pairs_frac", 0.0)
print(f"greedy n={n}: exact_pairs_frac {frac:.4g} (limit {MAX_EXACT_PAIRS_FRAC})")
if not 0 < frac <= MAX_EXACT_PAIRS_FRAC:
    failures.append(
        f"exact_pairs_frac {frac:.4g} outside (0, {MAX_EXACT_PAIRS_FRAC}]: "
        "the fast engine is doing too much exact pairwise work")

if failures:
    sys.exit("; ".join(failures))
EOF
