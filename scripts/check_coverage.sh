#!/usr/bin/env bash
# Runs the test suite with coverage and enforces the per-package floors in
# scripts/coverage_floors.txt. Exits non-zero if any listed package tests
# fail, is missing from the output (e.g. its tests were deleted), or covers
# fewer statements than its floor.
set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-coverage.out}"
out="$(go test -coverprofile="$profile" ./... 2>&1)" || { echo "$out"; exit 1; }
echo "$out"

fail=0
while read -r pkg floor; do
    case "$pkg" in ''|\#*) continue ;; esac
    pct="$(echo "$out" | awk -v p="$pkg" '$1=="ok" && $2==p {
        for (i = 1; i <= NF; i++) if ($i ~ /%$/) { sub(/%.*/, "", $i); print $i }
    }')"
    if [ -z "$pct" ]; then
        echo "COVERAGE FAIL: no coverage reported for $pkg (tests missing?)"
        fail=1
        continue
    fi
    if awk -v got="$pct" -v want="$floor" 'BEGIN { exit !(got+0 < want+0) }'; then
        echo "COVERAGE FAIL: $pkg at ${pct}% < floor ${floor}%"
        fail=1
    else
        echo "coverage ok: $pkg ${pct}% >= ${floor}%"
    fi
done < scripts/coverage_floors.txt
exit "$fail"
