module aggrate

go 1.22
