// aggrate loadtest: drive a running `aggrate serve` instance with
// heavy-tailed spec-grid traffic and measure what the serve tier actually
// delivers — throughput, end-to-end latency percentiles, cache-hit rate,
// and how often admission control pushed back. Results land in
// BENCH_serve.json next to the other BENCH_*.json artifacts.
//
// Traffic model: each simulated client (own X-API-Key) submits jobs whose
// grid size is Zipf-distributed over an n ladder — most jobs are small,
// a heavy tail is large — and whose seeds are drawn from a small pool, so
// repeated specs occur and the result cache sees realistic reuse. Rejections
// (429/503) are retried with jittered exponential backoff honoring the
// server's Retry-After header.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aggrate/internal/stats"
)

// ltJob is one submitted job's measured outcome.
type ltJob struct {
	latencySec float64
	completed  int
	cacheHits  int
	status     string
	finishedAt time.Time
}

// ltStats aggregates across clients under one mutex.
type ltStats struct {
	mu        sync.Mutex
	submitted int
	done      []ltJob
	failed    int
	retries   int
	rejected  map[string]int // error code -> count
}

// LoadReport is the BENCH_serve.json shape.
type LoadReport struct {
	Addr        string    `json:"addr"`
	GeneratedAt time.Time `json:"generated_at"`
	DurationSec float64   `json:"duration_sec"`
	Clients     int       `json:"clients"`
	Seed        uint64    `json:"seed"`

	JobsSubmitted int            `json:"jobs_submitted"`
	JobsDone      int            `json:"jobs_done"`
	JobsFailed    int            `json:"jobs_failed"`
	Retries       int            `json:"retries"`
	Rejected      map[string]int `json:"rejected_by_code"`

	SpecsCompleted int     `json:"specs_completed"`
	CacheHits      int     `json:"cache_hits"`
	CacheHitRate   float64 `json:"cache_hit_rate"`

	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	LatencySec           struct {
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Max  float64 `json:"max"`
	} `json:"latency_sec"`

	// Curve is the per-second completion timeline: throughput and cache-hit
	// behavior over the run, not just the final averages.
	Curve []CurvePoint `json:"curve"`

	// Instance-cache telemetry, sampled from the server's /metrics once per
	// second: the deployment-build (gen+EMST+lookahead) cache shared across
	// jobs, as opposed to the per-spec result cache above. Totals are deltas
	// over the run (the counters are cumulative since server start), and the
	// curve shows how the hit rate climbs as the seed pool gets covered.
	InstanceCacheHits    int64            `json:"instance_cache_hits"`
	InstanceCacheMisses  int64            `json:"instance_cache_misses"`
	InstanceCacheHitRate float64          `json:"instance_cache_hit_rate"`
	InstanceCacheCurve   []InstCachePoint `json:"instance_cache_curve,omitempty"`

	// Pre-power schedule-stage cache telemetry, sampled from the same
	// /metrics scrapes: stage builds (ordering+coloring+schedule skeleton)
	// reused across power-scheme variants and γ rungs of one deployment.
	// Run-delta totals, like the instance-cache numbers above.
	SchedCacheHits    int64   `json:"sched_cache_hits"`
	SchedCacheMisses  int64   `json:"sched_cache_misses"`
	SchedCacheHitRate float64 `json:"sched_cache_hit_rate"`
}

// InstCachePoint is one /metrics sample of the instance cache: cumulative
// hit/miss deltas since the run started, the interval's delta hit rate, the
// entry gauge at sample time, and the schedule-stage cache's counter deltas
// riding along from the same scrape.
type InstCachePoint struct {
	T           int     `json:"t"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	Entries     int     `json:"entries"`
	SchedHits   int64   `json:"sched_hits"`
	SchedMisses int64   `json:"sched_misses"`
}

// CurvePoint is one second of the timeline.
type CurvePoint struct {
	T         int     `json:"t"`
	JobsDone  int     `json:"jobs_done"`
	Specs     int     `json:"specs"`
	CacheHits int     `json:"cache_hits"`
	HitRate   float64 `json:"hit_rate"`
}

// ltNLadder is the grid-size ladder the Zipf draw indexes into: mostly tiny
// grids, occasionally hundreds of nodes.
var ltNLadder = []int{40, 60, 80, 120, 200, 300, 500}

func cmdLoadtest(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("loadtest", stderr)
	addr := fs.String("addr", "", "base URL of a running server, e.g. http://127.0.0.1:8080 (required)")
	duration := fs.Duration("duration", 20*time.Second, "how long to submit new jobs")
	clients := fs.Int("clients", 4, "concurrent simulated clients (each its own X-API-Key)")
	seed := fs.Uint64("seed", 1, "traffic RNG seed (deterministic per client)")
	seedPool := fs.Int("seed-pool", 16, "distinct experiment seeds drawn per client; smaller = more cache reuse")
	out := fs.String("out", "BENCH_serve.json", "report path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadtest takes no positional arguments, got %q", fs.Args())
	}
	if *addr == "" {
		return fmt.Errorf("--addr is required (a running 'aggrate serve' base URL)")
	}
	if *clients < 1 || *duration <= 0 || *seedPool < 1 {
		return fmt.Errorf("--clients, --duration, and --seed-pool must be positive")
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}

	st := &ltStats{rejected: make(map[string]int)}
	httpc := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	deadline := start.Add(*duration)
	stopSampler := make(chan struct{})
	samples := make(chan []InstCachePoint, 1)
	go ltSampleInstanceCache(httpc, base, start, stopSampler, samples)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ltClient(httpc, base, fmt.Sprintf("lt-%d", c),
				rand.New(rand.NewSource(int64(*seed)+int64(c))), *seedPool, deadline, st)
		}(c)
	}
	wg.Wait()
	close(stopSampler)
	elapsed := time.Since(start).Seconds()

	rep := buildReport(base, st, start, elapsed, *clients, *seed)
	attachInstanceCacheCurve(rep, <-samples)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr,
		"aggrate loadtest: %d submitted, %d done, %d failed, %d retries, %.2f jobs/s, p50=%.3fs p95=%.3fs p99=%.3fs, cache hit rate %.2f -> %s\n",
		rep.JobsSubmitted, rep.JobsDone, rep.JobsFailed, rep.Retries, rep.ThroughputJobsPerSec,
		rep.LatencySec.P50, rep.LatencySec.P95, rep.LatencySec.P99, rep.CacheHitRate, *out)
	return nil
}

// ltClient is one client's submit→poll loop until the deadline.
func ltClient(httpc *http.Client, base, apiKey string, rng *rand.Rand, seedPool int, deadline time.Time, st *ltStats) {
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(ltNLadder)-1))
	verify := true
	for time.Now().Before(deadline) {
		req := map[string]any{
			"scenarios": []string{"uniform"},
			"ns":        []int{ltNLadder[zipf.Uint64()]},
			"seeds":     1 + rng.Intn(2),
			"seed":      1 + uint64(rng.Intn(seedPool)),
			"algos":     []string{"greedy"},
			"verify":    verify,
			"priority":  rng.Intn(3),
		}
		id, submitted := ltSubmit(httpc, base, apiKey, req, rng, deadline, st)
		if !submitted {
			continue
		}
		ltAwait(httpc, base, id, time.Now(), st)
	}
}

// ltSubmit POSTs one job, retrying rejections with jittered exponential
// backoff that honors Retry-After. Returns the job id on acceptance.
func ltSubmit(httpc *http.Client, base, apiKey string, req map[string]any, rng *rand.Rand, deadline time.Time, st *ltStats) (string, bool) {
	backoff := 100 * time.Millisecond
	for time.Now().Before(deadline) {
		body, _ := json.Marshal(req)
		hreq, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return "", false
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-API-Key", apiKey)
		resp, err := httpc.Do(hreq)
		if err != nil {
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		var payload struct {
			ID   string `json:"id"`
			Code string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			st.mu.Lock()
			st.submitted++
			st.mu.Unlock()
			return payload.ID, true
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			st.mu.Lock()
			st.retries++
			code := payload.Code
			if code == "" {
				code = fmt.Sprintf("http_%d", resp.StatusCode)
			}
			st.rejected[code]++
			st.mu.Unlock()
			wait := backoff
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			// Jitter in [0.5, 1.5) de-synchronizes clients that were rejected
			// together; the exponential term still grows on repeated rejection.
			wait = time.Duration(float64(wait) * (0.5 + rng.Float64()))
			if remaining := time.Until(deadline); wait > remaining {
				return "", false
			}
			time.Sleep(wait)
			backoff *= 2
			if backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
		default:
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return "", false
		}
	}
	return "", false
}

// ltAwait polls the job until it reaches a terminal state, then records the
// submit→terminal latency.
func ltAwait(httpc *http.Client, base, id string, submitAt time.Time, st *ltStats) {
	for {
		resp, err := httpc.Get(base + "/v1/jobs/" + id + "?results=false")
		if err != nil {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		var payload struct {
			Status    string `json:"status"`
			Completed int    `json:"completed"`
			CacheHits int    `json:"cache_hits"`
		}
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			return
		}
		switch payload.Status {
		case "done", "cancelled", "interrupted":
			st.mu.Lock()
			st.done = append(st.done, ltJob{
				latencySec: time.Since(submitAt).Seconds(),
				completed:  payload.Completed,
				cacheHits:  payload.CacheHits,
				status:     payload.Status,
				finishedAt: time.Now(),
			})
			if payload.Status != "done" {
				st.failed++
			}
			st.mu.Unlock()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func buildReport(addr string, st *ltStats, start time.Time, elapsed float64, clients int, seed uint64) *LoadReport {
	st.mu.Lock()
	defer st.mu.Unlock()
	rep := &LoadReport{
		Addr: addr, GeneratedAt: time.Now().UTC(),
		DurationSec: elapsed, Clients: clients, Seed: seed,
		JobsSubmitted: st.submitted, JobsFailed: st.failed,
		Retries: st.retries, Rejected: st.rejected,
	}
	var lat []float64
	curve := make(map[int]*CurvePoint)
	for _, j := range st.done {
		if j.status == "done" {
			rep.JobsDone++
			lat = append(lat, j.latencySec)
		}
		rep.SpecsCompleted += j.completed
		rep.CacheHits += j.cacheHits
		t := int(j.finishedAt.Sub(start).Seconds())
		cp := curve[t]
		if cp == nil {
			cp = &CurvePoint{T: t}
			curve[t] = cp
		}
		cp.JobsDone++
		cp.Specs += j.completed
		cp.CacheHits += j.cacheHits
	}
	if rep.SpecsCompleted > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.SpecsCompleted)
	}
	if elapsed > 0 {
		rep.ThroughputJobsPerSec = float64(rep.JobsDone) / elapsed
	}
	if len(lat) > 0 {
		rep.LatencySec.Mean = stats.Mean(lat)
		rep.LatencySec.P50 = stats.Percentile(lat, 50)
		rep.LatencySec.P95 = stats.Percentile(lat, 95)
		rep.LatencySec.P99 = stats.Percentile(lat, 99)
		rep.LatencySec.Max = stats.Max(lat)
	}
	ts := make([]int, 0, len(curve))
	for t := range curve {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	for _, t := range ts {
		cp := curve[t]
		if cp.Specs > 0 {
			cp.HitRate = float64(cp.CacheHits) / float64(cp.Specs)
		}
		rep.Curve = append(rep.Curve, *cp)
	}
	return rep
}

// ltInstScrape is one /metrics reading of the two stage-split caches: the
// instance (deployment) cache counters and entry gauge, and the pre-power
// schedule-stage cache counters.
type ltInstScrape struct {
	hits, misses           int64
	entries                int
	schedHits, schedMisses int64
	ok                     bool
}

// ltScrapeInstanceCache reads the instance-cache and schedule-stage-cache
// counters from one /metrics scrape. A failed scrape or a server without the
// series (pre-instance-cache build, --instance-cache -1) reports ok=false.
func ltScrapeInstanceCache(httpc *http.Client, base string) (s ltInstScrape) {
	resp, err := httpc.Get(base + "/metrics")
	if err != nil {
		return s
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		name, val, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		switch name {
		case "aggrate_instance_cache_hits_total":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				s.hits, s.ok = v, true
			}
		case "aggrate_instance_cache_misses_total":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				s.misses, s.ok = v, true
			}
		case "aggrate_instance_cache_entries":
			if v, err := strconv.Atoi(val); err == nil {
				s.entries = v
			}
		case "aggrate_sched_cache_hits_total":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				s.schedHits = v
			}
		case "aggrate_sched_cache_misses_total":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				s.schedMisses = v
			}
		}
	}
	return s
}

// ltSampleInstanceCache polls /metrics once per second until stop closes,
// recording instance-cache counter deltas relative to the first scrape (the
// counters are cumulative since server start, and the server may be warm).
// The collected samples are delivered on out exactly once.
func ltSampleInstanceCache(httpc *http.Client, base string, start time.Time, stop <-chan struct{}, out chan<- []InstCachePoint) {
	var pts []InstCachePoint
	var base0 ltInstScrape
	baselined := false
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	sample := func() {
		s := ltScrapeInstanceCache(httpc, base)
		if !s.ok {
			return
		}
		if !baselined {
			base0, baselined = s, true
		}
		pts = append(pts, InstCachePoint{
			T:           int(time.Since(start).Seconds()),
			Hits:        s.hits - base0.hits,
			Misses:      s.misses - base0.misses,
			Entries:     s.entries,
			SchedHits:   s.schedHits - base0.schedHits,
			SchedMisses: s.schedMisses - base0.schedMisses,
		})
	}
	sample() // t=0 baseline
	for {
		select {
		case <-stop:
			sample() // final totals
			out <- pts
			return
		case <-tick.C:
			sample()
		}
	}
}

// attachInstanceCacheCurve folds the sampler's points into the report:
// per-interval delta hit rates on the curve, run totals from the last
// sample. No samples (scrape failures, cache disabled) leaves the fields
// zero and the curve absent.
func attachInstanceCacheCurve(rep *LoadReport, pts []InstCachePoint) {
	if len(pts) == 0 {
		return
	}
	for i := range pts {
		dh, dm := pts[i].Hits, pts[i].Misses
		if i > 0 {
			dh -= pts[i-1].Hits
			dm -= pts[i-1].Misses
		}
		if dh+dm > 0 {
			pts[i].HitRate = float64(dh) / float64(dh+dm)
		}
	}
	last := pts[len(pts)-1]
	rep.InstanceCacheHits = last.Hits
	rep.InstanceCacheMisses = last.Misses
	if total := last.Hits + last.Misses; total > 0 {
		rep.InstanceCacheHitRate = float64(last.Hits) / float64(total)
	}
	rep.SchedCacheHits = last.SchedHits
	rep.SchedCacheMisses = last.SchedMisses
	if total := last.SchedHits + last.SchedMisses; total > 0 {
		rep.SchedCacheHitRate = float64(last.SchedHits) / float64(total)
	}
	rep.InstanceCacheCurve = pts
}
