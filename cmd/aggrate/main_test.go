package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"aggrate/internal/scheduler"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// runCLI invokes runMain with captured streams.
func runCLI(args ...string) (stdout, stderr string, code int) {
	var out, errw bytes.Buffer
	code = runMain(args, &out, &errw)
	return out.String(), errw.String(), code
}

// timingKeys are the JSON fields whose values depend on wall clock, zeroed
// before golden comparison. Everything else in the output is a deterministic
// function of the seed.
var timingKeys = map[string]bool{
	"generate_sec": true, "mst_sec": true, "build_sec": true,
	"build_filter_sec": true,
	"order_sec":        true, "color_sec": true, "refine_sec": true,
	"verify_sec": true, "verify_warm_sec": true,
	"verify_grid_warm_sec": true, "kernel_ns_per_pair": true,
	"power_solve_sec": true, "verify_naive_sec": true, "verify_speedup": true,
	"total_sec": true, "mean_total_sec": true, "pipeline_sec": true,
	"naive_sec": true, "speedup": true, "gomaxprocs": true,
	// Not a timing, but scheduling-dependent all the same: which spec of a
	// same-deployment group pays the build (and which reuse it) depends on
	// worker interleaving, so the flag is scrubbed like a wall-clock field.
	"deploy_reused": true,
}

// normalizeJSON parses arbitrary JSON and zeroes every timing-dependent
// field, then re-encodes with stable indentation.
func normalizeJSON(t *testing.T, data string) string {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(data), &v); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, data)
	}
	v = scrub(v)
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + "\n"
}

func scrub(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			if timingKeys[k] {
				x[k] = 0
			} else {
				x[k] = scrub(val)
			}
		}
		return x
	case []any:
		for i, val := range x {
			x[i] = scrub(val)
		}
		return x
	default:
		return v
	}
}

// normalizeCSV zeroes the wall-clock stage columns.
func normalizeCSV(t *testing.T, data string) string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, data)
	}
	if len(rows) == 0 {
		t.Fatal("empty CSV output")
	}
	timingCols := map[string]bool{
		"build_sec": true, "build_filter_sec": true, "order_sec": true,
		"color_sec": true, "verify_sec": true, "total_sec": true,
	}
	var cols []int
	for i, name := range rows[0] {
		if timingCols[name] {
			cols = append(cols, i)
		}
	}
	if len(cols) != len(timingCols) {
		t.Fatalf("CSV header is missing timing columns (found %d of %d): %v",
			len(cols), len(timingCols), rows[0])
	}
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	for r, row := range rows {
		if r > 0 {
			for _, c := range cols {
				row[c] = "0"
			}
		}
		if err := cw.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	return buf.String()
}

var tableTime = regexp.MustCompile(`\d+\.\d+s`)

// normalizeTable blanks wall-clock durations in the human-readable compare
// table.
func normalizeTable(data string) string {
	return tableTime.ReplaceAllString(data, "X.XXXs")
}

// checkGolden compares got against testdata/<name> (rewriting it under
// -update).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run 'go test ./cmd/... -update'): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestRunJSONGolden pins the full JSON output shape of `run` — results and
// summaries across two algorithms on a tiny fixed-seed batch.
func TestRunJSONGolden(t *testing.T) {
	stdout, _, code := runCLI("run", "--scenario", "uniform", "--n", "60",
		"--seeds", "2", "--seed", "7", "--algo", "greedy,lengthclass")
	if code != 0 {
		t.Fatalf("run exited %d", code)
	}
	checkGolden(t, "run_json.golden", normalizeJSON(t, stdout))
}

// TestRunCSVGolden pins the CSV schema and row content.
func TestRunCSVGolden(t *testing.T) {
	stdout, _, code := runCLI("run", "--scenario", "uniform", "--n", "60",
		"--seeds", "2", "--seed", "7", "--algo", "greedy,naive", "--format", "csv")
	if code != 0 {
		t.Fatalf("run exited %d", code)
	}
	checkGolden(t, "run_csv.golden", normalizeCSV(t, stdout))
}

// TestRunSummaryOnlyGolden pins the summaries-only JSON form.
func TestRunSummaryOnlyGolden(t *testing.T) {
	stdout, _, code := runCLI("run", "--scenario", "line", "--n", "40",
		"--seeds", "2", "--seed", "3", "--summary-only")
	if code != 0 {
		t.Fatalf("run exited %d", code)
	}
	checkGolden(t, "run_summary.golden", normalizeJSON(t, stdout))
}

// TestBenchJSONGolden pins the bench report schema, including the
// per-strategy trajectory, on a tiny instance.
func TestBenchJSONGolden(t *testing.T) {
	stdout, _, code := runCLI("bench", "--sizes", "80,120", "--seed", "5", "--out", "-")
	if code != 0 {
		t.Fatalf("bench exited %d", code)
	}
	checkGolden(t, "bench_json.golden", normalizeJSON(t, stdout))
}

// TestCompareTableGolden pins the human-readable compare table across all
// registered strategies.
func TestCompareTableGolden(t *testing.T) {
	stdout, _, code := runCLI("compare", "--scenario", "uniform", "--n", "80",
		"--seeds", "2", "--seed", "9")
	if code != 0 {
		t.Fatalf("compare exited %d", code)
	}
	checkGolden(t, "compare_table.golden", normalizeTable(stdout))
}

// TestCompareJSONOut: --out - routes the JSON payload to stdout after the
// table; both must stay parseable.
func TestCompareJSONOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "compare.json")
	_, _, code := runCLI("compare", "--scenario", "uniform", "--n", "60",
		"--seeds", "1", "--out", path)
	if code != 0 {
		t.Fatalf("compare exited %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Summaries []json.RawMessage `json:"summaries"`
		Results   []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("compare --out payload not JSON: %v", err)
	}
	if want := len(scheduler.Names()); len(payload.Summaries) != want || len(payload.Results) != want {
		t.Fatalf("compare payload has %d summaries / %d results, want %d/%d",
			len(payload.Summaries), len(payload.Results), want, want)
	}
}

// TestFlagValidation: bad flag combinations and unknown enum values must
// fail fast with exit code 1 and a pointed message, before any instance
// runs.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"summary-only csv", []string{"run", "--summary-only", "--format", "csv"}, "--summary-only requires --format json"},
		{"bad format", []string{"run", "--format", "yaml"}, `unknown --format "yaml"`},
		{"bad graph", []string{"run", "--graph", "bogus"}, `unknown --graph "bogus"`},
		{"bad power", []string{"run", "--power", "bogus"}, `unknown --power "bogus"`},
		{"bad algo", []string{"run", "--algo", "bogus"}, `unknown --algo "bogus"`},
		{"empty algo", []string{"run", "--algo", ","}, "--algo is empty"},
		{"bad scenario", []string{"run", "--scenario", "bogus"}, "bogus"},
		{"bad n", []string{"run", "--n", "abc"}, "bad --n"},
		{"compare bad algo", []string{"compare", "--algo", "bogus"}, `unknown --algo "bogus"`},
		{"compare bad graph", []string{"compare", "--graph", "bogus"}, `unknown --graph "bogus"`},
		{"compare bad power", []string{"compare", "--power", "bogus"}, `unknown --power "bogus"`},
		{"bench bad algo", []string{"bench", "--algo", "bogus"}, `unknown --algo "bogus"`},
		{"bench bad procs", []string{"bench", "--procs", "abc"}, "bad --procs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runCLI(tc.args...)
			if code != 1 {
				t.Fatalf("exit code %d, want 1 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr %q does not contain %q", stderr, tc.wantErr)
			}
		})
	}
}

// TestProfilingFlags: --cpuprofile/--memprofile write non-empty pprof files
// on both run and bench.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if _, stderr, code := runCLI("run", "--scenario", "uniform", "--n", "60",
		"--cpuprofile", cpu, "--memprofile", mem); code != 0 {
		t.Fatalf("run with profiles exited %d: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	benchCPU := filepath.Join(dir, "bench_cpu.pprof")
	if _, stderr, code := runCLI("bench", "--sizes", "80", "--algo", "greedy",
		"--cpuprofile", benchCPU, "--out", filepath.Join(dir, "bench.json")); code != 0 {
		t.Fatalf("bench with profile exited %d: %s", code, stderr)
	}
	if st, err := os.Stat(benchCPU); err != nil || st.Size() == 0 {
		t.Fatalf("bench profile missing or empty (err=%v)", err)
	}
}

// TestUsagePaths: no arguments and unknown subcommands exit 2 with usage;
// help exits 0.
func TestUsagePaths(t *testing.T) {
	if _, stderr, code := runCLI(); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Fatalf("no args: code=%d stderr=%q", code, stderr)
	}
	if _, stderr, code := runCLI("frobnicate"); code != 2 || !strings.Contains(stderr, "unknown subcommand") {
		t.Fatalf("unknown subcommand: code=%d stderr=%q", code, stderr)
	}
	if _, _, code := runCLI("help"); code != 0 {
		t.Fatalf("help exited %d", code)
	}
	if _, _, code := runCLI("run", "-h"); code != 0 {
		t.Fatalf("run -h exited %d, want 0 (explicit help request succeeds)", code)
	}
}

// TestRunNDJSONGolden pins the NDJSON output: one result object per line,
// spec order, same schema as the JSON results array.
func TestRunNDJSONGolden(t *testing.T) {
	stdout, _, code := runCLI("run", "--scenario", "uniform", "--n", "60",
		"--seeds", "2", "--seed", "7", "--algo", "greedy,naive", "--format", "ndjson")
	if code != 0 {
		t.Fatalf("run exited %d", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 4 {
		t.Fatalf("ndjson emitted %d lines, want 4", len(lines))
	}
	var normalized strings.Builder
	for _, line := range lines {
		normalized.WriteString(normalizeJSON(t, line))
	}
	checkGolden(t, "run_ndjson.golden", normalized.String())
}

// TestRunTimeoutFlushesPartial: an expired --timeout cancels the batch and
// the incremental CSV still holds every completed row — no discarded work,
// no torn lines.
func TestRunTimeoutFlushesPartial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "partial.csv")
	// 400 × 2000-node instances cannot finish in 300ms.
	_, stderr, code := runCLI("run", "--scenario", "uniform", "--n", "2000",
		"--seeds", "400", "--format", "csv", "--out", path, "--timeout", "300ms")
	if code != 1 {
		t.Fatalf("timed-out run exited %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "interrupted") {
		t.Fatalf("stderr does not report the interruption: %s", stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("flushed CSV does not parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("flushed CSV has %d rows, want header plus at least one completed result", len(rows))
	}
	if len(rows) >= 401 {
		t.Fatalf("timed-out run flushed all %d rows — cancellation never fired", len(rows)-1)
	}
	for i, row := range rows[1:] {
		if len(row) != len(rows[0]) || row[len(row)-1] != "" {
			t.Fatalf("row %d incomplete or failed: %v", i, row)
		}
	}
}

// TestRunSIGINTFlush: a real SIGINT mid-batch exits with the interruption
// error after flushing the completed prefix — the graceful Ctrl-C path.
func TestRunSIGINTFlush(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGINT delivery on windows")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sigint.csv")
	type outcome struct {
		stderr string
		code   int
	}
	done := make(chan outcome, 1)
	go func() {
		// A batch far too large to finish: the test always interrupts it.
		_, stderr, code := runCLI("run", "--scenario", "uniform", "--n", "3000",
			"--seeds", "2000", "--format", "csv", "--out", path)
		done <- outcome{stderr, code}
	}()
	// Wait until at least one data row is flushed, then interrupt.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(path); err == nil && bytes.Count(data, []byte("\n")) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no incremental row appeared before the interrupt")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-done:
		if o.code != 1 || !strings.Contains(o.stderr, "interrupted") {
			t.Fatalf("SIGINT run: code=%d stderr=%s", o.code, o.stderr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after SIGINT")
	}
	rows, err := csv.NewReader(bytes.NewReader(mustRead(t, path))).ReadAll()
	if err != nil {
		t.Fatalf("flushed CSV does not parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("flushed CSV has %d rows, want completed results", len(rows))
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServeFlagValidation: serve rejects positional arguments and bad
// listen addresses before binding anything.
func TestServeFlagValidation(t *testing.T) {
	if _, stderr, code := runCLI("serve", "extra"); code != 1 ||
		!strings.Contains(stderr, "no positional arguments") {
		t.Fatalf("serve with positional arg: code=%d stderr=%s", code, stderr)
	}
	if _, stderr, code := runCLI("serve", "--addr", "not-an-address:::"); code != 1 {
		t.Fatalf("serve with bad addr: code=%d stderr=%s", code, stderr)
	}
}
