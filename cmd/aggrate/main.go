// Command aggrate runs the paper's aggregation-scheduling experiment loop
// end-to-end: deployment scenario → MST aggregation tree → scheduling
// strategy (conflict graph + coloring) → TDMA schedule → SINR verification.
//
// Subcommands:
//
//	aggrate run     — execute a (scenario × n × seed × power × algo) batch,
//	                  emit JSON, CSV, or NDJSON (CSV/NDJSON stream
//	                  incrementally as instances complete)
//	aggrate compare — run every scheduling strategy on identical instances
//	                  and print a per-strategy comparison table
//	aggrate bench   — time the conflict-graph build (bucketed vs naive) and
//	                  the full pipeline per strategy across instance sizes
//	                  and GOMAXPROCS settings, emit BENCH_pipeline.json
//	aggrate serve   — long-running HTTP JSON job API over the same engine,
//	                  with a durable job journal, spec-keyed result caching,
//	                  admission control, and /metrics (see internal/service)
//	aggrate loadtest — drive a running serve instance with heavy-tailed
//	                  traffic and write BENCH_serve.json
//
// run and bench accept --cpuprofile/--memprofile to write pprof profiles of
// the exercised pipeline, --trace to capture a runtime/trace execution
// trace over the same window, and --timeout to bound the batch wall clock. A
// SIGINT (or an expired --timeout) cancels the engine mid-flight and
// flushes every completed result instead of discarding the batch.
//
// Examples:
//
//	aggrate run --scenario uniform --n 50000 --seeds 4
//	aggrate run --scenario cluster,annulus --n 1000,4000 --seeds 8 --power mean,global --format csv
//	aggrate run --scenario uniform --n 10000 --algo greedy,lengthclass --seeds 4
//	aggrate run --scenario uniform --n 20000 --seeds 64 --format ndjson --timeout 30s
//	aggrate compare --scenario uniform --n 5000 --seeds 3
//	aggrate bench --sizes 1000,5000,10000,20000 --out BENCH_pipeline.json
//	aggrate bench --sizes 20000,100000,200000 --procs 1,0 --out BENCH_pipeline.json
//	aggrate serve --addr 127.0.0.1:8080
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"aggrate/internal/conflict"
	"aggrate/internal/experiment"
	"aggrate/internal/mst"
	"aggrate/internal/scenario"
	"aggrate/internal/schedule"
	"aggrate/internal/scheduler"
	"aggrate/internal/service"
	"aggrate/internal/sinr"
)

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

// runMain is the testable entry point: it dispatches the subcommand and maps
// errors to exit codes (0 ok, 1 runtime failure, 2 usage).
func runMain(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "run":
		err = cmdRun(args[1:], stdout, stderr)
	case "compare":
		err = cmdCompare(args[1:], stdout, stderr)
	case "bench":
		err = cmdBench(args[1:], stdout, stderr)
	case "serve":
		err = cmdServe(args[1:], stdout, stderr)
	case "loadtest":
		err = cmdLoadtest(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stderr)
		return 0
	default:
		fmt.Fprintf(stderr, "aggrate: unknown subcommand %q\n\n", args[0])
		usage(stderr)
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		// An explicit help request is a success, matching flag.ExitOnError's
		// exit(0) convention; the flag package already printed the usage.
		return 0
	default:
		fmt.Fprintf(stderr, "aggrate: %v\n", err)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage: aggrate <run|compare|bench|serve|loadtest> [flags]

run      executes an experiment batch; see 'aggrate run -h'
compare  runs all scheduling strategies on identical instances; see 'aggrate compare -h'
bench    times conflict-graph builds and the full pipeline; see 'aggrate bench -h'
serve    runs the HTTP job API with a durable journal and result caching; see 'aggrate serve -h'
loadtest drives a running server with heavy-tailed traffic; see 'aggrate loadtest -h'

scenario presets: %s
algorithms:       %s
`, strings.Join(scenario.PresetNames(), ", "), strings.Join(scheduler.Names(), ", "))
}

// newFlagSet returns a subcommand flag set that reports parse errors instead
// of exiting, so runMain stays testable.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// profileFlags registers the pprof and execution-trace flags shared by run
// and bench; start begins the requested profiles and returns the function
// that stops the CPU profile and the trace and writes the heap profile. All
// three paths are optional and independent. CPU profiling and execution
// tracing are mutually exclusive in the runtime (tracing also samples the
// CPU profiler's signal), so requesting both is rejected up front.
type profileFlags struct {
	cpu, mem, trace *string
}

func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu:   fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem:   fs.String("memprofile", "", "write a heap profile to this file on exit"),
		trace: fs.String("trace", "", "write a runtime execution trace to this file (view with 'go tool trace'); excludes --cpuprofile"),
	}
}

func (pf *profileFlags) start() (stop func() error, err error) {
	if *pf.cpu != "" && *pf.trace != "" {
		return nil, fmt.Errorf("--cpuprofile and --trace are mutually exclusive")
	}
	var cpuFile *os.File
	if *pf.cpu != "" {
		cpuFile, err = os.Create(*pf.cpu)
		if err != nil {
			return nil, fmt.Errorf("--cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("--cpuprofile: %w", err)
		}
	}
	var traceFile *os.File
	if *pf.trace != "" {
		traceFile, err = os.Create(*pf.trace)
		if err != nil {
			return nil, fmt.Errorf("--trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			return nil, fmt.Errorf("--trace: %w", err)
		}
	}
	memPath := *pf.mem
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("--memprofile: %w", err)
			}
			runtime.GC() // materialize the steady-state heap before snapshotting
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("--memprofile: %w", werr)
			}
		}
		return nil
	}, nil
}

var validPowers = []string{
	experiment.PowerUniform, experiment.PowerMean, experiment.PowerLinear, experiment.PowerGlobal,
}

var validGraphs = []string{
	experiment.GraphGamma, experiment.GraphOblivious, experiment.GraphArbitrary,
}

var validEngines = schedule.Engines()

// validateChoices rejects values outside the valid set up front, so flag
// typos fail fast instead of surfacing as per-instance errors mid-batch.
func validateChoices(flagName string, given, valid []string) error {
	for _, g := range given {
		if !slices.Contains(valid, g) {
			return fmt.Errorf("unknown --%s %q (want one of %s)",
				flagName, g, strings.Join(valid, ", "))
		}
	}
	if len(given) == 0 {
		return fmt.Errorf("--%s is empty (want one of %s)", flagName, strings.Join(valid, ", "))
	}
	return nil
}

// specFlags registers the instance-shaping flags shared by run and compare;
// resolve validates them and materializes the scenario list, size list, and
// base Spec.
type specFlags struct {
	scenarios, ns, graph, engine           *string
	seeds, workers, lookDepth              *int
	seed                                   *uint64
	gamma, delta, alpha, beta, noise       *float64
	verify, incr, noLookahead, noInstCache *bool
}

func addSpecFlags(fs *flag.FlagSet, defaultN string, defaultSeeds int) *specFlags {
	return &specFlags{
		scenarios: fs.String("scenario", "uniform", "comma-separated scenario presets"),
		ns:        fs.String("n", defaultN, "comma-separated instance sizes (nodes)"),
		seeds:     fs.Int("seeds", defaultSeeds, "seeds per parameter cell (every algorithm sees the same seeds)"),
		seed:      fs.Uint64("seed", 1, "base seed; instance k uses seed+k"),
		graph:     fs.String("graph", "obl", "conflict graph kind (gamma, obl, arb)"),
		gamma:     fs.Float64("gamma", 2, "initial conflict parameter γ"),
		delta:     fs.Float64("delta", 0.5, "exponent δ of G^δ_γ (graph=obl)"),
		alpha:     fs.Float64("alpha", 3, "path-loss exponent α > 2"),
		beta:      fs.Float64("beta", 2, "SINR threshold β"),
		noise:     fs.Float64("noise", 0, "ambient noise N"),
		verify:    fs.Bool("verify", true, "verify every slot against the SINR condition, escalating γ on failure"),
		engine:    fs.String("verify-engine", schedule.EngineFast, "SINR verification engine (fast, naive)"),
		incr:      fs.Bool("verify-incremental", true, "reuse exact slot verdicts across γ escalations (fast engine; identical results, less work)"),
		noLookahead: fs.Bool("no-lookahead", false,
			"build each γ escalation's conflict graph from scratch instead of filtering one strength-annotated lookahead build (identical results, more work)"),
		lookDepth: fs.Int("lookahead-depth", 1, "γ-escalation steps the lookahead build covers ahead of the current γ"),
		noInstCache: fs.Bool("no-instance-cache", false,
			"rebuild nodes+EMST+lookahead per spec instead of sharing one deployment build across specs that differ only in scheduling knobs (identical results, more work)"),
		workers: fs.Int("workers", 0, "parallel instances (0 = GOMAXPROCS)"),
	}
}

func (sf *specFlags) resolve() ([]experiment.Scenario, []int, experiment.Spec, error) {
	var zero experiment.Spec
	scList, err := parseScenarios(*sf.scenarios)
	if err != nil {
		return nil, nil, zero, err
	}
	nList, err := parseInts(*sf.ns)
	if err != nil {
		return nil, nil, zero, fmt.Errorf("bad --n: %w", err)
	}
	if err := validateChoices("graph", []string{*sf.graph}, validGraphs); err != nil {
		return nil, nil, zero, err
	}
	if err := validateChoices("verify-engine", []string{*sf.engine}, validEngines); err != nil {
		return nil, nil, zero, err
	}
	base := experiment.Spec{
		Seed:                *sf.seed,
		Graph:               *sf.graph,
		Gamma:               *sf.gamma,
		Delta:               *sf.delta,
		SINR:                sinr.Params{Alpha: *sf.alpha, Beta: *sf.beta, Noise: *sf.noise, Epsilon: 0.5},
		Verify:              *sf.verify,
		VerifyEngine:        *sf.engine,
		NoIncrementalVerify: !*sf.incr,
		NoLookahead:         *sf.noLookahead,
		NoInstanceCache:     *sf.noInstCache,
		GammaLookahead:      *sf.lookDepth,
	}
	return scList, nList, base, nil
}

// batchContext builds the batch's cancellation context: an optional
// deadline from --timeout, plus SIGINT so an interrupted batch flushes its
// completed results instead of discarding them.
func batchContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	cancels := make([]context.CancelFunc, 0, 2)
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		cancels = append(cancels, cancel)
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	cancels = append(cancels, stop)
	return ctx, func() {
		for _, c := range cancels {
			c()
		}
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("run", stderr)
	sf := addSpecFlags(fs, "1000", 1)
	powers := fs.String("power", "mean", "comma-separated power schemes (uniform, mean, linear, global)")
	algos := fs.String("algo", scheduler.Greedy, "comma-separated scheduling algorithms ("+strings.Join(scheduler.Names(), ", ")+")")
	refine := fs.Bool("refine", false, "also run the Theorem-2 refinement (O(n²); slow above ~20k links)")
	format := fs.String("format", "json", "output format: json, csv, or ndjson (csv/ndjson stream incrementally)")
	out := fs.String("out", "-", "output path ('-' = stdout)")
	summaryOnly := fs.Bool("summary-only", false, "emit only the aggregated summaries (json)")
	timeout := fs.Duration("timeout", 0, "cancel the batch after this duration, flushing completed results (0 = none)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *format != "json" && *format != "csv" && *format != "ndjson" {
		return fmt.Errorf("unknown --format %q (want json, csv, or ndjson)", *format)
	}
	if *summaryOnly && *format != "json" {
		return fmt.Errorf("--summary-only requires --format json (csv/ndjson have no summary form)")
	}
	scList, nList, base, err := sf.resolve()
	if err != nil {
		return err
	}
	powerList := splitList(*powers)
	if err := validateChoices("power", powerList, validPowers); err != nil {
		return err
	}
	algoList := splitList(*algos)
	if err := validateChoices("algo", algoList, scheduler.Names()); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(stderr, "aggrate: profile: %v\n", perr)
		}
	}()

	base.Refine = *refine
	specs := experiment.Expand(scList, nList, *sf.seeds, powerList, algoList, base)
	fmt.Fprintf(stderr, "aggrate: running %d instances on %d workers\n",
		len(specs), experiment.Workers(*sf.workers, len(specs)))

	ctx, cancel := batchContext(*timeout)
	defer cancel()

	w, closeFn, err := openOut(*out, stdout)
	if err != nil {
		return err
	}
	// CSV and NDJSON emit incrementally: each result is written as soon as
	// every earlier spec's result is in (the ordered emitter buffers
	// out-of-order completions), so the file's row order is deterministic
	// and a long batch is inspectable while it runs. JSON needs the closing
	// summaries, so it stays collect-then-write.
	var emit *orderedEmitter
	switch *format {
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write(csvHeader()); err != nil {
			closeFn()
			return err
		}
		emit = &orderedEmitter{emit: func(r *experiment.Result) error {
			if err := cw.Write(csvRow(r)); err != nil {
				return err
			}
			cw.Flush()
			return cw.Error()
		}}
	case "ndjson":
		enc := json.NewEncoder(w)
		emit = &orderedEmitter{emit: func(r *experiment.Result) error { return enc.Encode(r) }}
	}

	start := time.Now()
	runner := experiment.Runner{Workers: *sf.workers}
	if emit != nil {
		runner.Sink = func(i int, r *experiment.Result) { emit.add(i, r) }
	}
	results, runErr := runner.Run(ctx, specs)
	elapsed := time.Since(start)

	completed, failed := 0, 0
	for _, r := range results {
		if r == nil {
			continue
		}
		completed++
		if r.Err != "" {
			failed++
		}
	}
	fmt.Fprintf(stderr, "aggrate: %d/%d instances ok in %.2fs\n",
		completed-failed, len(results), elapsed.Seconds())

	var werr error
	if emit != nil {
		// Flush stragglers: results completed out of order past a gap left
		// by the cancellation. Rows stay in increasing spec order.
		emit.flush()
		werr = emit.err
	} else {
		done := results
		if runErr != nil {
			done = make([]*experiment.Result, 0, completed)
			for _, r := range results {
				if r != nil {
					done = append(done, r)
				}
			}
		}
		payload := map[string]any{
			"summaries": experiment.Aggregate(done),
		}
		if !*summaryOnly {
			payload["results"] = done
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		werr = enc.Encode(payload)
	}
	if cerr := closeFn(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	if runErr != nil {
		return fmt.Errorf("batch interrupted (%v); flushed %d/%d completed instances",
			runErr, completed, len(specs))
	}
	if failed > 0 {
		return fmt.Errorf("%d instance(s) failed; see the error field in the output", failed)
	}
	return nil
}

// orderedEmitter replays sink callbacks in spec order: result i is emitted
// once results 0..i-1 have been, so incremental output is deterministic
// regardless of completion order. Runner serializes sink calls, and flush
// runs after Run returns — no locking needed.
type orderedEmitter struct {
	next    int
	pending map[int]*experiment.Result
	emit    func(*experiment.Result) error
	err     error
}

func (e *orderedEmitter) add(i int, r *experiment.Result) {
	if e.pending == nil {
		e.pending = make(map[int]*experiment.Result)
	}
	e.pending[i] = r
	for e.err == nil {
		r, ok := e.pending[e.next]
		if !ok {
			return
		}
		delete(e.pending, e.next)
		e.next++
		e.err = e.emit(r)
	}
}

// flush drains the remaining out-of-order completions (the gaps of a
// cancelled batch) in increasing spec order.
func (e *orderedEmitter) flush() {
	for e.err == nil && len(e.pending) > 0 {
		for !e.pendingHas(e.next) {
			e.next++
		}
		r := e.pending[e.next]
		delete(e.pending, e.next)
		e.next++
		e.err = e.emit(r)
	}
}

func (e *orderedEmitter) pendingHas(i int) bool {
	_, ok := e.pending[i]
	return ok
}

func csvHeader() []string {
	return []string{
		"scenario", "n", "seed", "power", "graph", "algo", "links", "diversity",
		"logstar", "edges", "max_degree", "colors", "schedule_length",
		"rate", "colors_per_logstar", "length_classes", "gamma_used",
		"gamma_retries", "margin", "verified", "refine_sets", "build_sec",
		"build_filter_sec", "build_reused",
		"order_sec", "color_sec", "verify_sec", "total_sec", "error",
	}
}

func csvRow(r *experiment.Result) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	return []string{
		r.Scenario, strconv.Itoa(r.N), strconv.FormatUint(r.Seed, 10),
		r.Power, r.Graph, r.Algo, strconv.Itoa(r.Links), f(r.Diversity),
		strconv.Itoa(r.LogStar), strconv.Itoa(r.Edges),
		strconv.Itoa(r.MaxDegree), strconv.Itoa(r.Colors),
		strconv.Itoa(r.ScheduleLength), f(r.Rate), f(r.ColorsPerLogStar),
		strconv.Itoa(r.Classes),
		f(r.GammaUsed), strconv.Itoa(r.GammaRetries), f(r.Margin),
		strconv.FormatBool(r.Verified), strconv.Itoa(r.RefineSets),
		f(r.Timings.BuildSec),
		f(r.Timings.BuildFilterSec), strconv.FormatBool(r.Timings.BuildReused),
		f(r.Timings.OrderSec), f(r.Timings.ColorSec),
		f(r.Timings.VerifySec), f(r.Timings.TotalSec), r.Err,
	}
}

// cmdCompare runs every requested strategy on identical instances (same
// scenario, n, seed, power, graph — hence the same pointsets and trees) and
// prints a per-strategy table: mean colors, schedule length, rate, the
// paper's normalized colors/log*Δ, and wall time. --out optionally saves the
// full results + summaries as JSON for the CI artifact.
func cmdCompare(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("compare", stderr)
	sf := addSpecFlags(fs, "5000", 3)
	power := fs.String("power", "mean", "power scheme shared by all algorithms")
	algos := fs.String("algo", strings.Join(scheduler.Names(), ","), "comma-separated algorithms to compare")
	out := fs.String("out", "", "also write full results + summaries as JSON to this path ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scList, nList, base, err := sf.resolve()
	if err != nil {
		return err
	}
	if err := validateChoices("power", []string{*power}, validPowers); err != nil {
		return err
	}
	algoList := splitList(*algos)
	if err := validateChoices("algo", algoList, scheduler.Names()); err != nil {
		return err
	}

	specs := experiment.Expand(scList, nList, *sf.seeds, []string{*power}, algoList, base)
	fmt.Fprintf(stderr, "aggrate: comparing %d algorithms over %d instances on %d workers\n",
		len(algoList), len(specs), experiment.Workers(*sf.workers, len(specs)))
	ctx, cancel := batchContext(0)
	defer cancel()
	start := time.Now()
	results := experiment.RunBatch(ctx, specs, *sf.workers)
	fmt.Fprintf(stderr, "aggrate: done in %.2fs\n", time.Since(start).Seconds())

	// Aggregate skips nil entries, so an interrupted compare still prints
	// the table over the completed instances.
	summaries := experiment.Aggregate(results)
	writeCompareTable(stdout, summaries)

	failed := 0
	for _, r := range results {
		if r != nil && r.Err != "" {
			failed++
		}
	}
	if *out != "" {
		w, closeFn, err := openOut(*out, stdout)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		werr := enc.Encode(map[string]any{"summaries": summaries, "results": results})
		if cerr := closeFn(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("compare interrupted (%v); table covers the completed instances", err)
	}
	if failed > 0 {
		return fmt.Errorf("%d instance(s) failed; see the error field in the output", failed)
	}
	return nil
}

// writeCompareTable renders one table block per (scenario, n, power, graph)
// cell, one row per algorithm. Aggregate returns the summaries sorted with
// algo as the innermost key, so cells are contiguous runs.
func writeCompareTable(w io.Writer, summaries []experiment.Summary) {
	type cell struct {
		Scenario string
		N        int
		Power    string
		Graph    string
	}
	var cur cell
	var tw *tabwriter.Writer
	flush := func() {
		if tw != nil {
			tw.Flush()
		}
	}
	for _, s := range summaries {
		c := cell{s.Scenario, s.N, s.Power, s.Graph}
		if c != cur || tw == nil {
			flush()
			cur = c
			fmt.Fprintf(w, "\nscenario=%s n=%d power=%s graph=%s seeds=%d log*Δ=%.0f\n",
				s.Scenario, s.N, s.Power, s.Graph, s.Seeds, s.MeanLogStar)
			tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "  algo\tcolors\tsched_len\trate\tcolors/log*Δ\tgamma\terrors\ttime")
		}
		fmt.Fprintf(tw, "  %s\t%.1f\t%.1f\t%.5f\t%.2f\t%.3g\t%d/%d\t%.3fs\n",
			s.Algo, s.MeanColors, s.MeanLength, s.MeanRate, s.MeanColorsPerLogStar,
			s.MeanGamma, s.Errors, s.Seeds, s.MeanTotalSec)
	}
	flush()
}

// AlgoBench is the per-strategy slice of one bench entry: the full pipeline
// (schedule + verification with γ escalation) timed per algorithm on the
// same instance, plus the per-stage split (conflict-graph build, vertex
// ordering, coloring — summed over γ escalations) and the
// verification-engine split. VerifySec and ExactPairsFrac time the selected
// engine re-verifying the final schedule; when the naive reference also ran
// (n ≤ --naive-max, fast engine selected),
// VerifyNaiveSec/VerifySpeedup/VerifyMatch record the cross-check —
// VerifyMatch means identical verdict and margins within 1e-9 relative.
type AlgoBench struct {
	Algo             string  `json:"algo"`
	Colors           int     `json:"colors"`
	ScheduleLength   int     `json:"schedule_length"`
	Rate             float64 `json:"rate"`
	ColorsPerLogStar float64 `json:"colors_per_logstar"`
	PipelineSec      float64 `json:"pipeline_sec"`
	BuildSec         float64 `json:"build_sec"`
	// BuildFilterSec is the share of BuildSec spent in lookahead filter scans
	// (γ-escalation retries served from the strength-annotated build);
	// BuildReused records that at least one retry was so served.
	BuildFilterSec float64 `json:"build_filter_sec,omitempty"`
	BuildReused    bool    `json:"build_reused,omitempty"`
	// Conflict-build pruning counters (summed over γ escalations, from
	// Timings): cells streamed vs rejected whole by the per-cell screen,
	// candidates distance-tested vs edges accepted. The scanned/accepted
	// ratio is hardware-independent, so the regression gate can hold the
	// build's candidate efficiency without wall-clock noise.
	BuildCellsScanned int64   `json:"build_cells_scanned,omitempty"`
	BuildCellsPruned  int64   `json:"build_cells_pruned,omitempty"`
	BuildCandScanned  int64   `json:"build_cand_scanned,omitempty"`
	BuildCandAccepted int64   `json:"build_cand_accepted,omitempty"`
	OrderSec          float64 `json:"order_sec"`
	ColorSec          float64 `json:"color_sec"`
	GammaRetries      int     `json:"gamma_retries"`
	Verified          bool    `json:"verified"`
	VerifySec         float64 `json:"verify_sec"`
	ExactPairsFrac    float64 `json:"exact_pairs_frac"`
	// VerifyWarmSec times a second verification of the same schedule through
	// the pipeline's incremental cache (every unchanged slot answers from its
	// cached exact margin); VerifyReusedSlots counts the slots so answered,
	// out of VerifySlots. Absent when --verify-incremental=false.
	VerifyWarmSec     float64 `json:"verify_warm_sec,omitempty"`
	VerifyReusedSlots int     `json:"verify_reused_slots,omitempty"`
	VerifySlots       int     `json:"verify_slots,omitempty"`
	// VerifyGridWarmSec times a re-verify with the cached margins dropped but
	// the built slot structures retained: every margin is recomputed, with
	// buildGrid answered from the cache on VerifyGridReused slots. This is
	// the path an escalation retry with changed powers takes per slot.
	VerifyGridWarmSec float64 `json:"verify_grid_warm_sec,omitempty"`
	VerifyGridReused  int     `json:"verify_grid_reused,omitempty"`
	// VerifyRefinedCells counts far-field cells the engine re-aggregated at
	// tightened openings (adaptive-refinement tier) during the cold re-verify.
	VerifyRefinedCells int64   `json:"verify_refined_cells,omitempty"`
	VerifyNaiveSec     float64 `json:"verify_naive_sec,omitempty"`
	VerifySpeedup      float64 `json:"verify_speedup,omitempty"`
	VerifyMatch        *bool   `json:"verify_match,omitempty"`
}

// BenchEntry is one row of the bench report. EdgesMatched is only present
// when the naive reference actually ran (n ≤ --naive-max); absent means
// "not cross-checked at this size", never "checked and passed". The legacy
// top-level pipeline fields mirror the first requested algorithm's
// AlgoBench row (greedy, under the default --algo list).
type BenchEntry struct {
	N            int         `json:"n"`
	Links        int         `json:"links"`
	Edges        int         `json:"edges"`
	BuildSec     float64     `json:"build_sec"`
	NaiveSec     float64     `json:"naive_sec,omitempty"`
	Speedup      float64     `json:"speedup,omitempty"`
	MSTSec       float64     `json:"mst_sec"`
	PipelineSec  float64     `json:"pipeline_sec"`
	Colors       int         `json:"colors"`
	Verified     bool        `json:"verified"`
	EdgesMatched *bool       `json:"edges_matched,omitempty"`
	Algos        []AlgoBench `json:"algos"`
}

// BenchRun is one full sweep of the sizes at a fixed GOMAXPROCS.
// KernelNsPerPair is a once-per-run micro-measurement of the symmetric
// near-field kernel (ns per pairwise interference term on a fixed synthetic
// slot); the regression gate compares it against the checked-in baseline so
// a de-optimized inner loop is caught even when slot structures hide it.
type BenchRun struct {
	GoMaxProcs      int          `json:"gomaxprocs"`
	KernelNsPerPair float64      `json:"kernel_ns_per_pair,omitempty"`
	Entries         []BenchEntry `json:"entries"`
}

// BenchReport is the schema of BENCH_pipeline.json: one run per requested
// --procs value, so sequential and all-core trajectories of the same sizes
// sit side by side in one artifact.
type BenchReport struct {
	Scenario string     `json:"scenario"`
	Seed     uint64     `json:"seed"`
	Runs     []BenchRun `json:"runs"`
}

func cmdBench(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("bench", stderr)
	sizes := fs.String("sizes", "1000,2000,5000,10000,20000", "comma-separated instance sizes")
	naiveMax := fs.Int("naive-max", 20000, "largest n to also run the O(n²) reference build and verifier at")
	seed := fs.Uint64("seed", 1, "instance seed")
	preset := fs.String("scenario", "uniform", "scenario preset to benchmark on")
	algos := fs.String("algo", strings.Join(scheduler.Names(), ","), "comma-separated algorithms to time the pipeline with")
	engine := fs.String("verify-engine", schedule.EngineFast, "SINR verification engine (fast, naive)")
	incr := fs.Bool("verify-incremental", true, "reuse exact slot verdicts across γ escalations and report the warm re-verify split")
	noLookahead := fs.Bool("no-lookahead", false, "rebuild the conflict graph from scratch at every γ escalation instead of filtering the lookahead build")
	procs := fs.String("procs", "0", "comma-separated GOMAXPROCS values to sweep (0 = NumCPU); one bench run each")
	out := fs.String("out", "BENCH_pipeline.json", "output path ('-' = stdout)")
	timeout := fs.Duration("timeout", 0, "cancel the sweep after this duration, writing the entries completed so far (0 = none)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateChoices("verify-engine", []string{*engine}, validEngines); err != nil {
		return err
	}
	nList, err := parseInts(*sizes)
	if err != nil {
		return fmt.Errorf("bad --sizes: %w", err)
	}
	procList, err := parseInts(*procs)
	if err != nil {
		return fmt.Errorf("bad --procs: %w", err)
	}
	sc, err := scenario.Lookup(*preset)
	if err != nil {
		return err
	}
	algoList := splitList(*algos)
	if err := validateChoices("algo", algoList, scheduler.Names()); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(stderr, "aggrate: profile: %v\n", perr)
		}
	}()

	ctx, cancel := batchContext(*timeout)
	defer cancel()
	report := BenchReport{Scenario: *preset, Seed: *seed}
	var sweepErr error
	for _, p := range procList {
		run, err := benchRun(ctx, sc, nList, algoList, p, *naiveMax, *seed, *engine, *incr, *noLookahead, stderr)
		// A cancelled sweep still writes the completed entries (partial
		// runs included); any other error aborts without a report.
		if err != nil && ctx.Err() == nil {
			return err
		}
		report.Runs = append(report.Runs, run)
		if ctx.Err() != nil {
			sweepErr = fmt.Errorf("bench interrupted (%v); report covers the completed entries", ctx.Err())
			break
		}
	}

	w, closeFn, err := openOut(*out, stdout)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	werr := enc.Encode(report)
	if cerr := closeFn(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	return sweepErr
}

// benchRun sweeps the sizes once at the given GOMAXPROCS (0 = leave at
// NumCPU), restoring the previous setting before returning. A ctx cancel
// stops the sweep and returns the entries completed so far with ctx.Err().
func benchRun(ctx context.Context, sc scenario.Spec, nList []int, algoList []string,
	procsWanted, naiveMax int, seed uint64, engine string, incremental, noLookahead bool, stderr io.Writer) (BenchRun, error) {
	if procsWanted > 0 {
		prev := runtime.GOMAXPROCS(procsWanted)
		defer runtime.GOMAXPROCS(prev)
	}
	run := BenchRun{GoMaxProcs: runtime.GOMAXPROCS(0)}
	run.KernelNsPerPair = sinr.MeasureKernelNsPerPair(sinr.Params{Alpha: 3, Beta: 2, Epsilon: 0.5}, 4096, 3)
	fmt.Fprintf(stderr, "aggrate bench: gomaxprocs=%d kernel=%.3gns/pair\n", run.GoMaxProcs, run.KernelNsPerPair)
	for _, n := range nList {
		if err := ctx.Err(); err != nil {
			return run, err
		}
		entry := BenchEntry{N: n}
		pts := sc.Generate(n, seed)

		t0 := time.Now()
		tree, err := mst.NewMSTTree(pts, 0)
		if err != nil {
			return run, err
		}
		entry.MSTSec = time.Since(t0).Seconds()
		links := tree.Links
		entry.Links = len(links)

		f := conflict.PowerLaw(2, 0.5)
		t0 = time.Now()
		g, err := conflict.BuildCtx(ctx, links, f)
		if err != nil {
			return run, err
		}
		entry.BuildSec = time.Since(t0).Seconds()
		entry.Edges = g.Edges()

		if n <= naiveMax {
			t0 = time.Now()
			ng := conflict.BuildNaive(links, f)
			entry.NaiveSec = time.Since(t0).Seconds()
			if entry.BuildSec > 0 {
				entry.Speedup = entry.NaiveSec / entry.BuildSec
			}
			matched := sameEdgeSet(ng, g)
			entry.EdgesMatched = &matched
		}

		// Per-strategy pipeline trajectory on the same instance.
		for _, algo := range algoList {
			spec := experiment.NewSpec(sc, n, seed)
			spec.Algo = algo
			spec.VerifyEngine = engine
			spec.NoIncrementalVerify = !incremental
			spec.NoLookahead = noLookahead
			t0 = time.Now()
			inst, res, err := experiment.NewInstance(ctx, spec)
			sec := time.Since(t0).Seconds()
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return run, cerr
				}
				return run, fmt.Errorf("bench pipeline algo=%s n=%d: %w", algo, n, err)
			}
			ab := AlgoBench{
				Algo:              algo,
				Colors:            res.Colors,
				ScheduleLength:    res.ScheduleLength,
				Rate:              res.Rate,
				ColorsPerLogStar:  res.ColorsPerLogStar,
				PipelineSec:       sec,
				BuildSec:          res.Timings.BuildSec,
				BuildFilterSec:    res.Timings.BuildFilterSec,
				BuildReused:       res.Timings.BuildReused,
				BuildCellsScanned: res.Timings.BuildCellsScanned,
				BuildCellsPruned:  res.Timings.BuildCellsPruned,
				BuildCandScanned:  res.Timings.BuildCandScanned,
				BuildCandAccepted: res.Timings.BuildCandAccepted,
				OrderSec:          res.Timings.OrderSec,
				ColorSec:          res.Timings.ColorSec,
				GammaRetries:      res.GammaRetries,
				Verified:          res.Verified,
			}
			// Verification split: time the selected engine re-verifying the
			// final schedule (so gamma escalations don't muddy the number),
			// and cross-check it against the naive oracle at sizes where the
			// O(m²) path is affordable.
			t0 = time.Now()
			margin, vst, verr := inst.VerifySchedule(engine)
			ab.VerifySec = time.Since(t0).Seconds()
			if verr != nil {
				return run, fmt.Errorf("bench re-verify algo=%s n=%d: %w", algo, n, verr)
			}
			ab.ExactPairsFrac = vst.Engine.ExactPairsFrac()
			ab.VerifyRefinedCells = vst.Engine.RefinedCells
			if incremental && engine == schedule.EngineFast {
				// Warm pass: the escalation loop's cache holds every slot of
				// the final schedule, so this measures pure cache-hit
				// verification of an unchanged schedule.
				t0 = time.Now()
				wm, wst, werr := inst.ReverifyIncremental()
				ab.VerifyWarmSec = time.Since(t0).Seconds()
				if werr != nil {
					return run, fmt.Errorf("bench warm re-verify algo=%s n=%d: %w", algo, n, werr)
				}
				if !marginsClose(margin, wm) {
					return run, fmt.Errorf("bench warm re-verify algo=%s n=%d: margin %g != cold %g", algo, n, wm, margin)
				}
				ab.VerifyReusedSlots = wst.ReusedSlots
				ab.VerifySlots = wst.Slots
				// Grid-warm pass: drop the margins, keep the built slot
				// structures — measures the structure-reuse tier the retries
				// with changed powers hit.
				t0 = time.Now()
				gm, gst, gerr := inst.ReverifyGridWarm()
				ab.VerifyGridWarmSec = time.Since(t0).Seconds()
				if gerr != nil {
					return run, fmt.Errorf("bench grid-warm re-verify algo=%s n=%d: %w", algo, n, gerr)
				}
				if !marginsClose(margin, gm) {
					return run, fmt.Errorf("bench grid-warm re-verify algo=%s n=%d: margin %g != cold %g", algo, n, gm, margin)
				}
				ab.VerifyGridReused = gst.ReusedGrids
			}
			if engine == schedule.EngineFast && n <= naiveMax {
				t0 = time.Now()
				nm, _, nerr := inst.VerifySchedule(schedule.EngineNaive)
				ab.VerifyNaiveSec = time.Since(t0).Seconds()
				match := nerr == nil && marginsClose(margin, nm)
				ab.VerifyMatch = &match
				if ab.VerifySec > 0 {
					ab.VerifySpeedup = ab.VerifyNaiveSec / ab.VerifySec
				}
			}
			entry.Algos = append(entry.Algos, ab)
			if algo == algoList[0] {
				entry.PipelineSec = sec
				entry.Colors = res.Colors
				entry.Verified = res.Verified
			}
			fmt.Fprintf(stderr,
				"aggrate bench: n=%-6d algo=%-11s colors=%-5d rate=%.5f c/log*=%.2f pipeline=%.3fs color=%.3fs verify=%.3fs exact=%.3f\n",
				n, algo, ab.Colors, ab.Rate, ab.ColorsPerLogStar, sec, ab.OrderSec+ab.ColorSec, ab.VerifySec, ab.ExactPairsFrac)
		}
		run.Entries = append(run.Entries, entry)
		fmt.Fprintf(stderr,
			"aggrate bench: n=%-6d links=%-6d edges=%-7d build=%.3fs naive=%.3fs\n",
			n, entry.Links, entry.Edges, entry.BuildSec, entry.NaiveSec)
	}
	return run, nil
}

// cmdServe runs the HTTP job API (internal/service) until SIGINT/SIGTERM:
// POST /v1/jobs submits a spec grid, GET /v1/jobs/{id} reports progress, GET
// /v1/jobs/{id}/stream streams events and results as NDJSON, DELETE
// /v1/jobs/{id} cancels via the engine's context plumbing, GET /v1/healthz
// reports liveness, GET /metrics exposes Prometheus text. With --journal set
// the server is durable: a restart resumes interrupted jobs from their last
// completed spec. Repeated specs are served from a byte-budgeted LRU cache
// keyed by the canonical spec hash.
func cmdServe(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("serve", stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "per-job instance pool width (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 4096, "LRU result-cache capacity in specs")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "LRU result-cache budget in approximate encoded bytes")
	queueSize := fs.Int("queue", 64, "bounded job-queue length (submissions beyond it get 503)")
	maxSpecs := fs.Int("max-specs", 10000, "largest grid a single job may expand to")
	maxJobs := fs.Int("max-jobs", 1024, "job records retained; oldest finished jobs are evicted past this")
	instCache := fs.Int("instance-cache", 0, "LRU deployment-build cache entries shared across jobs (0 = default, negative disables)")
	journalPath := fs.String("journal", "", "job journal path; empty disables durability")
	journalMax := fs.Int64("journal-max-bytes", 64<<20, "compact the journal once it grows past this many bytes")
	rateLimit := fs.Float64("rate-limit", 0, "per-client submissions/sec (token bucket); 0 disables")
	rateBurst := fs.Int("rate-burst", 0, "token-bucket depth (0 = max(1, ceil(rate-limit)))")
	maxPerClient := fs.Int("max-jobs-per-client", 0, "live (queued+running) jobs a client may hold; 0 disables")
	shedWatermark := fs.Float64("shed-watermark", 0.75, "queue-depth fraction past which large grids are shed")
	shedMaxSpecs := fs.Int("shed-max-specs", 64, "largest grid admitted while shedding")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound before in-flight work is hard-cancelled")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve takes no positional arguments, got %q", fs.Args())
	}

	faults := service.FaultsFromEnv()
	if faults.JournalFailEvery > 0 || faults.JournalStall > 0 || faults.KillAfterSpecs > 0 {
		fmt.Fprintf(stderr, "aggrate: FAULT INJECTION ARMED: %+v\n", faults)
	}
	svc, err := service.New(service.Config{
		Workers:           *workers,
		QueueSize:         *queueSize,
		CacheSize:         *cacheSize,
		CacheBytes:        *cacheBytes,
		MaxSpecs:          *maxSpecs,
		MaxJobs:           *maxJobs,
		InstanceCacheSize: *instCache,
		JournalPath:       *journalPath,
		JournalMaxBytes:   *journalMax,
		RateLimit:         *rateLimit,
		RateBurst:         *rateBurst,
		MaxJobsPerClient:  *maxPerClient,
		ShedWatermark:     *shedWatermark,
		ShedMaxSpecs:      *shedMaxSpecs,
		Faults:            faults,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is the machine-readable handshake: with
	// --addr :0 it is how callers (CI smoke, scripts) learn the port.
	fmt.Fprintf(stderr, "aggrate: serving on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(stderr, "aggrate: draining (next spec boundary, journal fsync)")
		// Drain the service before the HTTP server: an open /stream handler
		// only returns once its job goes terminal, so finishing the jobs
		// (gracefully, at a spec boundary, with the journal fsynced) is what
		// lets srv.Shutdown complete.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		svc.Shutdown(drainCtx)
		cancel()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

func parseScenarios(s string) ([]experiment.Scenario, error) {
	var out []experiment.Scenario
	for _, name := range splitList(s) {
		sc, err := scenario.Lookup(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios given")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// marginsClose reports whether two verification margins agree within 1e-9
// relative (the fast engine's documented tolerance against the naive
// oracle); +Inf margins (singleton slots, zero noise) must agree exactly.
func marginsClose(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return a == b
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// sameEdgeSet reports whether two conflict graphs over the same link set
// have identical edges, by full CSR comparison (both builds emit sorted
// rows, so RowPtr+Neighbors equality is edge-set equality).
func sameEdgeSet(a, b *conflict.Graph) bool {
	return slices.Equal(a.RowPtr, b.RowPtr) && slices.Equal(a.Neighbors, b.Neighbors)
}

// openOut returns the output writer and a close function whose error must
// be checked after the last write: for files it is (*os.File).Close, which
// is where a full disk or NFS flush failure surfaces.
func openOut(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "-" || path == "" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
