// Command aggrate runs the paper's aggregation-scheduling experiment loop
// end-to-end: deployment scenario → MST aggregation tree → conflict graph →
// greedy length-class coloring → TDMA schedule → SINR verification.
//
// Subcommands:
//
//	aggrate run   — execute a (scenario × n × seed × power) batch, emit JSON or CSV
//	aggrate bench — time the conflict-graph build (bucketed vs naive) and the
//	                full pipeline across instance sizes, emit BENCH_pipeline.json
//
// Examples:
//
//	aggrate run --scenario uniform --n 50000 --seeds 4
//	aggrate run --scenario cluster,annulus --n 1000,4000 --seeds 8 --power mean,global --format csv
//	aggrate bench --sizes 1000,5000,10000,20000 --out BENCH_pipeline.json
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"aggrate/internal/conflict"
	"aggrate/internal/experiment"
	"aggrate/internal/mst"
	"aggrate/internal/scenario"
	"aggrate/internal/sinr"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "aggrate: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggrate: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: aggrate <run|bench> [flags]

run   executes an experiment batch; see 'aggrate run -h'
bench times conflict-graph builds and the full pipeline; see 'aggrate bench -h'

scenario presets: %s
`, strings.Join(scenario.PresetNames(), ", "))
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scenarios := fs.String("scenario", "uniform", "comma-separated scenario presets")
	ns := fs.String("n", "1000", "comma-separated instance sizes (nodes)")
	seeds := fs.Int("seeds", 1, "seeds per (scenario, n, power) cell")
	seed := fs.Uint64("seed", 1, "base seed; instance k uses seed+k")
	powers := fs.String("power", "mean", "comma-separated power schemes (uniform, mean, linear, global)")
	graph := fs.String("graph", "obl", "conflict graph kind (gamma, obl, arb)")
	gamma := fs.Float64("gamma", 2, "initial conflict parameter γ")
	delta := fs.Float64("delta", 0.5, "exponent δ of G^δ_γ (graph=obl)")
	alpha := fs.Float64("alpha", 3, "path-loss exponent α > 2")
	beta := fs.Float64("beta", 2, "SINR threshold β")
	noise := fs.Float64("noise", 0, "ambient noise N")
	refine := fs.Bool("refine", false, "also run the Theorem-2 refinement (O(n²); slow above ~20k links)")
	verify := fs.Bool("verify", true, "verify every slot against the SINR condition, escalating γ on failure")
	workers := fs.Int("workers", 0, "parallel instances (0 = GOMAXPROCS)")
	format := fs.String("format", "json", "output format: json or csv")
	out := fs.String("out", "-", "output path ('-' = stdout)")
	summaryOnly := fs.Bool("summary-only", false, "emit only the aggregated summaries (json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *format != "json" && *format != "csv" {
		return fmt.Errorf("unknown --format %q (want json or csv)", *format)
	}
	if *summaryOnly && *format != "json" {
		return fmt.Errorf("--summary-only requires --format json (csv has no summary form)")
	}
	scList, err := parseScenarios(*scenarios)
	if err != nil {
		return err
	}
	nList, err := parseInts(*ns)
	if err != nil {
		return fmt.Errorf("bad --n: %w", err)
	}
	powerList := splitList(*powers)

	base := experiment.Spec{
		Seed:   *seed,
		Graph:  *graph,
		Gamma:  *gamma,
		Delta:  *delta,
		SINR:   sinr.Params{Alpha: *alpha, Beta: *beta, Noise: *noise, Epsilon: 0.5},
		Refine: *refine,
		Verify: *verify,
	}
	specs := experiment.Expand(scList, nList, *seeds, powerList, base)
	fmt.Fprintf(os.Stderr, "aggrate: running %d instances on %d workers\n",
		len(specs), experiment.Workers(*workers, len(specs)))
	start := time.Now()
	results := experiment.RunBatch(specs, *workers)
	elapsed := time.Since(start)

	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
		}
	}
	fmt.Fprintf(os.Stderr, "aggrate: %d/%d instances ok in %.2fs\n",
		len(results)-failed, len(results), elapsed.Seconds())

	w, closeFn, err := openOut(*out)
	if err != nil {
		return err
	}
	var werr error
	switch *format {
	case "json":
		payload := map[string]any{
			"summaries": experiment.Aggregate(results),
		}
		if !*summaryOnly {
			payload["results"] = results
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		werr = enc.Encode(payload)
	case "csv":
		werr = writeCSV(w, results)
	}
	if cerr := closeFn(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	if failed > 0 {
		return fmt.Errorf("%d instance(s) failed; see the error field in the output", failed)
	}
	return nil
}

func writeCSV(w io.Writer, results []*experiment.Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"scenario", "n", "seed", "power", "graph", "links", "diversity",
		"logstar", "edges", "max_degree", "colors", "schedule_length",
		"rate", "colors_per_logstar", "gamma_used", "gamma_retries",
		"margin", "verified", "refine_sets", "total_sec", "error",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range results {
		row := []string{
			r.Scenario, strconv.Itoa(r.N), strconv.FormatUint(r.Seed, 10),
			r.Power, r.Graph, strconv.Itoa(r.Links), f(r.Diversity),
			strconv.Itoa(r.LogStar), strconv.Itoa(r.Edges),
			strconv.Itoa(r.MaxDegree), strconv.Itoa(r.Colors),
			strconv.Itoa(r.ScheduleLength), f(r.Rate), f(r.ColorsPerLogStar),
			f(r.GammaUsed), strconv.Itoa(r.GammaRetries), f(r.Margin),
			strconv.FormatBool(r.Verified), strconv.Itoa(r.RefineSets),
			f(r.Timings.TotalSec), r.Err,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// BenchEntry is one row of the bench report. EdgesMatched is only present
// when the naive reference actually ran (n ≤ --naive-max); absent means
// "not cross-checked at this size", never "checked and passed".
type BenchEntry struct {
	N            int     `json:"n"`
	Links        int     `json:"links"`
	Edges        int     `json:"edges"`
	BuildSec     float64 `json:"build_sec"`
	NaiveSec     float64 `json:"naive_sec,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	MSTSec       float64 `json:"mst_sec"`
	PipelineSec  float64 `json:"pipeline_sec"`
	Colors       int     `json:"colors"`
	Verified     bool    `json:"verified"`
	EdgesMatched *bool   `json:"edges_matched,omitempty"`
}

// BenchReport is the schema of BENCH_pipeline.json.
type BenchReport struct {
	Scenario   string       `json:"scenario"`
	Seed       uint64       `json:"seed"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Entries    []BenchEntry `json:"entries"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	sizes := fs.String("sizes", "1000,2000,5000,10000,20000", "comma-separated instance sizes")
	naiveMax := fs.Int("naive-max", 20000, "largest n to also time the O(n²) reference build at")
	seed := fs.Uint64("seed", 1, "instance seed")
	preset := fs.String("scenario", "uniform", "scenario preset to benchmark on")
	out := fs.String("out", "BENCH_pipeline.json", "output path ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nList, err := parseInts(*sizes)
	if err != nil {
		return fmt.Errorf("bad --sizes: %w", err)
	}
	sc, err := scenario.Lookup(*preset)
	if err != nil {
		return err
	}

	report := BenchReport{Scenario: *preset, Seed: *seed, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, n := range nList {
		entry := BenchEntry{N: n}
		pts := sc.Generate(n, *seed)

		t0 := time.Now()
		tree, err := mst.NewMSTTree(pts, 0)
		if err != nil {
			return err
		}
		entry.MSTSec = time.Since(t0).Seconds()
		links := tree.Links
		entry.Links = len(links)

		f := conflict.PowerLaw(2, 0.5)
		t0 = time.Now()
		g := conflict.Build(links, f)
		entry.BuildSec = time.Since(t0).Seconds()
		entry.Edges = g.Edges()

		if n <= *naiveMax {
			t0 = time.Now()
			ng := conflict.BuildNaive(links, f)
			entry.NaiveSec = time.Since(t0).Seconds()
			if entry.BuildSec > 0 {
				entry.Speedup = entry.NaiveSec / entry.BuildSec
			}
			matched := sameEdgeSet(ng, g)
			entry.EdgesMatched = &matched
		}

		spec := experiment.NewSpec(sc, n, *seed)
		t0 = time.Now()
		res := experiment.Run(spec)
		entry.PipelineSec = time.Since(t0).Seconds()
		entry.Colors = res.Colors
		entry.Verified = res.Verified
		if res.Err != "" {
			return fmt.Errorf("bench pipeline at n=%d: %s", n, res.Err)
		}
		report.Entries = append(report.Entries, entry)
		fmt.Fprintf(os.Stderr,
			"aggrate bench: n=%-6d links=%-6d edges=%-7d build=%.3fs naive=%.3fs pipeline=%.3fs colors=%d\n",
			n, entry.Links, entry.Edges, entry.BuildSec, entry.NaiveSec, entry.PipelineSec, entry.Colors)
	}

	w, closeFn, err := openOut(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	werr := enc.Encode(report)
	if cerr := closeFn(); werr == nil {
		werr = cerr
	}
	return werr
}

func parseScenarios(s string) ([]experiment.Scenario, error) {
	var out []experiment.Scenario
	for _, name := range splitList(s) {
		sc, err := scenario.Lookup(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios given")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// sameEdgeSet reports whether two conflict graphs over the same link set
// have identical edges, by full adjacency comparison (both builds emit
// sorted adjacency, so slice equality is edge-set equality).
func sameEdgeSet(a, b *conflict.Graph) bool {
	if a.Edges() != b.Edges() || len(a.Adj) != len(b.Adj) {
		return false
	}
	for i := range a.Adj {
		if !slices.Equal(a.Adj[i], b.Adj[i]) {
			return false
		}
	}
	return true
}

// openOut returns the output writer and a close function whose error must
// be checked after the last write: for files it is (*os.File).Close, which
// is where a full disk or NFS flush failure surfaces.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" || path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
