package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aggrate/internal/service"
)

// TestLoadtestFlagValidation: loadtest refuses to run without a target and
// rejects positional arguments or nonsense knobs before sending anything.
func TestLoadtestFlagValidation(t *testing.T) {
	if _, stderr, code := runCLI("loadtest"); code != 1 ||
		!strings.Contains(stderr, "--addr is required") {
		t.Fatalf("loadtest without addr: code=%d stderr=%s", code, stderr)
	}
	if _, stderr, code := runCLI("loadtest", "--addr", "x", "extra"); code != 1 ||
		!strings.Contains(stderr, "no positional arguments") {
		t.Fatalf("loadtest with positional arg: code=%d stderr=%s", code, stderr)
	}
	if _, stderr, code := runCLI("loadtest", "--addr", "x", "--clients", "0"); code != 1 ||
		!strings.Contains(stderr, "must be positive") {
		t.Fatalf("loadtest with zero clients: code=%d stderr=%s", code, stderr)
	}
}

// TestLoadtestSmoke drives a real in-process server for a couple of seconds
// and checks the BENCH_serve.json shape: jobs completed, latency
// percentiles populated, and the identical-seed traffic produced cache
// hits.
func TestLoadtestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadtest smoke runs multi-second wall-clock traffic")
	}
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() { ts.Close(); svc.Close() }()

	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	_, stderr, code := runCLI("loadtest",
		"--addr", ts.URL, "--duration", "3s", "--clients", "2", "--seed-pool", "4", "--out", out)
	if code != 0 {
		t.Fatalf("loadtest exit %d\n%s", code, stderr)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep LoadReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("BENCH_serve.json not JSON: %v", err)
	}
	if rep.JobsDone < 2 {
		t.Fatalf("loadtest finished %d jobs, want >= 2\n%s", rep.JobsDone, b)
	}
	if rep.LatencySec.P50 <= 0 || rep.LatencySec.P99 < rep.LatencySec.P50 {
		t.Fatalf("latency percentiles malformed: %+v", rep.LatencySec)
	}
	if rep.ThroughputJobsPerSec <= 0 {
		t.Fatalf("throughput %v, want > 0", rep.ThroughputJobsPerSec)
	}
	if rep.SpecsCompleted < rep.JobsDone {
		t.Fatalf("specs %d < jobs %d", rep.SpecsCompleted, rep.JobsDone)
	}
	if len(rep.Curve) == 0 {
		t.Fatal("report has no per-second curve")
	}
	// With 4 distinct seeds and a Zipf-skewed size ladder, repeats are
	// guaranteed well within a 3s run.
	if rep.CacheHits == 0 {
		t.Fatalf("no cache hits in %d specs across a 4-seed pool", rep.SpecsCompleted)
	}
}

// TestLoadtestBackoff: a rejected submission is retried after the server's
// Retry-After (or the internal backoff when absent), the rejection code is
// tallied, and the eventual 202 wins.
func TestLoadtestBackoff(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		switch calls {
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(503)
			w.Write([]byte(`{"error":"full","code":"queue_full"}`))
		case 2:
			w.WriteHeader(429)
			w.Write([]byte(`{"error":"slow down","code":"rate_limited"}`))
		default:
			w.WriteHeader(202)
			w.Write([]byte(`{"id":"j000042"}`))
		}
	}))
	defer ts.Close()

	st := &ltStats{rejected: make(map[string]int)}
	rng := rand.New(rand.NewSource(7))
	id, ok := ltSubmit(ts.Client(), ts.URL, "k",
		map[string]any{"scenarios": []string{"uniform"}}, rng,
		time.Now().Add(10*time.Second), st)
	if !ok || id != "j000042" {
		t.Fatalf("ltSubmit = (%q, %v), want accepted j000042", id, ok)
	}
	if st.retries != 2 || st.rejected["queue_full"] != 1 || st.rejected["rate_limited"] != 1 {
		t.Fatalf("retry accounting: retries=%d rejected=%v", st.retries, st.rejected)
	}
	if st.submitted != 1 {
		t.Fatalf("submitted=%d, want 1", st.submitted)
	}
}

// TestLoadtestAwaitFailure: a vanished job (404 mid-poll) is counted as a
// failure, not retried forever.
func TestLoadtestAwaitFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(404)
		w.Write([]byte(`{"error":"gone","code":"not_found"}`))
	}))
	defer ts.Close()
	st := &ltStats{rejected: make(map[string]int)}
	ltAwait(ts.Client(), ts.URL, "j000001", time.Now(), st)
	if st.failed != 1 || len(st.done) != 0 {
		t.Fatalf("failed=%d done=%d, want 1, 0", st.failed, len(st.done))
	}
}
