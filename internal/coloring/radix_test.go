package coloring

import (
	"sort"
	"testing"

	"aggrate/internal/conflict"
	"aggrate/internal/geom"
)

// TestLengthOrderRadixTies drives the radix path (n above lengthRadixMin)
// on link sets with heavy length duplication — the case the MST-based
// parity instances barely produce — and pins the permutation to the stable
// sort it must reproduce: non-increasing length, ties index ascending.
func TestLengthOrderRadixTies(t *testing.T) {
	cases := []struct {
		name    string
		lengths func(i, n int) float64
	}{
		{"three-way-ties", func(i, n int) float64 { return float64(1 + i%3) }},
		{"all-equal", func(i, n int) float64 { return 2.5 }},
		{"sorted-runs", func(i, n int) float64 { return float64(n - i/7) }},
		{"with-zeros", func(i, n int) float64 {
			if i%5 == 0 {
				return 0
			}
			return float64(i % 4)
		}},
	}
	for _, n := range []int{lengthRadixMin, 1000} {
		for _, tc := range cases {
			links := make([]geom.Link, n)
			for i := range links {
				s := geom.Point{X: float64(3 * i), Y: 0}
				r := geom.Point{X: float64(3*i) + tc.lengths(i, n), Y: 0}
				links[i] = geom.NewLink(2*i, 2*i+1, s, r)
			}
			g := conflict.Build(links, conflict.Gamma(1))
			got := ByLengthOrder(g)

			want := make([]int, n)
			for i := range want {
				want[i] = i
			}
			sort.SliceStable(want, func(a, b int) bool {
				return links[want[a]].Length() > links[want[b]].Length()
			})
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d: order[%d]=%d, stable oracle %d", tc.name, n, i, got[i], want[i])
				}
			}
		}
	}
}
