package coloring

import (
	"container/heap"
	"runtime"
	"sort"
	"testing"

	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/mst"
	"aggrate/internal/scenario"
)

// This file pins the CSR-based colorings against slice-based oracles: the
// pre-CSR implementations, retained verbatim below over [][]int32 adjacency
// lists. Any divergence — a different palette, a different vertex order, a
// different tie-break — fails the property tests.

// adjacency expands the graph's CSR rows back into per-vertex slices for
// the oracles.
func adjacency(g *conflict.Graph) [][]int32 {
	adj := make([][]int32, g.N())
	for i := range adj {
		adj[i] = append([]int32(nil), g.Row(i)...)
	}
	return adj
}

// firstFitOracle is the pre-CSR FirstFit: clear-a-palette per vertex.
func firstFitOracle(adj [][]int32, order []int) ([]int, int) {
	n := len(adj)
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	numColors := 0
	used := make([]bool, n+1)
	for _, v := range order {
		for c := 0; c <= numColors; c++ {
			used[c] = false
		}
		for _, w := range adj[v] {
			if c := colors[w]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return colors, numColors
}

// byLengthOrderOracle is the pre-CSR ByLengthOrder: a stable sort comparing
// link lengths recomputed per comparison.
func byLengthOrderOracle(links []geom.Link) []int {
	order := make([]int, len(links))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := links[order[a]].Length(), links[order[b]].Length()
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	return order
}

// oracleSatEntry et al. reproduce the pre-CSR DSATUR exactly: lazy
// container/heap priority queue and per-vertex neighbor-color maps.
type oracleSatEntry struct {
	v        int32
	sat, deg int32
}

type oracleSatHeap []oracleSatEntry

func (h oracleSatHeap) Len() int { return len(h) }
func (h oracleSatHeap) Less(a, b int) bool {
	if h[a].sat != h[b].sat {
		return h[a].sat > h[b].sat
	}
	if h[a].deg != h[b].deg {
		return h[a].deg > h[b].deg
	}
	return h[a].v < h[b].v
}
func (h oracleSatHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *oracleSatHeap) Push(x any)   { *h = append(*h, x.(oracleSatEntry)) }
func (h *oracleSatHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func dsaturOracle(adj [][]int32) ([]int, int) {
	n := len(adj)
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	neighborColors := make([]map[int]struct{}, n)
	sat := make([]int32, n)
	h := make(oracleSatHeap, n)
	for v := 0; v < n; v++ {
		h[v] = oracleSatEntry{v: int32(v), sat: 0, deg: int32(len(adj[v]))}
	}
	heap.Init(&h)
	numColors := 0
	used := make([]bool, n+1)
	for colored := 0; colored < n; {
		e := heap.Pop(&h).(oracleSatEntry)
		v := int(e.v)
		if colors[v] >= 0 || e.sat != sat[v] {
			continue
		}
		for c := 0; c <= numColors; c++ {
			used[c] = false
		}
		for _, w := range adj[v] {
			if c := colors[w]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		colored++
		if c+1 > numColors {
			numColors = c + 1
		}
		for _, w := range adj[v] {
			wi := int(w)
			if colors[wi] >= 0 {
				continue
			}
			if neighborColors[wi] == nil {
				neighborColors[wi] = make(map[int]struct{})
			}
			if _, ok := neighborColors[wi][c]; !ok {
				neighborColors[wi][c] = struct{}{}
				sat[wi]++
				heap.Push(&h, oracleSatEntry{v: w, sat: sat[wi], deg: int32(len(adj[wi]))})
			}
		}
	}
	return colors, numColors
}

// parityInstances materializes the MST link sets of the property suite:
// uniform, cluster and annulus scenarios across several sizes and seeds.
func parityInstances(t *testing.T) map[string][]geom.Link {
	t.Helper()
	out := make(map[string][]geom.Link)
	for _, preset := range []string{"uniform", "cluster", "annulus"} {
		sc, err := scenario.Lookup(preset)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{60, 300, 900} {
			for seed := uint64(1); seed <= 2; seed++ {
				tree, err := mst.NewMSTTree(sc.Generate(n, seed), 0)
				if err != nil {
					t.Fatal(err)
				}
				out[preset+"/"+string(rune('0'+n/100))+"x"+string(rune('0'+seed))] = tree.Links
			}
		}
	}
	return out
}

func sameColoring(t *testing.T, label string, got []int, kGot int, want []int, kWant int) {
	t.Helper()
	if kGot != kWant {
		t.Fatalf("%s: %d colors, oracle %d", label, kGot, kWant)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: vertex %d colored %d, oracle %d", label, v, got[v], want[v])
		}
	}
}

// TestCSRMatchesSliceOracles is the coloring-parity property: FirstFit,
// GreedyByLength (including its length order) and DSatur on the CSR graph
// reproduce the retained slice-based implementations vertex for vertex on
// uniform, cluster, and annulus instances across every conflict-graph
// flavor.
func TestCSRMatchesSliceOracles(t *testing.T) {
	funcs := []conflict.Func{
		conflict.Gamma(1),
		conflict.PowerLaw(2, 0.5),
		conflict.LogThreshold(1.5, 3),
	}
	for name, links := range parityInstances(t) {
		for _, f := range funcs {
			g := conflict.Build(links, f)
			adj := adjacency(g)
			label := name + "/" + f.Name

			order := byLengthOrderOracle(links)
			gotOrder := ByLengthOrder(g)
			for i := range order {
				if order[i] != gotOrder[i] {
					t.Fatalf("%s: LengthOrder[%d]=%d, oracle %d", label, i, gotOrder[i], order[i])
				}
			}

			wc, wk := firstFitOracle(adj, order)
			gc, gk := GreedyByLength(g)
			sameColoring(t, label+"/greedy", gc, gk, wc, wk)

			idx := IndexOrder(g.N())
			wc, wk = firstFitOracle(adj, idx)
			gc, gk = FirstFit(g, idx)
			sameColoring(t, label+"/firstfit-index", gc, gk, wc, wk)

			wc, wk = dsaturOracle(adj)
			gc, gk = DSatur(g)
			sameColoring(t, label+"/dsatur", gc, gk, wc, wk)
		}
	}
}

// TestWorkspaceReuseAcrossGraphs: one Workspace serving graphs of different
// sizes and flavors back to back must not leak state between calls.
func TestWorkspaceReuseAcrossGraphs(t *testing.T) {
	ws := NewWorkspace()
	for name, links := range parityInstances(t) {
		g := conflict.Build(links, conflict.PowerLaw(2, 0.5))
		adj := adjacency(g)
		colors := make([]int, g.N())

		k := ws.GreedyByLength(g, colors)
		wc, wk := firstFitOracle(adj, byLengthOrderOracle(links))
		sameColoring(t, name+"/ws-greedy", colors, k, wc, wk)

		k = ws.DSatur(g, colors)
		wc, wk = dsaturOracle(adj)
		sameColoring(t, name+"/ws-dsatur", colors, k, wc, wk)

		k = ws.JP(g, 42, colors)
		if err := Verify(g, colors); err != nil {
			t.Fatalf("%s: JP improper: %v", name, err)
		}
		if k != NumColors(colors) {
			t.Fatalf("%s: JP reported %d colors, palette says %d", name, k, NumColors(colors))
		}
	}
}

// TestFirstFitZeroAllocs is the hot-loop guard: once the Workspace buffers
// are warm, a FirstFit pass over a 20k-edge graph performs zero allocations
// — not "zero per vertex", zero total.
func TestFirstFitZeroAllocs(t *testing.T) {
	links := testLinks(t, 2000, 9)
	g := conflict.Build(links, conflict.PowerLaw(2, 0.5))
	ws := NewWorkspace()
	colors := make([]int, g.N())
	order := IndexOrder(g.N())
	ws.FirstFit(g, order, colors) // warm the scratch buffers
	if allocs := testing.AllocsPerRun(10, func() {
		ws.FirstFit(g, order, colors)
	}); allocs != 0 {
		t.Fatalf("FirstFit allocated %.0f times per run on warm buffers, want 0", allocs)
	}
	ws.GreedyByLength(g, colors)
	if allocs := testing.AllocsPerRun(10, func() {
		ws.GreedyByLength(g, colors)
	}); allocs != 0 {
		t.Fatalf("GreedyByLength allocated %.0f times per run on warm buffers, want 0", allocs)
	}
	ws.DSatur(g, colors)
	if allocs := testing.AllocsPerRun(10, func() {
		ws.DSatur(g, colors)
	}); allocs != 0 {
		t.Fatalf("DSatur allocated %.0f times per run on warm buffers, want 0", allocs)
	}
}

// TestJPProperAndDeterministic: JP yields a proper dense coloring of every
// conflict-graph flavor, identical across repeated runs and across
// GOMAXPROCS settings (the parallel rounds must not leak scheduling into
// the result), and different seeds may recolor but stay proper.
func TestJPProperAndDeterministic(t *testing.T) {
	links := testLinks(t, 400, 5)
	funcs := []conflict.Func{
		conflict.Gamma(1),
		conflict.PowerLaw(2, 0.5),
		conflict.LogThreshold(1.5, 3),
	}
	for _, f := range funcs {
		g := conflict.Build(links, f)
		colors, k := JP(g, 7)
		if err := Verify(g, colors); err != nil {
			t.Fatalf("%s: JP improper: %v", f.Name, err)
		}
		if k != NumColors(colors) {
			t.Fatalf("%s: JP reported %d colors, palette says %d", f.Name, k, NumColors(colors))
		}
		if k > g.MaxDegree()+1 {
			t.Fatalf("%s: JP used %d colors, exceeds MaxDegree+1 = %d", f.Name, k, g.MaxDegree()+1)
		}
		for c, class := range Classes(colors) {
			if len(class) == 0 {
				t.Fatalf("%s: color %d unused (palette not dense)", f.Name, c)
			}
		}

		prev := runtime.GOMAXPROCS(4)
		wide, wk := JP(g, 7)
		runtime.GOMAXPROCS(prev)
		if wk != k {
			t.Fatalf("%s: JP color count depends on GOMAXPROCS: %d vs %d", f.Name, wk, k)
		}
		for v := range colors {
			if colors[v] != wide[v] {
				t.Fatalf("%s: JP vertex %d depends on GOMAXPROCS: %d vs %d",
					f.Name, v, colors[v], wide[v])
			}
		}

		other, _ := JP(g, 8)
		if err := Verify(g, other); err != nil {
			t.Fatalf("%s: JP(seed=8) improper: %v", f.Name, err)
		}
	}
}
