// Package coloring provides the scheduling algorithms of Sec. 3: the greedy
// first-fit coloring of conflict graphs (a constant-factor approximation
// because the graphs have constant inductive independence, Appendix A), a
// DSATUR baseline, and the first-fit refinement of Theorem 2 that splits an
// MST's links into a constant number of sets S with I(i, S⁺ᵢ) < 1.
package coloring

import (
	"container/heap"
	"fmt"
	"sort"

	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/sinr"
)

// FirstFit colors the conflict graph by first-fit along the given vertex
// order: each vertex gets the smallest color not used by an already-colored
// neighbor. order must be a permutation of [0, g.N()). It returns one color
// per vertex, colors numbered from 0, and the number of colors used.
func FirstFit(g *conflict.Graph, order []int) ([]int, int) {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	numColors := 0
	used := make([]bool, n+1) // color c "used by a neighbor" scratch space
	for _, v := range order {
		for c := 0; c <= numColors; c++ {
			used[c] = false
		}
		for _, w := range g.Adj[v] {
			if c := colors[w]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return colors, numColors
}

// IndexOrder returns the identity order 0, 1, …, n-1: first-fit in input
// order, the length-oblivious baseline.
func IndexOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// ByLengthOrder returns the vertex order GreedyByLength processes: links in
// non-increasing length, ties by index.
func ByLengthOrder(g *conflict.Graph) []int {
	order := IndexOrder(g.N())
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := g.Links[order[a]].Length(), g.Links[order[b]].Length()
		if la != lb {
			return la > lb // longest first
		}
		return order[a] < order[b]
	})
	return order
}

// GreedyByLength colors the conflict graph by first-fit, processing links in
// non-increasing order of length (App. A / Ye–Borodin elimination orders):
// each link gets the smallest color not used by an already-colored neighbor.
// It returns one color per vertex, colors numbered from 0, and the number of
// colors used.
func GreedyByLength(g *conflict.Graph) ([]int, int) {
	return FirstFit(g, ByLengthOrder(g))
}

// satEntry is a (possibly stale) priority-queue entry of the DSATUR loop.
type satEntry struct {
	v        int32
	sat, deg int32
}

type satHeap []satEntry

func (h satHeap) Len() int { return len(h) }
func (h satHeap) Less(a, b int) bool {
	if h[a].sat != h[b].sat {
		return h[a].sat > h[b].sat
	}
	if h[a].deg != h[b].deg {
		return h[a].deg > h[b].deg
	}
	return h[a].v < h[b].v
}
func (h satHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *satHeap) Push(x any)   { *h = append(*h, x.(satEntry)) }
func (h *satHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// DSatur colors the conflict graph with the DSATUR heuristic (Brélaz 1979):
// repeatedly color the uncolored vertex with the highest saturation degree
// (number of distinct neighbor colors), breaking ties by degree then index,
// assigning the smallest color absent from its neighborhood. A stronger
// graph-coloring baseline than the length-order greedy, at O((V+E) log V)
// via a lazy priority queue. Returns colors (0-based, dense) and the count.
func DSatur(g *conflict.Graph) ([]int, int) {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	// neighborColors[v] tracks which colors appear in v's neighborhood;
	// sat[v] is its cardinality — the saturation degree.
	neighborColors := make([]map[int]struct{}, n)
	sat := make([]int32, n)
	h := make(satHeap, n)
	for v := 0; v < n; v++ {
		h[v] = satEntry{v: int32(v), sat: 0, deg: int32(len(g.Adj[v]))}
	}
	heap.Init(&h)
	numColors := 0
	used := make([]bool, n+1)
	for colored := 0; colored < n; {
		e := heap.Pop(&h).(satEntry)
		v := int(e.v)
		if colors[v] >= 0 || e.sat != sat[v] {
			continue // stale entry: already colored or saturation moved on
		}
		for c := 0; c <= numColors; c++ {
			used[c] = false
		}
		for _, w := range g.Adj[v] {
			if c := colors[w]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		colored++
		if c+1 > numColors {
			numColors = c + 1
		}
		for _, w := range g.Adj[v] {
			wi := int(w)
			if colors[wi] >= 0 {
				continue
			}
			if neighborColors[wi] == nil {
				neighborColors[wi] = make(map[int]struct{})
			}
			if _, ok := neighborColors[wi][c]; !ok {
				neighborColors[wi][c] = struct{}{}
				sat[wi]++
				heap.Push(&h, satEntry{v: w, sat: sat[wi], deg: int32(len(g.Adj[wi]))})
			}
		}
	}
	return colors, numColors
}

// Verify checks that colors is a proper coloring of g: every vertex colored
// with a value in [0, numColors) and no edge monochromatic.
func Verify(g *conflict.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 0 {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		for _, w := range g.Adj[v] {
			if colors[w] == c {
				return fmt.Errorf("coloring: edge (%d,%d) monochromatic with color %d", v, w, c)
			}
		}
	}
	return nil
}

// NumColors returns the number of distinct colors (max+1, assuming colors
// are the dense 0-based palette produced by GreedyByLength).
func NumColors(colors []int) int {
	m := 0
	for _, c := range colors {
		if c+1 > m {
			m = c + 1
		}
	}
	return m
}

// Classes groups vertex indices by color. Class k lists the vertices of
// color k in increasing index order.
func Classes(colors []int) [][]int {
	k := NumColors(colors)
	out := make([][]int, k)
	for v, c := range colors {
		out[c] = append(out[c], v)
	}
	return out
}

// Refine implements the first-fit refinement from the proof of Theorem 2:
// iterate over the links in non-increasing order of length and assign each
// link i to the first set S with I(i, S) < 1, where
// I(i, S) = Σ_{j∈S} min{1, l_i^α/d(i,j)^α}. At insertion time every link
// already in S is at least as long as i, so the resulting sets satisfy
// I(i, S⁺ᵢ) < 1 for all their members — which makes each set independent in
// G₁ and, for MSTs, bounds the number of sets by a constant (Lemma 1).
//
// It returns the partition as index sets (in assignment order within each
// set). The number of sets is the empirical "t" of Theorem 2.
func Refine(links []geom.Link, p sinr.Params) [][]int {
	n := len(links)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := links[order[a]].Length(), links[order[b]].Length()
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	var sets [][]int
	// influence[k] is recomputed per candidate; sets stay small (O(1) sets
	// of O(n) links), so the pairwise evaluation is O(n²) overall.
	for _, i := range order {
		placed := false
		for k := range sets {
			infl := 0.0
			for _, j := range sets[k] {
				infl += p.AddOp(links[i], links[j])
				if infl >= 1 {
					break
				}
			}
			if infl < 1 {
				sets[k] = append(sets[k], i)
				placed = true
				break
			}
		}
		if !placed {
			sets = append(sets, []int{i})
		}
	}
	return sets
}

// VerifyRefinement checks the Theorem-2 invariant on a refinement: for every
// set S and every link i ∈ S, I(i, S⁺ᵢ) < 1 where S⁺ᵢ is the subset of S
// with length ≥ l_i (excluding i itself).
func VerifyRefinement(links []geom.Link, sets [][]int, p sinr.Params) error {
	seen := make([]bool, len(links))
	for k, set := range sets {
		for _, i := range set {
			if seen[i] {
				return fmt.Errorf("coloring: link %d in multiple refinement sets", i)
			}
			seen[i] = true
			li := links[i].Length()
			infl := 0.0
			for _, j := range set {
				if j == i || links[j].Length() < li {
					continue
				}
				infl += p.AddOp(links[i], links[j])
			}
			if infl >= 1 {
				return fmt.Errorf("coloring: set %d link %d has I(i,S+)=%g >= 1", k, i, infl)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("coloring: link %d missing from refinement", i)
		}
	}
	return nil
}

// RefinementIndependentInG1 checks the feasibility half of Theorem 2's
// proof: each refinement set must be an independent set of G₁ = G_γ with
// γ = 1.
func RefinementIndependentInG1(links []geom.Link, sets [][]int) error {
	g1 := conflict.Gamma(1)
	for k, set := range sets {
		for a := 0; a < len(set); a++ {
			for b := a + 1; b < len(set); b++ {
				i, j := set[a], set[b]
				if conflict.Conflicting(g1, links[i], links[j]) {
					return fmt.Errorf("coloring: refinement set %d not independent in G1: links %d,%d conflict", k, i, j)
				}
			}
		}
	}
	return nil
}
