// Package coloring provides the scheduling algorithms of Sec. 3: the greedy
// first-fit coloring of conflict graphs (a constant-factor approximation
// because the graphs have constant inductive independence, Appendix A), a
// DSATUR baseline, a parallel Jones–Plassmann coloring, and the first-fit
// refinement of Theorem 2 that splits an MST's links into a constant number
// of sets S with I(i, S⁺ᵢ) < 1.
//
// All colorings walk the conflict graph's CSR rows. The Workspace variants
// are the production hot path: every scratch buffer is owned by the
// Workspace and reused across calls, so steady-state coloring performs zero
// allocations per vertex (see the AllocsPerRun guards in the tests). The
// package-level functions allocate a fresh Workspace per call and remain
// the convenient entry points.
package coloring

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/par"
	"aggrate/internal/sinr"
)

// Workspace owns the reusable scratch buffers of the coloring algorithms.
// A Workspace is not safe for concurrent use; create one per goroutine.
// Buffers grow on demand and persist across calls, so repeated colorings of
// same-sized graphs allocate nothing.
type Workspace struct {
	usedBy   []int32 // usedBy[c] = stamp of the last vertex that saw color c among its neighbors
	colors32 []int32 // FirstFit's narrow color shadow (see there)
	order    []int   // vertex order buffer (LengthOrder / IndexOrder)
	keys     []float64
	sorter   lengthSorter

	// LengthOrder radix-sort state.
	rk, rkTmp []uint64
	orderTmp  []int

	// DSATUR state.
	sat     []int32
	heap    []satEntry
	satBits []uint64 // per-vertex neighbor-color bitsets, flat with a per-graph stride

	// Jones–Plassmann state.
	prio   []uint64
	wait   []int32
	active []int32
	winner []int32
}

// NewWorkspace returns an empty Workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// grow returns buf resized to n, reallocating only when capacity is short.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// FirstFit colors the conflict graph by first-fit along the given vertex
// order: each vertex gets the smallest color not used by an already-colored
// neighbor. order must be a permutation of [0, g.N()). colors must have
// length g.N(); it is overwritten with one color per vertex, colors
// numbered from 0. Returns the number of colors used.
//
// The inner loop is allocation-free: "color c seen among v's neighbors" is
// tracked by stamping usedBy[c] with v's position in the order, so there is
// no per-vertex clearing and no map.
func (ws *Workspace) FirstFit(g *conflict.Graph, order []int, colors []int) int {
	n := g.N()
	// The sweep tracks colors in an int32 shadow and copies out once at the
	// end: colors[w] is the one random-access load per neighbor visit, and
	// halving its width halves the cache footprint of the hottest loop of
	// the coloring stage (the sequential copy-out is negligible next to it).
	ws.colors32 = grow(ws.colors32, n)
	c32 := ws.colors32
	for i := range c32 {
		c32[i] = -1
	}
	ws.usedBy = grow(ws.usedBy, n+1)
	for i := range ws.usedBy {
		ws.usedBy[i] = -1
	}
	usedBy := ws.usedBy
	rowPtr, nbr := g.RowPtr, g.Neighbors
	numColors := int32(0)
	for t, v := range order {
		for _, w := range nbr[rowPtr[v]:rowPtr[v+1]] {
			if c := c32[w]; c >= 0 {
				usedBy[c] = int32(t)
			}
		}
		c := int32(0)
		for usedBy[c] == int32(t) {
			c++
		}
		c32[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	for i, c := range c32 {
		colors[i] = int(c)
	}
	return int(numColors)
}

// FirstFit is the allocating wrapper over (*Workspace).FirstFit; see there.
// It returns one color per vertex, colors numbered from 0, and the number
// of colors used.
func FirstFit(g *conflict.Graph, order []int) ([]int, int) {
	colors := make([]int, g.N())
	k := NewWorkspace().FirstFit(g, order, colors)
	return colors, k
}

// IndexOrder returns the identity order 0, 1, …, n-1: first-fit in input
// order, the length-oblivious baseline.
func IndexOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// lengthSorter sorts a vertex order by precomputed length keys,
// non-increasing, ties by index ascending — a total order, so sort.Sort
// yields the same permutation a stable sort would.
type lengthSorter struct {
	order []int
	keys  []float64
}

func (s *lengthSorter) Len() int { return len(s.order) }
func (s *lengthSorter) Less(a, b int) bool {
	va, vb := s.order[a], s.order[b]
	ka, kb := s.keys[va], s.keys[vb]
	if ka != kb {
		return ka > kb // longest first
	}
	return va < vb
}
func (s *lengthSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }

// lengthRadixMin is the vertex count from which LengthOrder switches to the
// LSD radix sort; below it the comparison sort wins on constant factors and
// avoids the three radix scratch buffers.
const lengthRadixMin = 128

// LengthOrder returns the vertex order GreedyByLength processes: links in
// non-increasing length, ties by index. Lengths are computed once per
// vertex into a reused key buffer (not once per comparison), and the
// returned slice aliases the Workspace; callers must copy it to keep it
// across calls.
//
// Above lengthRadixMin vertices the sort is a byte-wise LSD radix sort over
// the order-reversed float bit patterns: each pass is stable and the input
// is the identity order, so ties land index-ascending — the same total
// order the comparison sort yields, in linear time.
func (ws *Workspace) LengthOrder(g *conflict.Graph) []int {
	n := g.N()
	ws.order = grow(ws.order, n)
	ws.keys = grow(ws.keys, n)
	for i := 0; i < n; i++ {
		ws.order[i] = i
		ws.keys[i] = g.Links[i].Length()
	}
	if n < lengthRadixMin {
		ws.sorter.order, ws.sorter.keys = ws.order, ws.keys
		sort.Sort(&ws.sorter)
		return ws.order
	}
	ws.radixSortByLength(n)
	return ws.order
}

// radixSortByLength sorts ws.order[:n] by ws.keys non-increasing, ties by
// index ascending, via a stable LSD radix sort on uint64 images of the
// keys. The image of a float is monotone-increasing in its value (sign bit
// flipped for positives, all bits for negatives), complemented so that
// ascending radix order is descending key order. Passes whose byte is
// constant across all keys are skipped — for geometric lengths the top
// exponent bytes almost always are.
func (ws *Workspace) radixSortByLength(n int) {
	ws.rk = grow(ws.rk, n)
	ws.rkTmp = grow(ws.rkTmp, n)
	ws.orderTmp = grow(ws.orderTmp, n)
	for i := 0; i < n; i++ {
		b := math.Float64bits(ws.keys[ws.order[i]])
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		ws.rk[i] = ^b
	}
	src, dst := ws.order[:n], ws.orderTmp[:n]
	ksrc, kdst := ws.rk[:n], ws.rkTmp[:n]
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range ksrc {
			count[(k>>shift)&0xff]++
		}
		if count[(ksrc[0]>>shift)&0xff] == n {
			continue
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			b := (ksrc[i] >> shift) & 0xff
			pos := count[b]
			count[b]++
			dst[pos] = src[i]
			kdst[pos] = ksrc[i]
		}
		src, dst = dst, src
		ksrc, kdst = kdst, ksrc
	}
	if &src[0] != &ws.order[0] {
		copy(ws.order[:n], src)
	}
}

// ByLengthOrder is the allocating wrapper over (*Workspace).LengthOrder.
func ByLengthOrder(g *conflict.Graph) []int {
	return append([]int(nil), NewWorkspace().LengthOrder(g)...)
}

// GreedyByLength colors the conflict graph by first-fit, processing links
// in non-increasing order of length (App. A / Ye–Borodin elimination
// orders). colors must have length g.N(); returns the number of colors.
func (ws *Workspace) GreedyByLength(g *conflict.Graph, colors []int) int {
	return ws.FirstFit(g, ws.LengthOrder(g), colors)
}

// GreedyByLength colors the conflict graph by first-fit, processing links in
// non-increasing order of length (App. A / Ye–Borodin elimination orders):
// each link gets the smallest color not used by an already-colored neighbor.
// It returns one color per vertex, colors numbered from 0, and the number of
// colors used.
func GreedyByLength(g *conflict.Graph) ([]int, int) {
	colors := make([]int, g.N())
	k := NewWorkspace().GreedyByLength(g, colors)
	return colors, k
}

// satEntry is a (possibly stale) priority-queue entry of the DSATUR loop.
type satEntry struct {
	v        int32
	sat, deg int32
}

// satLess is the DSATUR priority: saturation desc, degree desc, index asc.
func satLess(a, b satEntry) bool {
	if a.sat != b.sat {
		return a.sat > b.sat
	}
	if a.deg != b.deg {
		return a.deg > b.deg
	}
	return a.v < b.v
}

// satPush and satPop implement a plain binary heap over the Workspace's
// entry slice — container/heap would box every satEntry through an
// interface, allocating on each push.
func satPush(h *[]satEntry, e satEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !satLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func satPop(h *[]satEntry) satEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && satLess(s[l], s[m]) {
			m = l
		}
		if r < len(s) && satLess(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// DSatur colors the conflict graph with the DSATUR heuristic (Brélaz 1979):
// repeatedly color the uncolored vertex with the highest saturation degree
// (number of distinct neighbor colors), breaking ties by degree then index,
// assigning the smallest color absent from its neighborhood. A stronger
// graph-coloring baseline than the length-order greedy, at O((V+E) log V)
// via a lazy priority queue. colors must have length g.N(); returns the
// color count. Neighbor-color sets are flat per-vertex bitsets (stride
// ⌈(Δ+1)/64⌉ words) carved from one Workspace arena — no per-vertex maps.
func (ws *Workspace) DSatur(g *conflict.Graph, colors []int) int {
	n := g.N()
	for i := range colors {
		colors[i] = -1
	}
	maxDeg := g.MaxDegree()
	stride := (maxDeg + 1 + 63) / 64
	if stride == 0 {
		stride = 1
	}
	ws.satBits = grow(ws.satBits, n*stride)
	clear(ws.satBits)
	ws.sat = grow(ws.sat, n)
	clear(ws.sat)
	ws.usedBy = grow(ws.usedBy, n+1)
	for i := range ws.usedBy {
		ws.usedBy[i] = -1
	}
	ws.heap = ws.heap[:0]
	rowPtr, nbr := g.RowPtr, g.Neighbors
	for v := n - 1; v >= 0; v-- {
		satPush(&ws.heap, satEntry{v: int32(v), sat: 0, deg: int32(g.Degree(v))})
	}
	numColors := 0
	for colored := 0; colored < n; {
		e := satPop(&ws.heap)
		v := int(e.v)
		if colors[v] >= 0 || e.sat != ws.sat[v] {
			continue // stale entry: already colored or saturation moved on
		}
		for _, w := range nbr[rowPtr[v]:rowPtr[v+1]] {
			if c := colors[w]; c >= 0 {
				ws.usedBy[c] = e.v
			}
		}
		c := 0
		for ws.usedBy[c] == e.v {
			c++
		}
		colors[v] = c
		colored++
		if c+1 > numColors {
			numColors = c + 1
		}
		for _, w := range nbr[rowPtr[v]:rowPtr[v+1]] {
			wi := int(w)
			if colors[wi] >= 0 {
				continue
			}
			word := &ws.satBits[wi*stride+c/64]
			if bit := uint64(1) << (c % 64); *word&bit == 0 {
				*word |= bit
				ws.sat[wi]++
				satPush(&ws.heap, satEntry{v: w, sat: ws.sat[wi], deg: int32(g.Degree(wi))})
			}
		}
	}
	return numColors
}

// DSatur is the allocating wrapper over (*Workspace).DSatur. Returns colors
// (0-based, dense) and the count.
func DSatur(g *conflict.Graph) ([]int, int) {
	colors := make([]int, g.N())
	k := NewWorkspace().DSatur(g, colors)
	return colors, k
}

// splitmix64 is the vertex-priority hash of JP: a fixed, high-quality
// 64-bit mixer, so priorities are deterministic in (seed, vertex) with no
// RNG state to share between goroutines.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jpHigher reports whether vertex a outranks vertex b under the JP random
// priority, ties broken by index — a strict total order, so every edge has
// exactly one higher endpoint.
func jpHigher(prio []uint64, a, b int32) bool {
	if prio[a] != prio[b] {
		return prio[a] > prio[b]
	}
	return a > b
}

// JP colors the conflict graph with the Jones–Plassmann random-priority
// parallel coloring: each vertex waits until every uncolored neighbor of
// higher priority has been colored, then takes the smallest color absent
// from its neighborhood. Rounds run in parallel over internal/par; the
// result depends only on (graph, seed) — never on GOMAXPROCS or goroutine
// scheduling — because the wait counts evolve identically under any
// execution order. colors must have length g.N(); returns the color count.
//
// This is the shared-memory form of the distributed coloring the paper's
// line of work builds on: each round colors an independent set (the local
// priority maxima), and O(log n) rounds suffice with high probability.
func (ws *Workspace) JP(g *conflict.Graph, seed uint64, colors []int) int {
	n := g.N()
	for i := range colors {
		colors[i] = -1
	}
	ws.prio = grow(ws.prio, n)
	ws.wait = grow(ws.wait, n)
	ws.active = grow(ws.active, n)
	ws.winner = ws.winner[:0]
	prio, wait := ws.prio, ws.wait
	rowPtr, nbr := g.RowPtr, g.Neighbors
	// Two passes: every priority must exist before any wait count reads it.
	par.For(n, func(v int) {
		prio[v] = splitmix64(seed ^ uint64(v))
	})
	par.For(n, func(v int) {
		w := int32(0)
		for _, u := range nbr[rowPtr[v]:rowPtr[v+1]] {
			if jpHigher(prio, u, int32(v)) {
				w++
			}
		}
		wait[v] = w
		ws.active[v] = int32(v)
	})

	active := ws.active
	numColors := 0
	for len(active) > 0 {
		// Winners: active vertices whose higher-priority neighbors are all
		// colored. They form an independent set (of the uncolored subgraph),
		// so coloring them is race-free: no winner reads another winner's
		// color. Partition the frontier in place — winners to the front —
		// then color the winner prefix in parallel.
		ws.winner = ws.winner[:0]
		rest := active[:0]
		for _, v := range active {
			if wait[v] == 0 {
				ws.winner = append(ws.winner, v)
			} else {
				rest = append(rest, v)
			}
		}
		winners := ws.winner
		par.For(len(winners), func(k int) {
			v := winners[k]
			row := nbr[rowPtr[v]:rowPtr[v+1]]
			// Smallest color absent from the colored neighborhood, via a
			// 64-bit window sweep: count used colors per 64-block.
			c := 0
			for {
				var mask uint64
				for _, u := range row {
					if cu := colors[u]; cu >= c && cu < c+64 {
						mask |= uint64(1) << (cu - c)
					}
				}
				if mask != ^uint64(0) {
					c += bits.TrailingZeros64(^mask)
					break
				}
				c += 64
			}
			colors[v] = c
		})
		// Release the lower-priority uncolored neighbors of each winner.
		// Decrements are atomic: two winners may share an uncolored
		// neighbor. The resulting counts are scheduling-independent.
		par.For(len(winners), func(k int) {
			v := winners[k]
			for _, u := range nbr[rowPtr[v]:rowPtr[v+1]] {
				if colors[u] < 0 && jpHigher(prio, v, u) {
					atomic.AddInt32(&wait[u], -1)
				}
			}
		})
		for _, v := range winners {
			if c := colors[v] + 1; c > numColors {
				numColors = c
			}
		}
		active = rest
	}
	return numColors
}

// JP is the allocating wrapper over (*Workspace).JP.
func JP(g *conflict.Graph, seed uint64) ([]int, int) {
	colors := make([]int, g.N())
	k := NewWorkspace().JP(g, seed, colors)
	return colors, k
}

// Verify checks that colors is a proper coloring of g: every vertex colored
// with a value in [0, numColors) and no edge monochromatic.
func Verify(g *conflict.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 0 {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		for _, w := range g.Row(v) {
			if colors[w] == c {
				return fmt.Errorf("coloring: edge (%d,%d) monochromatic with color %d", v, w, c)
			}
		}
	}
	return nil
}

// NumColors returns the number of distinct colors (max+1, assuming colors
// are the dense 0-based palette produced by GreedyByLength).
func NumColors(colors []int) int {
	m := 0
	for _, c := range colors {
		if c+1 > m {
			m = c + 1
		}
	}
	return m
}

// Classes groups vertex indices by color. Class k lists the vertices of
// color k in increasing index order.
func Classes(colors []int) [][]int {
	k := NumColors(colors)
	out := make([][]int, k)
	for v, c := range colors {
		out[c] = append(out[c], v)
	}
	return out
}

// Refine implements the first-fit refinement from the proof of Theorem 2:
// iterate over the links in non-increasing order of length and assign each
// link i to the first set S with I(i, S) < 1, where
// I(i, S) = Σ_{j∈S} min{1, l_i^α/d(i,j)^α}. At insertion time every link
// already in S is at least as long as i, so the resulting sets satisfy
// I(i, S⁺ᵢ) < 1 for all their members — which makes each set independent in
// G₁ and, for MSTs, bounds the number of sets by a constant (Lemma 1).
//
// It returns the partition as index sets (in assignment order within each
// set). The number of sets is the empirical "t" of Theorem 2.
func Refine(links []geom.Link, p sinr.Params) [][]int {
	n := len(links)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := links[order[a]].Length(), links[order[b]].Length()
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	var sets [][]int
	// influence[k] is recomputed per candidate; sets stay small (O(1) sets
	// of O(n) links), so the pairwise evaluation is O(n²) overall.
	for _, i := range order {
		placed := false
		for k := range sets {
			infl := 0.0
			for _, j := range sets[k] {
				infl += p.AddOp(links[i], links[j])
				if infl >= 1 {
					break
				}
			}
			if infl < 1 {
				sets[k] = append(sets[k], i)
				placed = true
				break
			}
		}
		if !placed {
			sets = append(sets, []int{i})
		}
	}
	return sets
}

// VerifyRefinement checks the Theorem-2 invariant on a refinement: for every
// set S and every link i ∈ S, I(i, S⁺ᵢ) < 1 where S⁺ᵢ is the subset of S
// with length ≥ l_i (excluding i itself).
func VerifyRefinement(links []geom.Link, sets [][]int, p sinr.Params) error {
	seen := make([]bool, len(links))
	for k, set := range sets {
		for _, i := range set {
			if seen[i] {
				return fmt.Errorf("coloring: link %d in multiple refinement sets", i)
			}
			seen[i] = true
			li := links[i].Length()
			infl := 0.0
			for _, j := range set {
				if j == i || links[j].Length() < li {
					continue
				}
				infl += p.AddOp(links[i], links[j])
			}
			if infl >= 1 {
				return fmt.Errorf("coloring: set %d link %d has I(i,S+)=%g >= 1", k, i, infl)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("coloring: link %d missing from refinement", i)
		}
	}
	return nil
}

// RefinementIndependentInG1 checks the feasibility half of Theorem 2's
// proof: each refinement set must be an independent set of G₁ = G_γ with
// γ = 1.
func RefinementIndependentInG1(links []geom.Link, sets [][]int) error {
	g1 := conflict.Gamma(1)
	for k, set := range sets {
		for a := 0; a < len(set); a++ {
			for b := a + 1; b < len(set); b++ {
				i, j := set[a], set[b]
				if conflict.Conflicting(g1, links[i], links[j]) {
					return fmt.Errorf("coloring: refinement set %d not independent in G1: links %d,%d conflict", k, i, j)
				}
			}
		}
	}
	return nil
}
