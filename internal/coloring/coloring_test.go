package coloring

import (
	"testing"

	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/mst"
	"aggrate/internal/rng"
	"aggrate/internal/sinr"
)

func testLinks(t *testing.T, n int, seed uint64) []geom.Link {
	t.Helper()
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
	}
	tree, err := mst.NewMSTTree(pts, 0)
	if err != nil {
		t.Fatalf("NewMSTTree: %v", err)
	}
	return tree.Links
}

// TestGreedyProper: first-fit by length must yield a proper coloring of
// every conflict-graph flavor, with a dense 0-based palette.
func TestGreedyProper(t *testing.T) {
	links := testLinks(t, 400, 1)
	funcs := []conflict.Func{
		conflict.Gamma(1),
		conflict.PowerLaw(2, 0.5),
		conflict.LogThreshold(1.5, 3),
	}
	for _, f := range funcs {
		g := conflict.Build(links, f)
		colors, k := GreedyByLength(g)
		if err := Verify(g, colors); err != nil {
			t.Fatalf("%s: Verify: %v", f.Name, err)
		}
		if k != NumColors(colors) {
			t.Fatalf("%s: reported %d colors, palette says %d", f.Name, k, NumColors(colors))
		}
		classes := Classes(colors)
		if len(classes) != k {
			t.Fatalf("%s: %d classes for %d colors", f.Name, len(classes), k)
		}
		total := 0
		for c, class := range classes {
			if len(class) == 0 {
				t.Fatalf("%s: color %d unused (palette not dense)", f.Name, c)
			}
			if !g.IsIndependent(class) {
				t.Fatalf("%s: color class %d not independent", f.Name, c)
			}
			total += len(class)
		}
		if total != g.N() {
			t.Fatalf("%s: classes cover %d of %d vertices", f.Name, total, g.N())
		}
	}
}

// TestVerifyCatchesBadColoring ensures the checker actually rejects.
func TestVerifyCatchesBadColoring(t *testing.T) {
	links := testLinks(t, 100, 2)
	g := conflict.Build(links, conflict.Gamma(1))
	colors, _ := GreedyByLength(g)
	// Find an edge and make it monochromatic.
	for v := range colors {
		if row := g.Row(v); len(row) > 0 {
			colors[v] = colors[row[0]]
			break
		}
	}
	if err := Verify(g, colors); err == nil {
		t.Fatal("Verify accepted a monochromatic edge")
	}
	if err := Verify(g, colors[:10]); err == nil {
		t.Fatal("Verify accepted a short color slice")
	}
}

// TestRefineTheorem2 checks the refinement against both halves of the
// Theorem-2 proof obligation: the I(i, S⁺ᵢ) < 1 invariant and
// G₁-independence of every set — plus the constant-size claim, loosely.
func TestRefineTheorem2(t *testing.T) {
	p := sinr.DefaultParams()
	for seed := uint64(1); seed <= 3; seed++ {
		links := testLinks(t, 300, seed)
		sets := Refine(links, p)
		if err := VerifyRefinement(links, sets, p); err != nil {
			t.Fatalf("seed %d: VerifyRefinement: %v", seed, err)
		}
		if err := RefinementIndependentInG1(links, sets); err != nil {
			t.Fatalf("seed %d: RefinementIndependentInG1: %v", seed, err)
		}
		// Lemma 1 bounds the number of sets by a constant for MST links;
		// the empirical constant on uniform instances is single-digit.
		// 32 is a loose regression tripwire, not the theorem's bound.
		if len(sets) > 32 {
			t.Fatalf("seed %d: refinement used %d sets, far above the expected constant", seed, len(sets))
		}
	}
}

// TestVerifyRefinementCatchesViolations ensures the refinement checker
// rejects duplicated and missing links.
func TestVerifyRefinementCatchesViolations(t *testing.T) {
	p := sinr.DefaultParams()
	links := testLinks(t, 50, 4)
	sets := Refine(links, p)
	dup := append([][]int{{sets[0][0]}}, sets...)
	if err := VerifyRefinement(links, dup, p); err == nil {
		t.Fatal("VerifyRefinement accepted a duplicated link")
	}
	if err := VerifyRefinement(links, sets[1:], p); err == nil && len(sets) > 1 {
		t.Fatal("VerifyRefinement accepted a missing set")
	}
}

// TestDSaturProper: DSATUR must yield a proper, dense coloring of every
// conflict-graph flavor and never use more than MaxDegree+1 colors.
func TestDSaturProper(t *testing.T) {
	links := testLinks(t, 400, 2)
	funcs := []conflict.Func{
		conflict.Gamma(1),
		conflict.PowerLaw(2, 0.5),
		conflict.LogThreshold(1.5, 3),
	}
	for _, f := range funcs {
		g := conflict.Build(links, f)
		colors, k := DSatur(g)
		if err := Verify(g, colors); err != nil {
			t.Fatalf("%s: Verify: %v", f.Name, err)
		}
		if k != NumColors(colors) {
			t.Fatalf("%s: reported %d colors, palette says %d", f.Name, k, NumColors(colors))
		}
		if k > g.MaxDegree()+1 {
			t.Fatalf("%s: DSATUR used %d colors, exceeds MaxDegree+1 = %d",
				f.Name, k, g.MaxDegree()+1)
		}
		for c, class := range Classes(colors) {
			if len(class) == 0 {
				t.Fatalf("%s: color %d unused (palette not dense)", f.Name, c)
			}
		}
	}
}

// TestDSaturKnownGraphs pins DSATUR on hand-built graphs: it colors odd
// cycles with 3 colors and bipartite even cycles with 2, where index-order
// first-fit on the same even cycle can need 3.
func TestDSaturKnownGraphs(t *testing.T) {
	cycle := func(n int) *conflict.Graph {
		// Unit-length links around a circle, conflicting iff adjacent on the
		// cycle: build the graph directly via the naive constructor on a
		// synthetic threshold is awkward, so assemble adjacency by hand.
		adj := make([][]int32, n)
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			adj[i] = append(adj[i], int32(j))
			adj[j] = append(adj[j], int32(i))
		}
		return conflict.FromAdj(make([]geom.Link, n), conflict.Func{}, adj)
	}
	if _, k := DSatur(cycle(5)); k != 3 {
		t.Fatalf("DSATUR on C5 used %d colors, want 3", k)
	}
	if _, k := DSatur(cycle(6)); k != 2 {
		t.Fatalf("DSATUR on C6 used %d colors, want 2", k)
	}
	colors, k := DSatur(cycle(7))
	if k != 3 {
		t.Fatalf("DSATUR on C7 used %d colors, want 3", k)
	}
	if len(colors) != 7 {
		t.Fatalf("DSATUR on C7 colored %d vertices", len(colors))
	}
}

// TestFirstFitOrders: FirstFit along the length order reproduces
// GreedyByLength exactly; index order is a valid (if weaker) coloring.
func TestFirstFitOrders(t *testing.T) {
	links := testLinks(t, 300, 3)
	g := conflict.Build(links, conflict.PowerLaw(2, 0.5))
	byLen, kLen := GreedyByLength(g)
	ffLen, kFF := FirstFit(g, ByLengthOrder(g))
	if kLen != kFF {
		t.Fatalf("FirstFit(ByLengthOrder) used %d colors, GreedyByLength %d", kFF, kLen)
	}
	for v := range byLen {
		if byLen[v] != ffLen[v] {
			t.Fatalf("vertex %d: FirstFit(ByLengthOrder)=%d, GreedyByLength=%d", v, ffLen[v], byLen[v])
		}
	}
	idx, _ := FirstFit(g, IndexOrder(g.N()))
	if err := Verify(g, idx); err != nil {
		t.Fatalf("index-order first-fit improper: %v", err)
	}
}
