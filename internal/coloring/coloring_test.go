package coloring

import (
	"testing"

	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/mst"
	"aggrate/internal/rng"
	"aggrate/internal/sinr"
)

func testLinks(t *testing.T, n int, seed uint64) []geom.Link {
	t.Helper()
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
	}
	tree, err := mst.NewMSTTree(pts, 0)
	if err != nil {
		t.Fatalf("NewMSTTree: %v", err)
	}
	return tree.Links
}

// TestGreedyProper: first-fit by length must yield a proper coloring of
// every conflict-graph flavor, with a dense 0-based palette.
func TestGreedyProper(t *testing.T) {
	links := testLinks(t, 400, 1)
	funcs := []conflict.Func{
		conflict.Gamma(1),
		conflict.PowerLaw(2, 0.5),
		conflict.LogThreshold(1.5, 3),
	}
	for _, f := range funcs {
		g := conflict.Build(links, f)
		colors, k := GreedyByLength(g)
		if err := Verify(g, colors); err != nil {
			t.Fatalf("%s: Verify: %v", f.Name, err)
		}
		if k != NumColors(colors) {
			t.Fatalf("%s: reported %d colors, palette says %d", f.Name, k, NumColors(colors))
		}
		classes := Classes(colors)
		if len(classes) != k {
			t.Fatalf("%s: %d classes for %d colors", f.Name, len(classes), k)
		}
		total := 0
		for c, class := range classes {
			if len(class) == 0 {
				t.Fatalf("%s: color %d unused (palette not dense)", f.Name, c)
			}
			if !g.IsIndependent(class) {
				t.Fatalf("%s: color class %d not independent", f.Name, c)
			}
			total += len(class)
		}
		if total != g.N() {
			t.Fatalf("%s: classes cover %d of %d vertices", f.Name, total, g.N())
		}
	}
}

// TestVerifyCatchesBadColoring ensures the checker actually rejects.
func TestVerifyCatchesBadColoring(t *testing.T) {
	links := testLinks(t, 100, 2)
	g := conflict.Build(links, conflict.Gamma(1))
	colors, _ := GreedyByLength(g)
	// Find an edge and make it monochromatic.
	for v := range colors {
		if len(g.Adj[v]) > 0 {
			colors[v] = colors[g.Adj[v][0]]
			break
		}
	}
	if err := Verify(g, colors); err == nil {
		t.Fatal("Verify accepted a monochromatic edge")
	}
	if err := Verify(g, colors[:10]); err == nil {
		t.Fatal("Verify accepted a short color slice")
	}
}

// TestRefineTheorem2 checks the refinement against both halves of the
// Theorem-2 proof obligation: the I(i, S⁺ᵢ) < 1 invariant and
// G₁-independence of every set — plus the constant-size claim, loosely.
func TestRefineTheorem2(t *testing.T) {
	p := sinr.DefaultParams()
	for seed := uint64(1); seed <= 3; seed++ {
		links := testLinks(t, 300, seed)
		sets := Refine(links, p)
		if err := VerifyRefinement(links, sets, p); err != nil {
			t.Fatalf("seed %d: VerifyRefinement: %v", seed, err)
		}
		if err := RefinementIndependentInG1(links, sets); err != nil {
			t.Fatalf("seed %d: RefinementIndependentInG1: %v", seed, err)
		}
		// Lemma 1 bounds the number of sets by a constant for MST links;
		// the empirical constant on uniform instances is single-digit.
		// 32 is a loose regression tripwire, not the theorem's bound.
		if len(sets) > 32 {
			t.Fatalf("seed %d: refinement used %d sets, far above the expected constant", seed, len(sets))
		}
	}
}

// TestVerifyRefinementCatchesViolations ensures the refinement checker
// rejects duplicated and missing links.
func TestVerifyRefinementCatchesViolations(t *testing.T) {
	p := sinr.DefaultParams()
	links := testLinks(t, 50, 4)
	sets := Refine(links, p)
	dup := append([][]int{{sets[0][0]}}, sets...)
	if err := VerifyRefinement(links, dup, p); err == nil {
		t.Fatal("VerifyRefinement accepted a duplicated link")
	}
	if err := VerifyRefinement(links, sets[1:], p); err == nil && len(sets) > 1 {
		t.Fatal("VerifyRefinement accepted a missing set")
	}
}
