package power

import (
	"errors"
	"math"
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/sinr"
)

func testParams() sinr.Params { return sinr.Params{Alpha: 3, Beta: 2, Noise: 0, Epsilon: 0.5} }

// TestObliviousSchemes pins P_τ(i) = C·l^{τα} for the three named schemes
// in the noise-free model (C = 1).
func TestObliviousSchemes(t *testing.T) {
	p := testParams()
	links := []geom.Link{
		geom.NewLink(0, 1, geom.Point{}, geom.Point{X: 2}), // l = 2
		geom.NewLink(2, 3, geom.Point{}, geom.Point{X: 4}), // l = 4
	}
	cases := []struct {
		scheme Oblivious
		want   []float64
	}{
		{Uniform(), []float64{1, 1}},
		{Linear(), []float64{8, 64}},                            // l^3
		{Mean(), []float64{math.Pow(2, 1.5), math.Pow(4, 1.5)}}, // l^{1.5}
	}
	for _, c := range cases {
		got, err := c.scheme.Assign(links, p)
		if err != nil {
			t.Fatalf("%s: %v", c.scheme.Name(), err)
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-12 {
				t.Fatalf("%s: power[%d] = %g, want %g", c.scheme.Name(), i, got[i], c.want[i])
			}
		}
	}
	if _, err := (Oblivious{Tau: 2}).Assign(links, p); err == nil {
		t.Fatal("Assign accepted tau outside [0,1]")
	}
}

// TestNoiseFloorConstant: with noise, C scales so every link clears the
// interference-limited floor; Validate must agree.
func TestNoiseFloorConstant(t *testing.T) {
	p := sinr.Params{Alpha: 3, Beta: 2, Noise: 0.01, Epsilon: 0.5}
	links := []geom.Link{
		geom.NewLink(0, 1, geom.Point{}, geom.Point{X: 1}),
		geom.NewLink(2, 3, geom.Point{}, geom.Point{X: 10}),
	}
	for _, sch := range []Oblivious{Uniform(), Mean(), Linear()} {
		powers, err := sch.Assign(links, p)
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		if err := Validate(links, powers, p); err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
	}
}

// TestSolveFeasiblePair: the Jacobi fixed point must make the slot
// SINR-feasible, which the sinr package can confirm independently.
func TestSolveFeasiblePair(t *testing.T) {
	p := testParams()
	links := []geom.Link{
		geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1}),
		geom.NewLink(2, 3, geom.Point{X: 2}, geom.Point{X: 3}),
	}
	// Uniform power fails this pair (margin 0.5) but global control works.
	powers, err := Solve(links, p, SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ok, err := p.Feasible(links, powers)
	if err != nil || !ok {
		t.Fatalf("Solve output infeasible: ok=%v err=%v powers=%v", ok, err, powers)
	}
}

// TestSolveInfeasible: coinciding links cannot be scheduled together under
// any power assignment.
func TestSolveInfeasible(t *testing.T) {
	p := testParams()
	a := geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1})
	b := geom.NewLink(2, 3, geom.Point{X: 0, Y: 0.001}, geom.Point{X: 1, Y: 0.001})
	_, err := Solve([]geom.Link{a, b}, p, SolveOptions{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Solve = %v, want ErrInfeasible", err)
	}
}

func TestSolveEmpty(t *testing.T) {
	powers, err := Solve(nil, testParams(), SolveOptions{})
	if err != nil || len(powers) != 0 {
		t.Fatalf("Solve(nil) = %v, %v; want empty, nil", powers, err)
	}
}
