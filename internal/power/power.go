// Package power implements the two power-control modes of the paper.
//
// Oblivious power schemes P_τ(i) = C·l_i^{τα} (Sec. 2) depend only on the
// link's own length: τ=0 is uniform power, τ=1 is linear power, and the
// square-root scheme τ=1/2 ("mean power") is the standard choice for the
// O(log log Δ)-schedule result. The constant C is fixed per instance so
// that the interference-limited assumption P(i) ≥ (1+ε)·β·N·l_i^α holds for
// every link.
//
// Global power control computes an explicit feasible assignment for a set of
// links scheduled in the same slot by solving the SINR linear system
// P = B·P + v (with B the normalized gain matrix and v a positive base
// vector) via Jacobi iteration, which converges exactly when the set is
// feasible under some power assignment (spectral radius ρ(B) < 1).
package power

import (
	"fmt"
	"math"

	"aggrate/internal/geom"
	"aggrate/internal/sinr"
)

// Scheme assigns transmission powers to a set of links as a pure function
// of the instance (an "oblivious" assignment in the paper's terminology).
type Scheme interface {
	// Name identifies the scheme in reports, e.g. "P_0.5".
	Name() string
	// Assign returns one power per link. The returned slice is freshly
	// allocated.
	Assign(links []geom.Link, p sinr.Params) ([]float64, error)
}

// Oblivious is the power scheme P_τ(i) = C·l_i^{τα}.
type Oblivious struct {
	// Tau is the exponent fraction τ ∈ [0, 1].
	Tau float64
}

var _ Scheme = Oblivious{}

// Uniform is P₀: every sender uses the same power.
func Uniform() Oblivious { return Oblivious{Tau: 0} }

// Linear is P₁: power proportional to l^α, equalizing received signal.
func Linear() Oblivious { return Oblivious{Tau: 1} }

// Mean is P_{1/2}, the square-root scheme behind the O(log log Δ) bound.
func Mean() Oblivious { return Oblivious{Tau: 0.5} }

// Name implements Scheme.
func (o Oblivious) Name() string { return fmt.Sprintf("P_%g", o.Tau) }

// Assign implements Scheme. The instance constant C is the smallest value
// that keeps every link interference-limited: C = (1+ε)·β·N·l_max^{(1-τ)α}
// when noise is present, and 1 in the noise-free model (where only power
// ratios matter).
func (o Oblivious) Assign(links []geom.Link, p sinr.Params) ([]float64, error) {
	if o.Tau < 0 || o.Tau > 1 {
		return nil, fmt.Errorf("power: tau %g outside [0,1]", o.Tau)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := 1.0
	if p.Noise > 0 {
		lmax := 0.0
		for _, l := range links {
			lmax = math.Max(lmax, l.Length())
		}
		c = (1 + p.Epsilon) * p.Beta * p.Noise * math.Pow(lmax, (1-o.Tau)*p.Alpha)
	}
	out := make([]float64, len(links))
	for i, l := range links {
		le := l.Length()
		if le <= 0 {
			return nil, fmt.Errorf("power: link %d has non-positive length", i)
		}
		out[i] = c * math.Pow(le, o.Tau*p.Alpha)
	}
	return out, nil
}

// SolveOptions tunes the global-power linear-system solver.
type SolveOptions struct {
	// MaxIters caps the Jacobi iterations (default 10_000).
	MaxIters int
	// Tol is the relative convergence tolerance (default 1e-12).
	Tol float64
}

func (s *SolveOptions) defaults() {
	if s.MaxIters <= 0 {
		s.MaxIters = 10_000
	}
	if s.Tol <= 0 {
		s.Tol = 1e-12
	}
}

// ErrInfeasible is returned by Solve when the link set admits no feasible
// power assignment (spectral radius of the gain matrix ≥ 1).
var ErrInfeasible = fmt.Errorf("power: set is infeasible under any power assignment")

// Solve computes a power assignment making the whole set feasible in one
// slot, for the global-power-control mode. It solves P = B·P + v by Jacobi
// iteration with v_i = max((1+ε)·β·N·l_i^α, l_i^α·scale): the fixed point
// satisfies every SINR constraint with strict slack and the
// interference-limited floor. Returns ErrInfeasible when ρ(B) ≥ 1.
func Solve(links []geom.Link, p sinr.Params, opts SolveOptions) ([]float64, error) {
	opts.defaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(links)
	if n == 0 {
		return []float64{}, nil
	}
	b := p.GainMatrix(links)
	if rho := sinr.SpectralRadius(b, 100); rho >= 1 {
		return nil, fmt.Errorf("%w (spectral radius %.6g)", ErrInfeasible, rho)
	}
	// Base vector: noise floor with headroom, or a well-scaled positive
	// vector in the noise-free model.
	v := make([]float64, n)
	for i, l := range links {
		la := math.Pow(l.Length(), p.Alpha)
		v[i] = la
		if nf := (1 + p.Epsilon) * p.Beta * p.Noise * la; nf > v[i] {
			v[i] = nf
		}
	}
	cur := append([]float64(nil), v...)
	next := make([]float64, n)
	for it := 0; it < opts.MaxIters; it++ {
		var maxRel float64
		for i := 0; i < n; i++ {
			s := v[i]
			row := b[i]
			for j := 0; j < n; j++ {
				s += row[j] * cur[j]
			}
			next[i] = s
			rel := math.Abs(s-cur[i]) / s
			if rel > maxRel {
				maxRel = rel
			}
		}
		cur, next = next, cur
		if maxRel < opts.Tol {
			return cur, nil
		}
	}
	return nil, fmt.Errorf("power: Jacobi did not converge in %d iterations", opts.MaxIters)
}

// Validate checks that a concrete power assignment is interference-limited:
// P(i) ≥ (1+ε)·β·N·l_i^α for every link (trivially true when Noise == 0,
// where only positivity is required).
func Validate(links []geom.Link, powers []float64, p sinr.Params) error {
	if len(links) != len(powers) {
		return fmt.Errorf("power: %d links but %d powers", len(links), len(powers))
	}
	for i, l := range links {
		if powers[i] <= 0 {
			return fmt.Errorf("power: non-positive power %g on link %d", powers[i], i)
		}
		floor := (1 + p.Epsilon) * p.Beta * p.Noise * math.Pow(l.Length(), p.Alpha)
		if powers[i] < floor*(1-1e-9) {
			return fmt.Errorf("power: link %d power %g below interference-limited floor %g",
				i, powers[i], floor)
		}
	}
	return nil
}
