// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the experiment harness.
//
// Reproducibility is a first-class requirement for the benchmark tables:
// every experiment is parameterized by a seed and must produce the same
// instance on every platform. math/rand's global state and version-drifting
// algorithms are avoided; this package implements xoshiro256** with a
// SplitMix64 seeder, both with published reference outputs.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. The zero value is invalid; construct
// with New. RNG is not safe for concurrent use; Split off per-goroutine
// generators instead of sharing one.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed via SplitMix64.
// Any seed, including 0, is valid.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return &r
}

// Split returns a new generator whose stream is a deterministic function of
// the parent's current state but statistically independent of the parent's
// subsequent output. The parent advances by one step.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the n elements addressed by swap uniformly at random,
// in the manner of math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
