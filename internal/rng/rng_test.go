package rng

import (
	"math"
	"testing"
)

// TestDeterministic: same seed, same stream — the reproducibility contract
// every experiment table rests on.
func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds produced the same first output")
	}
}

// TestSplitIndependence: a split generator must differ from the parent's
// subsequent stream and be itself deterministic.
func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	p, c := parent.Uint64(), child.Uint64()
	if p == c {
		t.Fatal("parent and child emitted the same value after Split")
	}
	parent2 := New(7)
	child2 := parent2.Split()
	if child2.Uint64() != c {
		t.Fatal("Split not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g outside [0,1)", v)
		}
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := New(4)
	seen := make([]bool, 7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(7) never produced %d in 10k draws", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

// TestNormFloat64Moments: loose sanity on mean and variance of the polar
// method (10k samples; bounds are ~6σ wide).
func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	n := 10000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.06 {
		t.Fatalf("sample mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("sample variance %g too far from 1", variance)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("Shuffle changed elements: %v", xs)
	}
}
