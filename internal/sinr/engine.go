// Engine is the fast SINR verification kernel behind
// (*schedule.Schedule).VerifySINR. The naive Margin does exact O(m²)
// pairwise interference per slot with a fresh math.Pow on every pair; the
// engine cuts the hot path to near-linear in three tiers while keeping
// every returned verdict and margin exact:
//
//  1. Far-field pyramid. Each slot's senders are bucketed into a dyadic
//     grid pyramid (the same dyadic machinery style as the internal/conflict
//     build: a power-of-two base grid plus coarser levels merging 2×2
//     children). For a receiver, any pyramid node whose sender bounding box
//     is far relative to its size — max/min squared distance within a factor
//     θ² — contributes its total power mass over [maxdist, mindist], giving
//     a certified interval for the interference and hence for the link's
//     SINR margin. Nearby nodes are opened; base cells are summed exactly.
//     The first pass runs every link with a deliberately coarse θ, so the
//     near field stays tiny and the descent costs O(near + log m) per link.
//
//  2. Adaptive cell refinement. The slot's worst margin is the minimum over
//     links, so only links whose margin interval reaches below the smallest
//     interval upper bound U can attain it. Instead of falling straight to
//     exact pairwise for those, the engine re-descends just the straddling
//     links with progressively tighter θ from engineThetaLadder — splitting
//     the cells that were aggregated before — until the candidate set stops
//     shrinking or a tighter pass would cost more than the exact row.
//     Intervals at every rung are certified, so mixing rungs is sound.
//
//  3. SoA exact kernels. Links still straddling after the ladder are
//     resolved by the exact pairwise sum, in slot order like the naive
//     path. Both this fallback and the near-field cell sums run on flat
//     structure-of-arrays float64 loops (separate x/y/power slices,
//     cell-ordered copies, no per-link struct loads) specialized per
//     α ∈ {2, 3, 4} with a math.Pow generic fallback. Every interval is
//     padded by a relative 1e-9 so floating-point slop between the interval
//     and exact arithmetic can never eject the true argmin from the
//     candidate set — the returned margin is always an exactly-computed one.
//
// Determinism: MarginSlot is a pure function of (params, links, slot,
// powers); scratch and stats only carry reusable buffers and counters.
package sinr

import (
	"fmt"
	"math"

	"aggrate/internal/geom"
)

// intervalPad is the relative padding applied to the certified margin
// intervals before candidate selection. It dominates the accumulated
// floating-point discrepancy between the interval arithmetic and the exact
// pairwise sum (≈ m·2⁻⁵² ≲ 1e-10 even for million-link slots), so interval
// containment — and with it the exactness of the returned margin — survives
// rounding.
const intervalPad = 1e-9

// engineExactCutoff is the slot size at or below which the grid is not worth
// building and the engine runs the exact pairwise evaluation directly (still
// on the cached-gain SoA kernels, so small slots skip per-pair math.Pow too).
const engineExactCutoff = 64

// engineThetaLadder2 holds the squared opening thresholds θ² of the adaptive
// descent, coarsest first. A pyramid node is aggregated when
// maxdist² ≤ θ²·mindist², i.e. its power mass is localized within a factor θ
// of its distance, bounding the per-node interval ratio by θ^α. The first
// rung runs every link: θ=2 keeps the near field to a handful of cells.
// Later rungs re-descend only candidate links — straddlers of the slot
// minimum — trading a (θ−1)⁻² blowup of the near field for interval ratios
// that approach 1 and evict almost all candidates before the exact fallback.
var engineThetaLadder2 = [...]float64{
	2.0 * 2.0,
	1.5 * 1.5,
	1.25 * 1.25,
	1.12 * 1.12,
	1.06 * 1.06,
	1.03 * 1.03,
}

// engineRefineMin is the candidate-set size at or below which refinement
// stops and the engine resolves the stragglers exactly — a few exact rows
// are cheaper than another descent pass.
const engineRefineMin = 4

// engineMaxGridDim caps the base-grid resolution (memory is O(dim²)).
const engineMaxGridDim = 1024

// Engine caches per-link gains for repeated slot verification over a fixed
// link set. Create one per schedule with NewEngine; MarginSlot is then safe
// for concurrent use as long as each goroutine owns its EngineScratch and
// EngineStats.
type Engine struct {
	p         Params
	alphaHalf float64
	powMode   int
	links     []geom.Link
	// lenA[i] = l_i^α, the received-signal denominator of link i.
	lenA []float64
}

// pow-mode fast paths for (d²)^(α/2).
const (
	powGeneric = iota
	powAlpha2
	powAlpha3
	powAlpha4
)

// NewEngine precomputes the per-link gain cache for the link set. The links
// slice is retained (not copied); callers must not mutate it while the
// engine is in use.
func NewEngine(p Params, links []geom.Link) *Engine {
	e := &Engine{p: p, alphaHalf: p.Alpha / 2, powMode: powGeneric, links: links}
	switch p.Alpha {
	case 2:
		e.powMode = powAlpha2
	case 3:
		e.powMode = powAlpha3
	case 4:
		e.powMode = powAlpha4
	}
	e.lenA = make([]float64, len(links))
	for i, l := range links {
		e.lenA[i] = e.powD2(l.S.Dist2(l.R))
	}
	return e
}

// powD2 returns (d2)^(α/2) = d^α for the squared distance d2. Only the
// default α=3 path is kept small enough to inline into the descent's
// far-node bounds (math.Sqrt compiles to a single instruction); α=2, α=4
// and the generic fractional exponent pay an out-of-line call via powD2Slow.
// The pairwise sums never come through here — they use the per-α rowSum
// kernels below.
func (e *Engine) powD2(d2 float64) float64 {
	if e.powMode == powAlpha3 {
		return d2 * math.Sqrt(d2)
	}
	return e.powD2Slow(d2)
}

// powD2Slow carries the non-default exponents out of line, keeping powD2
// itself under the inlining budget.
//
//go:noinline
func (e *Engine) powD2Slow(d2 float64) float64 {
	switch e.powMode {
	case powAlpha2:
		return d2
	case powAlpha4:
		return d2 * d2
	}
	return math.Pow(d2, e.alphaHalf)
}

// rowSum accumulates Σ_j pw[j]/dist(p_j, q)^α into acc over the flat sender
// arrays, dispatching to the α-specialized SoA kernels. The kernels add
// terms in slice order, so callers control summation order exactly (the
// naive-parity contract).
func (e *Engine) rowSum(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	switch e.powMode {
	case powAlpha3:
		return rowSumA3(acc, px, py, pw, qx, qy)
	case powAlpha2:
		return rowSumA2(acc, px, py, pw, qx, qy)
	case powAlpha4:
		return rowSumA4(acc, px, py, pw, qx, qy)
	}
	return e.rowSumGeneric(acc, px, py, pw, qx, qy)
}

// rowSumA3 is the α=3 kernel: d³ = d²·√d². The py/pw reslices pin their
// lengths to len(px) so the compiler drops the per-iteration bounds checks
// and keeps the accumulator in a register.
func rowSumA3(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	py = py[:len(px)]
	pw = pw[:len(px)]
	for j := range px {
		dx := px[j] - qx
		dy := py[j] - qy
		d2 := dx*dx + dy*dy
		acc += pw[j] / (d2 * math.Sqrt(d2))
	}
	return acc
}

// rowSumA2 is the α=2 kernel: d² directly.
func rowSumA2(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	py = py[:len(px)]
	pw = pw[:len(px)]
	for j := range px {
		dx := px[j] - qx
		dy := py[j] - qy
		acc += pw[j] / (dx*dx + dy*dy)
	}
	return acc
}

// rowSumA4 is the α=4 kernel: d⁴ = (d²)².
func rowSumA4(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	py = py[:len(px)]
	pw = pw[:len(px)]
	for j := range px {
		dx := px[j] - qx
		dy := py[j] - qy
		d2 := dx*dx + dy*dy
		acc += pw[j] / (d2 * d2)
	}
	return acc
}

// rowSumGeneric handles fractional exponents via math.Pow.
func (e *Engine) rowSumGeneric(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	py = py[:len(px)]
	pw = pw[:len(px)]
	for j := range px {
		dx := px[j] - qx
		dy := py[j] - qy
		acc += pw[j] / math.Pow(dx*dx+dy*dy, e.alphaHalf)
	}
	return acc
}

// EngineStats counts the work the engine performed, for diagnostics and the
// bench artifact. All fields are exact sums over the verified slots and are
// deterministic in the input regardless of slot-level parallelism.
//
// The pair counters use per-link distinct-pair semantics: each link
// contributes the pairwise terms of the single evaluation that produced its
// final margin or interval — m−1 ExactPairs if it fell to the exact row,
// otherwise the near-field pairs of its last (tightest) descent. Work from
// superseded coarser descents is not counted, so
// ExactPairs+NearPairs ≤ NaivePairs and ExactPairsFrac ≤ 1 hold structurally,
// including when stats are accumulated across γ-escalation retries with Add
// (both numerator and denominator grow together, keeping the ratio a
// weighted mean of per-pass ratios).
type EngineStats struct {
	// Links counts link-slot SINR evaluations.
	Links int64
	// ExactLinks counts links resolved by the exact pairwise fallback
	// (including every link of slots at or below the small-slot cutoff).
	ExactLinks int64
	// ExactPairs counts pairwise interference terms evaluated by the
	// fallback: m−1 per exact link.
	ExactPairs int64
	// NearPairs counts pairwise terms evaluated exactly in the near field
	// of the final descent of links that did not fall to the exact row.
	NearPairs int64
	// FarNodes counts pyramid nodes accepted by the far-field bound across
	// all descent passes (a work counter, not a pair fraction).
	FarNodes int64
	// RefinedLinks counts refined link descents: one per link per
	// tighter-θ ladder rung it was re-descended at.
	RefinedLinks int64
	// RefinedCells counts base cells opened (summed exactly) during
	// refined descents.
	RefinedCells int64
	// NaivePairs counts the pairwise terms the naive path would have
	// evaluated: Σ_slots m·(m−1).
	NaivePairs int64
}

// Add accumulates o into st. This is the γ-retry accumulation path: Timings
// report stats summed over every verification pass of an instance, and the
// ExactPairsFrac ≤ 1 invariant is preserved because numerator and
// denominator fields accumulate together.
func (st *EngineStats) Add(o EngineStats) {
	st.Links += o.Links
	st.ExactLinks += o.ExactLinks
	st.ExactPairs += o.ExactPairs
	st.NearPairs += o.NearPairs
	st.FarNodes += o.FarNodes
	st.RefinedLinks += o.RefinedLinks
	st.RefinedCells += o.RefinedCells
	st.NaivePairs += o.NaivePairs
}

// ExactPairsFrac returns the fraction of the naive pairwise work the engine
// performed for the evaluations that produced final margins
// ((near + fallback pairs) / naive pairs), the headline "how much O(m²)
// survived" diagnostic. Always in [0, 1]; zero when no pairs were required.
func (st EngineStats) ExactPairsFrac() float64 {
	if st.NaivePairs == 0 {
		return 0
	}
	return float64(st.ExactPairs+st.NearPairs) / float64(st.NaivePairs)
}

// engineNode is one pyramid node: the total transmit power mass of the
// senders it covers and their exact bounding box. A zero mass marks an
// empty node.
type engineNode struct {
	mass                   float64
	minX, minY, maxX, maxY float64
}

// EngineScratch holds the reusable per-goroutine buffers of MarginSlot, so
// steady-state verification allocates nothing per slot.
type EngineScratch struct {
	// Gathered per-slot-member data (slot-local indexing).
	px, py []float64 // sender coordinates
	qx, qy []float64 // receiver coordinates
	pw     []float64 // transmit powers
	sig    []float64 // received signals P/l^α
	lb, ub []float64 // certified margin interval per member

	cellOf  []int32 // base-grid cell of each member's sender
	posOf   []int32 // position of each member in the cell-ordered arrays
	starts  []int32 // CSR cell offsets into members
	fill    []int32 // CSR fill cursors (build-time only)
	members []int32 // member indices grouped by base cell
	// Cell-ordered copies of (px, py, pw), indexed like members, so the
	// near-field sums of the interval descent scan contiguous memory.
	cpx, cpy, cpw []float64

	near []int32 // near pairs of each member's latest descent
	cand []int32 // current candidate members (ascending)

	nodes    []engineNode // pyramid, level-major from the base grid up
	levelOff []int        // node offset of each pyramid level
	stack    []nodeRef    // descent stack

	d0         int     // base-grid dimension (power of two)
	nonEmpty   int     // non-empty base cells
	invCS      float64 // 1 / cell size
	gridOX     float64 // grid origin (sender bbox min corner)
	gridOY     float64
	haveCutoff bool
}

type nodeRef struct{ level, x, y int32 }

// NewEngineScratch returns an empty scratch; buffers grow on demand and are
// reused across MarginSlot calls.
func NewEngineScratch() *EngineScratch { return &EngineScratch{} }

// reserve sizes the per-member buffers for a slot of m links.
func (sc *EngineScratch) reserve(m int) {
	if cap(sc.px) < m {
		sc.px = make([]float64, m)
		sc.py = make([]float64, m)
		sc.qx = make([]float64, m)
		sc.qy = make([]float64, m)
		sc.pw = make([]float64, m)
		sc.sig = make([]float64, m)
		sc.lb = make([]float64, m)
		sc.ub = make([]float64, m)
		sc.cellOf = make([]int32, m)
		sc.posOf = make([]int32, m)
		sc.members = make([]int32, m)
		sc.cpx = make([]float64, m)
		sc.cpy = make([]float64, m)
		sc.cpw = make([]float64, m)
		sc.near = make([]int32, m)
		sc.cand = make([]int32, m)
	}
	sc.px, sc.py = sc.px[:m], sc.py[:m]
	sc.qx, sc.qy = sc.qx[:m], sc.qy[:m]
	sc.pw, sc.sig = sc.pw[:m], sc.sig[:m]
	sc.lb, sc.ub = sc.lb[:m], sc.ub[:m]
	sc.cellOf = sc.cellOf[:m]
	sc.posOf = sc.posOf[:m]
	sc.members = sc.members[:m]
	sc.cpx, sc.cpy, sc.cpw = sc.cpx[:m], sc.cpy[:m], sc.cpw[:m]
	sc.near = sc.near[:m]
	sc.cand = sc.cand[:0]
}

// refineCost estimates the near-field pairs of one descent at opening
// threshold θ: the base cells within the non-aggregable radius
// (≈ (θ+1)/(θ−1) half-diagonals) times the mean occupancy of non-empty
// cells. Used to stop the ladder when a tighter pass would cost more than
// the exact row it is trying to avoid.
func (sc *EngineScratch) refineCost(theta2 float64, m int) float64 {
	theta := math.Sqrt(theta2)
	r := 0.71*(theta+1)/(theta-1) + 1 // cell radius of the near field
	cells := math.Pi * r * r
	occ := float64(m) / float64(max(sc.nonEmpty, 1))
	return cells * occ
}

// MarginSlot returns the exact worst-case SINR margin (min over the slot's
// links of SINR_i/β) of one slot, given global link indices and their
// transmit powers (power[k] belongs to idx[k]). It matches
// Params.Margin on the corresponding link/power slices up to floating-point
// accumulation order (≲1e-12 relative), with identical error conditions.
// st accumulates work counters; both sc and st are caller-owned.
func (e *Engine) MarginSlot(idx []int, power []float64, sc *EngineScratch, st *EngineStats) (float64, error) {
	m := len(idx)
	if m != len(power) {
		return 0, fmt.Errorf("sinr: %d links but %d powers", m, len(power))
	}
	if m == 0 {
		return math.Inf(1), nil
	}
	sc.reserve(m)
	for k, g := range idx {
		if power[k] <= 0 {
			return 0, fmt.Errorf("sinr: non-positive power %g on link %d", power[k], k)
		}
		if g < 0 || g >= len(e.links) {
			return 0, fmt.Errorf("sinr: link index %d outside the engine's %d links", g, len(e.links))
		}
		l := e.links[g]
		sc.px[k], sc.py[k] = l.S.X, l.S.Y
		sc.qx[k], sc.qy[k] = l.R.X, l.R.Y
		sc.pw[k] = power[k]
		sc.sig[k] = power[k] / e.lenA[g]
	}
	st.Links += int64(m)
	st.NaivePairs += int64(m) * int64(m-1)
	if m <= engineExactCutoff || !e.buildGrid(sc, m) {
		return e.exactAll(sc, m, st), nil
	}

	// Tier 1 — coarse interval pass: a certified [lb, ub] margin interval
	// per link at the widest θ.
	for k := 0; k < m; k++ {
		e.descend(sc, k, engineThetaLadder2[0], false, st)
	}
	// Only links whose interval reaches below the smallest upper bound can
	// attain the slot minimum.
	cand := e.candidates(sc, m)

	// Tier 2 — adaptive refinement: re-descend just the straddlers with
	// tighter θ until the set is tiny or a pass would out-cost exact rows.
	for rung := 1; rung < len(engineThetaLadder2) && len(cand) > engineRefineMin; rung++ {
		th2 := engineThetaLadder2[rung]
		if sc.refineCost(th2, m) >= float64(m-1)/2 {
			break
		}
		for _, k := range cand {
			e.descend(sc, int(k), th2, true, st)
		}
		st.RefinedLinks += int64(len(cand))
		next := e.candidates(sc, m)
		if len(next) >= len(cand) {
			// No progress: the remaining straddlers are genuinely close to
			// the minimum; tighter rungs only add cost.
			cand = next
			break
		}
		cand = next
	}

	// Tier 3 — exact fallback for the remaining candidates, in slot order
	// like the naive path.
	worst := math.Inf(1)
	resolved := false
	for _, k := range cand {
		st.ExactLinks++
		st.ExactPairs += int64(m - 1)
		sc.near[k] = -1 // superseded by the exact row
		resolved = true
		if mg := e.exactOne(sc, m, int(k)); mg < worst {
			worst = mg
		}
	}
	for k := 0; k < m; k++ {
		if sc.near[k] >= 0 {
			st.NearPairs += int64(sc.near[k])
		}
	}
	if !resolved {
		// Defensive: interval arithmetic met a non-finite input the grid
		// guards missed. The exact path is always well defined.
		return e.exactAll(sc, m, st), nil
	}
	return worst, nil
}

// candidates rebuilds the straddler set: members whose margin lower bound
// does not exceed the smallest certified upper bound. The set is in
// ascending member order, so the exact fallback preserves naive slot order.
func (e *Engine) candidates(sc *EngineScratch, m int) []int32 {
	u := math.Inf(1)
	for k := 0; k < m; k++ {
		if sc.ub[k] < u {
			u = sc.ub[k]
		}
	}
	cand := sc.cand[:0]
	for k := 0; k < m; k++ {
		if sc.lb[k] <= u {
			cand = append(cand, int32(k))
		}
	}
	sc.cand = cand
	return cand
}

// exactOne computes the exact margin of slot member k by the full pairwise
// sum. The two range splits around k reproduce the naive path's j-order
// accumulation (j < k, then j > k) term for term.
func (e *Engine) exactOne(sc *EngineScratch, m, k int) float64 {
	intf := e.p.Noise
	qxk, qyk := sc.qx[k], sc.qy[k]
	intf = e.rowSum(intf, sc.px[:k], sc.py[:k], sc.pw[:k], qxk, qyk)
	intf = e.rowSum(intf, sc.px[k+1:m], sc.py[k+1:m], sc.pw[k+1:m], qxk, qyk)
	if intf == 0 {
		return math.Inf(1)
	}
	return sc.sig[k] / (e.p.Beta * intf)
}

// exactAll is the small-slot/degenerate path: exact margins for every link.
func (e *Engine) exactAll(sc *EngineScratch, m int, st *EngineStats) float64 {
	st.ExactLinks += int64(m)
	st.ExactPairs += int64(m) * int64(m-1)
	worst := math.Inf(1)
	for k := 0; k < m; k++ {
		if mg := e.exactOne(sc, m, k); mg < worst {
			worst = mg
		}
	}
	return worst
}

// gridDim returns the base-grid dimension for a slot of m senders: the
// smallest power of two whose square is at least m/8 (≈8 senders per cell
// on uniform inputs), clamped to [4, engineMaxGridDim]. Finer cells than
// the old 32-per-cell target pay off twice under the adaptive ladder: the
// coarse first pass touches few cells regardless, and the refined rungs —
// whose near field grows as (θ−1)⁻² cells — keep each opened cell cheap.
func gridDim(m int) int {
	d := 4
	for d < engineMaxGridDim && d*d*8 < m {
		d <<= 1
	}
	return d
}

// buildGrid buckets the slot's senders into the base grid and builds the
// pyramid bottom-up. It reports false when the sender extent is degenerate
// or non-finite, in which case the caller falls back to the exact path.
func (e *Engine) buildGrid(sc *EngineScratch, m int) bool {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for k := 0; k < m; k++ {
		minX = min(minX, sc.px[k])
		maxX = max(maxX, sc.px[k])
		minY = min(minY, sc.py[k])
		maxY = max(maxY, sc.py[k])
	}
	ext := max(maxX-minX, maxY-minY)
	if !(ext > 0) || math.IsInf(ext, 1) {
		return false
	}
	d0 := gridDim(m)
	sc.d0 = d0
	sc.invCS = float64(d0) / ext
	sc.gridOX, sc.gridOY = minX, minY

	// Pyramid layout: level 0 is the d0×d0 base; each higher level halves
	// the dimension down to a single root node.
	levels := 1
	for d := d0; d > 1; d >>= 1 {
		levels++
	}
	sc.levelOff = sc.levelOff[:0]
	total := 0
	for l, d := 0, d0; l < levels; l, d = l+1, d>>1 {
		sc.levelOff = append(sc.levelOff, total)
		total += d * d
	}
	if cap(sc.nodes) < total {
		sc.nodes = make([]engineNode, total)
	}
	sc.nodes = sc.nodes[:total]
	clear(sc.nodes)
	if cap(sc.starts) < d0*d0+1 {
		sc.starts = make([]int32, d0*d0+1)
	}
	sc.starts = sc.starts[:d0*d0+1]
	clear(sc.starts)

	// Base cells: power mass, exact sender bounding boxes, CSR membership.
	for k := 0; k < m; k++ {
		cx := cellCoord(sc.px[k]-minX, sc.invCS, d0)
		cy := cellCoord(sc.py[k]-minY, sc.invCS, d0)
		sc.cellOf[k] = int32(cy*d0 + cx)
		n := &sc.nodes[cy*d0+cx]
		if n.mass == 0 {
			n.minX, n.maxX = sc.px[k], sc.px[k]
			n.minY, n.maxY = sc.py[k], sc.py[k]
		} else {
			n.minX = min(n.minX, sc.px[k])
			n.maxX = max(n.maxX, sc.px[k])
			n.minY = min(n.minY, sc.py[k])
			n.maxY = max(n.maxY, sc.py[k])
		}
		n.mass += sc.pw[k]
		sc.starts[sc.cellOf[k]+1]++
	}
	sc.nonEmpty = 0
	for c := 0; c < d0*d0; c++ {
		if sc.starts[c+1] > 0 {
			sc.nonEmpty++
		}
		sc.starts[c+1] += sc.starts[c]
	}
	if cap(sc.fill) < d0*d0 {
		sc.fill = make([]int32, d0*d0)
	}
	sc.fill = sc.fill[:d0*d0]
	copy(sc.fill, sc.starts[:d0*d0])
	for k := 0; k < m; k++ {
		c := sc.cellOf[k]
		t := sc.fill[c]
		sc.members[t] = int32(k)
		sc.posOf[k] = t
		sc.cpx[t], sc.cpy[t], sc.cpw[t] = sc.px[k], sc.py[k], sc.pw[k]
		sc.fill[c]++
	}

	// Upper levels: union of the four children.
	for l, d := 1, d0>>1; d >= 1; l, d = l+1, d>>1 {
		off, coff := sc.levelOff[l], sc.levelOff[l-1]
		cd := d << 1
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				n := &sc.nodes[off+y*d+x]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						ch := &sc.nodes[coff+(2*y+dy)*cd+(2*x+dx)]
						if ch.mass == 0 {
							continue
						}
						if n.mass == 0 {
							*n = *ch
						} else {
							n.minX = min(n.minX, ch.minX)
							n.maxX = max(n.maxX, ch.maxX)
							n.minY = min(n.minY, ch.minY)
							n.maxY = max(n.maxY, ch.maxY)
							n.mass += ch.mass
						}
					}
				}
			}
		}
	}
	return true
}

// cellCoord maps an offset from the grid origin to a clamped cell
// coordinate. The clamp keeps the bbox-max sender (offset·invCS == d0) and
// any rounding stragglers inside the grid.
func cellCoord(off, invCS float64, d0 int) int {
	c := int(off * invCS)
	if c < 0 {
		return 0
	}
	if c >= d0 {
		return d0 - 1
	}
	return c
}

// descend computes the certified margin interval of slot member k by a
// Barnes–Hut-style descent of the pyramid at opening threshold theta2:
// far nodes contribute aggregated power-mass bounds, near base cells are
// summed exactly on the SoA kernels, and the member's own sender is
// excluded wherever it lands (by position in exact cells, by mass
// subtraction in aggregated nodes). It overwrites sc.lb[k], sc.ub[k] and
// sc.near[k]; refined marks tighter-ladder passes for the work counters.
func (e *Engine) descend(sc *EngineScratch, k int, theta2 float64, refined bool, st *EngineStats) {
	d0 := sc.d0
	top := len(sc.levelOff) - 1
	selfCX := int32(int(sc.cellOf[k]) % d0)
	selfCY := int32(int(sc.cellOf[k]) / d0)
	qxk, qyk := sc.qx[k], sc.qy[k]
	nodes, levelOff := sc.nodes, sc.levelOff
	stack := sc.stack[:0]
	var farNodes, nearPairs, nearCells int64

	var exact, lo, hi float64
	stack = append(stack, nodeRef{int32(top), 0, 0})
	for len(stack) > 0 {
		nr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l := int(nr.level)
		dim := d0 >> l
		n := &nodes[levelOff[l]+int(nr.y)*dim+int(nr.x)]
		mass := n.mass
		if selfCX>>nr.level == nr.x && selfCY>>nr.level == nr.y {
			mass -= sc.pw[k]
		}
		// Squared distances from the receiver to the node's sender bbox:
		// nearest point of the box, and farthest corner.
		var dx, dy float64
		if qxk < n.minX {
			dx = n.minX - qxk
		} else if qxk > n.maxX {
			dx = qxk - n.maxX
		}
		if qyk < n.minY {
			dy = n.minY - qyk
		} else if qyk > n.maxY {
			dy = qyk - n.maxY
		}
		mind2 := dx*dx + dy*dy
		fx := max(qxk-n.minX, n.maxX-qxk)
		fy := max(qyk-n.minY, n.maxY-qyk)
		maxd2 := fx*fx + fy*fy
		if mind2 > 0 && maxd2 <= theta2*mind2 {
			if mass > 0 {
				farNodes++
				lo += mass / e.powD2(maxd2)
				hi += mass / e.powD2(mind2)
			}
			continue
		}
		if l == 0 {
			// Near field: exact pairwise sum over the cell, scanning the
			// cell-ordered sender copies (contiguous) rather than gathering
			// through the member indices.
			c := int(nr.y)*d0 + int(nr.x)
			t0, t1 := sc.starts[c], sc.starts[c+1]
			nearCells++
			if int32(c) == sc.cellOf[k] {
				tk := sc.posOf[k]
				exact = e.rowSum(exact, sc.cpx[t0:tk], sc.cpy[t0:tk], sc.cpw[t0:tk], qxk, qyk)
				exact = e.rowSum(exact, sc.cpx[tk+1:t1], sc.cpy[tk+1:t1], sc.cpw[tk+1:t1], qxk, qyk)
				nearPairs += int64(t1 - t0 - 1)
			} else {
				exact = e.rowSum(exact, sc.cpx[t0:t1], sc.cpy[t0:t1], sc.cpw[t0:t1], qxk, qyk)
				nearPairs += int64(t1 - t0)
			}
			continue
		}
		// Open the node: push only the non-empty children, sparing the
		// pop-and-discard round trip for empty quadrants.
		cx, cy := nr.x<<1, nr.y<<1
		cl := nr.level - 1
		cdim := d0 >> cl
		coff := levelOff[cl]
		for dy := int32(0); dy < 2; dy++ {
			for dx := int32(0); dx < 2; dx++ {
				if nodes[coff+int(cy+dy)*cdim+int(cx+dx)].mass != 0 {
					stack = append(stack, nodeRef{cl, cx + dx, cy + dy})
				}
			}
		}
	}
	sc.stack = stack
	st.FarNodes += farNodes
	if refined {
		st.RefinedCells += nearCells
	}
	sc.near[k] = int32(nearPairs)

	iLo := exact + lo + e.p.Noise
	iHi := exact + hi + e.p.Noise
	sig := sc.sig[k]
	if iHi == 0 {
		sc.lb[k], sc.ub[k] = math.Inf(1), math.Inf(1)
		return
	}
	sc.lb[k] = sig / (e.p.Beta * iHi) * (1 - intervalPad)
	if iLo == 0 {
		sc.ub[k] = math.Inf(1)
	} else {
		sc.ub[k] = sig / (e.p.Beta * iLo) * (1 + intervalPad)
	}
}
