// Engine is the fast SINR verification kernel behind
// (*schedule.Schedule).VerifySINR. The naive Margin does exact O(m²)
// pairwise interference per slot with a fresh math.Pow on every pair; the
// engine cuts the hot path to near-linear in three layers while keeping
// every returned verdict and margin exact:
//
//  1. Cached-gain kernel. Per-link l_i^α is computed once per schedule
//     (NewEngine); on the hot path all distances stay squared and are raised
//     to α via (d²)^(α/2) with closed forms for α ∈ {2, 3, 4}, so the
//     generic math.Pow survives only for fractional exponents.
//
//  2. Grid-aggregated far-field bound. Each slot's senders are bucketed into
//     a dyadic grid pyramid (the same dyadic machinery style as the
//     internal/conflict build: a power-of-two base grid plus coarser levels
//     merging 2×2 children). For a receiver, any pyramid node whose
//     sender bounding box is far relative to its size — max/min squared
//     distance within a factor θ² — contributes its total power mass over
//     [maxdist, mindist], giving a certified interval for the interference
//     and hence for the link's SINR margin. Nearby nodes are opened; base
//     cells are summed exactly. A Barnes–Hut-style descent therefore costs
//     O(near + log m) per link instead of O(m).
//
//  3. Exact fallback. The slot's worst margin is the minimum over links, so
//     only links whose margin interval reaches below the smallest interval
//     upper bound U can attain it; exactly those links (a small set, since
//     margins spread while intervals are narrow) are re-evaluated by the
//     exact pairwise sum, in slot order like the naive path. Every interval
//     is padded by a relative 1e-9 so floating-point slop between the two
//     arithmetic styles can never eject the true argmin from the candidate
//     set — the returned margin is always an exactly-computed one.
//
// Determinism: MarginSlot is a pure function of (params, links, slot,
// powers); scratch and stats only carry reusable buffers and counters.
package sinr

import (
	"fmt"
	"math"

	"aggrate/internal/geom"
)

// intervalPad is the relative padding applied to the certified margin
// intervals before candidate selection. It dominates the accumulated
// floating-point discrepancy between the interval arithmetic and the exact
// pairwise sum (≈ m·2⁻⁵² ≲ 1e-10 even for million-link slots), so interval
// containment — and with it the exactness of the returned margin — survives
// rounding.
const intervalPad = 1e-9

// engineExactCutoff is the slot size at or below which the grid is not worth
// building and the engine runs the exact pairwise evaluation directly (still
// on the cached-gain kernel, so small slots skip per-pair math.Pow too).
const engineExactCutoff = 64

// engineTheta2 is the squared opening threshold θ²: a pyramid node is
// aggregated when maxdist² ≤ θ²·mindist², i.e. its power mass is localized
// within a factor θ of its distance, bounding the per-node interval ratio by
// θ^α. Smaller θ tightens intervals (fewer exact fallbacks) but opens more
// nodes; θ = 1.15 balances the two on the experiment scenarios.
const engineTheta2 = 1.15 * 1.15

// engineMaxGridDim caps the base-grid resolution (memory is O(dim²)).
const engineMaxGridDim = 1024

// Engine caches per-link gains for repeated slot verification over a fixed
// link set. Create one per schedule with NewEngine; MarginSlot is then safe
// for concurrent use as long as each goroutine owns its EngineScratch and
// EngineStats.
type Engine struct {
	p         Params
	alphaHalf float64
	powMode   int
	links     []geom.Link
	// lenA[i] = l_i^α, the received-signal denominator of link i.
	lenA []float64
}

// pow-mode fast paths for (d²)^(α/2).
const (
	powGeneric = iota
	powAlpha2
	powAlpha3
	powAlpha4
)

// NewEngine precomputes the per-link gain cache for the link set. The links
// slice is retained (not copied); callers must not mutate it while the
// engine is in use.
func NewEngine(p Params, links []geom.Link) *Engine {
	e := &Engine{p: p, alphaHalf: p.Alpha / 2, powMode: powGeneric, links: links}
	switch p.Alpha {
	case 2:
		e.powMode = powAlpha2
	case 3:
		e.powMode = powAlpha3
	case 4:
		e.powMode = powAlpha4
	}
	e.lenA = make([]float64, len(links))
	for i, l := range links {
		e.lenA[i] = e.powD2(l.S.Dist2(l.R))
	}
	return e
}

// powD2 returns (d2)^(α/2) = d^α for the squared distance d2. Only the
// default α=3 path is kept small enough to inline into the pairwise loops
// (math.Sqrt compiles to a single instruction); α=2, α=4 and the generic
// fractional exponent pay an out-of-line call via powD2Slow — adding them
// here would push powD2 past the inlining budget and cost the α=3 hot
// path its inlining.
func (e *Engine) powD2(d2 float64) float64 {
	if e.powMode == powAlpha3 {
		return d2 * math.Sqrt(d2)
	}
	return e.powD2Slow(d2)
}

// powD2Slow carries the non-default exponents out of line, keeping powD2
// itself under the inlining budget.
//
//go:noinline
func (e *Engine) powD2Slow(d2 float64) float64 {
	switch e.powMode {
	case powAlpha2:
		return d2
	case powAlpha4:
		return d2 * d2
	}
	return math.Pow(d2, e.alphaHalf)
}

// EngineStats counts the work the engine performed, for diagnostics and the
// bench artifact. All fields are exact sums over the verified slots and are
// deterministic in the input regardless of slot-level parallelism.
type EngineStats struct {
	// Links counts link-slot SINR evaluations.
	Links int64
	// ExactLinks counts links resolved by the exact pairwise fallback
	// (including every link of slots at or below the small-slot cutoff).
	ExactLinks int64
	// ExactPairs counts pairwise interference terms evaluated by the
	// fallback.
	ExactPairs int64
	// NearPairs counts pairwise terms evaluated exactly in the near field
	// of the grid pass.
	NearPairs int64
	// FarNodes counts pyramid nodes accepted by the far-field bound.
	FarNodes int64
	// NaivePairs counts the pairwise terms the naive path would have
	// evaluated: Σ_slots m·(m−1).
	NaivePairs int64
}

// Add accumulates o into st.
func (st *EngineStats) Add(o EngineStats) {
	st.Links += o.Links
	st.ExactLinks += o.ExactLinks
	st.ExactPairs += o.ExactPairs
	st.NearPairs += o.NearPairs
	st.FarNodes += o.FarNodes
	st.NaivePairs += o.NaivePairs
}

// ExactPairsFrac returns the fraction of the naive pairwise work the engine
// actually performed ((near + fallback pairs) / naive pairs), the headline
// "how much O(m²) survived" diagnostic. Zero when no pairs were required.
func (st EngineStats) ExactPairsFrac() float64 {
	if st.NaivePairs == 0 {
		return 0
	}
	return float64(st.ExactPairs+st.NearPairs) / float64(st.NaivePairs)
}

// engineNode is one pyramid node: the total transmit power mass of the
// senders it covers and their exact bounding box. A zero mass marks an
// empty node.
type engineNode struct {
	mass                   float64
	minX, minY, maxX, maxY float64
}

// EngineScratch holds the reusable per-goroutine buffers of MarginSlot, so
// steady-state verification allocates nothing per slot.
type EngineScratch struct {
	// Gathered per-slot-member data (slot-local indexing).
	px, py []float64 // sender coordinates
	qx, qy []float64 // receiver coordinates
	pw     []float64 // transmit powers
	sig    []float64 // received signals P/l^α
	lb, ub []float64 // certified margin interval per member

	cellOf  []int32 // base-grid cell of each member's sender
	starts  []int32 // CSR cell offsets into members
	fill    []int32 // CSR fill cursors (build-time only)
	members []int32 // member indices grouped by base cell
	// Cell-ordered copies of (px, py, pw), indexed like members, so the
	// near-field sums of the interval descent scan contiguous memory.
	cpx, cpy, cpw []float64

	nodes    []engineNode // pyramid, level-major from the base grid up
	levelOff []int        // node offset of each pyramid level
	stack    []nodeRef    // descent stack

	d0         int     // base-grid dimension (power of two)
	invCS      float64 // 1 / cell size
	gridOX     float64 // grid origin (sender bbox min corner)
	gridOY     float64
	haveCutoff bool
}

type nodeRef struct{ level, x, y int32 }

// NewEngineScratch returns an empty scratch; buffers grow on demand and are
// reused across MarginSlot calls.
func NewEngineScratch() *EngineScratch { return &EngineScratch{} }

// reserve sizes the per-member buffers for a slot of m links.
func (sc *EngineScratch) reserve(m int) {
	if cap(sc.px) < m {
		sc.px = make([]float64, m)
		sc.py = make([]float64, m)
		sc.qx = make([]float64, m)
		sc.qy = make([]float64, m)
		sc.pw = make([]float64, m)
		sc.sig = make([]float64, m)
		sc.lb = make([]float64, m)
		sc.ub = make([]float64, m)
		sc.cellOf = make([]int32, m)
		sc.members = make([]int32, m)
		sc.cpx = make([]float64, m)
		sc.cpy = make([]float64, m)
		sc.cpw = make([]float64, m)
	}
	sc.px, sc.py = sc.px[:m], sc.py[:m]
	sc.qx, sc.qy = sc.qx[:m], sc.qy[:m]
	sc.pw, sc.sig = sc.pw[:m], sc.sig[:m]
	sc.lb, sc.ub = sc.lb[:m], sc.ub[:m]
	sc.cellOf = sc.cellOf[:m]
	sc.members = sc.members[:m]
	sc.cpx, sc.cpy, sc.cpw = sc.cpx[:m], sc.cpy[:m], sc.cpw[:m]
}

// MarginSlot returns the exact worst-case SINR margin (min over the slot's
// links of SINR_i/β) of one slot, given global link indices and their
// transmit powers (power[k] belongs to idx[k]). It matches
// Params.Margin on the corresponding link/power slices up to floating-point
// accumulation order (≲1e-12 relative), with identical error conditions.
// st accumulates work counters; both sc and st are caller-owned.
func (e *Engine) MarginSlot(idx []int, power []float64, sc *EngineScratch, st *EngineStats) (float64, error) {
	m := len(idx)
	if m != len(power) {
		return 0, fmt.Errorf("sinr: %d links but %d powers", m, len(power))
	}
	if m == 0 {
		return math.Inf(1), nil
	}
	sc.reserve(m)
	for k, g := range idx {
		if power[k] <= 0 {
			return 0, fmt.Errorf("sinr: non-positive power %g on link %d", power[k], k)
		}
		if g < 0 || g >= len(e.links) {
			return 0, fmt.Errorf("sinr: link index %d outside the engine's %d links", g, len(e.links))
		}
		l := e.links[g]
		sc.px[k], sc.py[k] = l.S.X, l.S.Y
		sc.qx[k], sc.qy[k] = l.R.X, l.R.Y
		sc.pw[k] = power[k]
		sc.sig[k] = power[k] / e.lenA[g]
	}
	st.Links += int64(m)
	st.NaivePairs += int64(m) * int64(m-1)
	if m <= engineExactCutoff || !e.buildGrid(sc, m) {
		return e.exactAll(sc, m, st), nil
	}

	// Interval pass: a certified [lb, ub] margin interval per link.
	for k := 0; k < m; k++ {
		e.interval(sc, k, st)
	}
	// Only links whose interval reaches below the smallest upper bound can
	// attain the slot minimum; resolve exactly those with the exact sum.
	u := math.Inf(1)
	for k := 0; k < m; k++ {
		if sc.ub[k] < u {
			u = sc.ub[k]
		}
	}
	worst := math.Inf(1)
	resolved := false
	for k := 0; k < m; k++ {
		if sc.lb[k] > u {
			continue
		}
		st.ExactLinks++
		st.ExactPairs += int64(m - 1)
		resolved = true
		if mg := e.exactOne(sc, m, k); mg < worst {
			worst = mg
		}
	}
	if !resolved {
		// Defensive: interval arithmetic met a non-finite input the grid
		// guards missed. The exact path is always well defined.
		return e.exactAll(sc, m, st), nil
	}
	return worst, nil
}

// exactOne computes the exact margin of slot member k by the full pairwise
// sum, in slot order like the naive path.
func (e *Engine) exactOne(sc *EngineScratch, m, k int) float64 {
	intf := e.p.Noise
	qxk, qyk := sc.qx[k], sc.qy[k]
	for j := 0; j < m; j++ {
		if j == k {
			continue
		}
		dx := sc.px[j] - qxk
		dy := sc.py[j] - qyk
		intf += sc.pw[j] / e.powD2(dx*dx+dy*dy)
	}
	if intf == 0 {
		return math.Inf(1)
	}
	return sc.sig[k] / (e.p.Beta * intf)
}

// exactAll is the small-slot/degenerate path: exact margins for every link.
func (e *Engine) exactAll(sc *EngineScratch, m int, st *EngineStats) float64 {
	st.ExactLinks += int64(m)
	st.ExactPairs += int64(m) * int64(m-1)
	worst := math.Inf(1)
	for k := 0; k < m; k++ {
		if mg := e.exactOne(sc, m, k); mg < worst {
			worst = mg
		}
	}
	return worst
}

// gridDim returns the base-grid dimension for a slot of m senders: the
// smallest power of two whose square is at least m/32 (≈32 senders per cell
// on uniform inputs), clamped to [4, engineMaxGridDim]. Coarser cells keep
// the descent short — the near field is a contiguous cache-friendly sum, so
// trading descent control flow for ~9×32 exact pairs per link is a sizable
// sequential win (≈1.6× on the n=20k verification) while the far field
// still collapses the quadratic tail.
func gridDim(m int) int {
	d := 4
	for d < engineMaxGridDim && d*d*32 < m {
		d <<= 1
	}
	return d
}

// buildGrid buckets the slot's senders into the base grid and builds the
// pyramid bottom-up. It reports false when the sender extent is degenerate
// or non-finite, in which case the caller falls back to the exact path.
func (e *Engine) buildGrid(sc *EngineScratch, m int) bool {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for k := 0; k < m; k++ {
		minX = min(minX, sc.px[k])
		maxX = max(maxX, sc.px[k])
		minY = min(minY, sc.py[k])
		maxY = max(maxY, sc.py[k])
	}
	ext := max(maxX-minX, maxY-minY)
	if !(ext > 0) || math.IsInf(ext, 1) {
		return false
	}
	d0 := gridDim(m)
	sc.d0 = d0
	sc.invCS = float64(d0) / ext
	sc.gridOX, sc.gridOY = minX, minY

	// Pyramid layout: level 0 is the d0×d0 base; each higher level halves
	// the dimension down to a single root node.
	levels := 1
	for d := d0; d > 1; d >>= 1 {
		levels++
	}
	sc.levelOff = sc.levelOff[:0]
	total := 0
	for l, d := 0, d0; l < levels; l, d = l+1, d>>1 {
		sc.levelOff = append(sc.levelOff, total)
		total += d * d
	}
	if cap(sc.nodes) < total {
		sc.nodes = make([]engineNode, total)
	}
	sc.nodes = sc.nodes[:total]
	clear(sc.nodes)
	if cap(sc.starts) < d0*d0+1 {
		sc.starts = make([]int32, d0*d0+1)
	}
	sc.starts = sc.starts[:d0*d0+1]
	clear(sc.starts)

	// Base cells: power mass, exact sender bounding boxes, CSR membership.
	for k := 0; k < m; k++ {
		cx := cellCoord(sc.px[k]-minX, sc.invCS, d0)
		cy := cellCoord(sc.py[k]-minY, sc.invCS, d0)
		sc.cellOf[k] = int32(cy*d0 + cx)
		n := &sc.nodes[cy*d0+cx]
		if n.mass == 0 {
			n.minX, n.maxX = sc.px[k], sc.px[k]
			n.minY, n.maxY = sc.py[k], sc.py[k]
		} else {
			n.minX = min(n.minX, sc.px[k])
			n.maxX = max(n.maxX, sc.px[k])
			n.minY = min(n.minY, sc.py[k])
			n.maxY = max(n.maxY, sc.py[k])
		}
		n.mass += sc.pw[k]
		sc.starts[sc.cellOf[k]+1]++
	}
	for c := 0; c < d0*d0; c++ {
		sc.starts[c+1] += sc.starts[c]
	}
	if cap(sc.fill) < d0*d0 {
		sc.fill = make([]int32, d0*d0)
	}
	sc.fill = sc.fill[:d0*d0]
	copy(sc.fill, sc.starts[:d0*d0])
	for k := 0; k < m; k++ {
		c := sc.cellOf[k]
		t := sc.fill[c]
		sc.members[t] = int32(k)
		sc.cpx[t], sc.cpy[t], sc.cpw[t] = sc.px[k], sc.py[k], sc.pw[k]
		sc.fill[c]++
	}

	// Upper levels: union of the four children.
	for l, d := 1, d0>>1; d >= 1; l, d = l+1, d>>1 {
		off, coff := sc.levelOff[l], sc.levelOff[l-1]
		cd := d << 1
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				n := &sc.nodes[off+y*d+x]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						ch := &sc.nodes[coff+(2*y+dy)*cd+(2*x+dx)]
						if ch.mass == 0 {
							continue
						}
						if n.mass == 0 {
							*n = *ch
						} else {
							n.minX = min(n.minX, ch.minX)
							n.maxX = max(n.maxX, ch.maxX)
							n.minY = min(n.minY, ch.minY)
							n.maxY = max(n.maxY, ch.maxY)
							n.mass += ch.mass
						}
					}
				}
			}
		}
	}
	return true
}

// cellCoord maps an offset from the grid origin to a clamped cell
// coordinate. The clamp keeps the bbox-max sender (offset·invCS == d0) and
// any rounding stragglers inside the grid.
func cellCoord(off, invCS float64, d0 int) int {
	c := int(off * invCS)
	if c < 0 {
		return 0
	}
	if c >= d0 {
		return d0 - 1
	}
	return c
}

// interval computes the certified margin interval of slot member k by a
// Barnes–Hut-style descent of the pyramid: far nodes contribute aggregated
// power-mass bounds, near base cells are summed exactly, and the member's
// own sender is excluded wherever it lands (by identity in exact cells, by
// mass subtraction in aggregated nodes).
func (e *Engine) interval(sc *EngineScratch, k int, st *EngineStats) {
	d0 := sc.d0
	top := len(sc.levelOff) - 1
	selfCX := int32(int(sc.cellOf[k]) % d0)
	selfCY := int32(int(sc.cellOf[k]) / d0)
	qxk, qyk := sc.qx[k], sc.qy[k]
	nodes, levelOff := sc.nodes, sc.levelOff
	stack := sc.stack[:0]
	var farNodes, nearPairs int64

	var exact, lo, hi float64
	stack = append(stack, nodeRef{int32(top), 0, 0})
	for len(stack) > 0 {
		nr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l := int(nr.level)
		dim := d0 >> l
		n := &nodes[levelOff[l]+int(nr.y)*dim+int(nr.x)]
		mass := n.mass
		if selfCX>>nr.level == nr.x && selfCY>>nr.level == nr.y {
			mass -= sc.pw[k]
		}
		// Squared distances from the receiver to the node's sender bbox:
		// nearest point of the box, and farthest corner.
		var dx, dy float64
		if qxk < n.minX {
			dx = n.minX - qxk
		} else if qxk > n.maxX {
			dx = qxk - n.maxX
		}
		if qyk < n.minY {
			dy = n.minY - qyk
		} else if qyk > n.maxY {
			dy = qyk - n.maxY
		}
		mind2 := dx*dx + dy*dy
		fx := max(qxk-n.minX, n.maxX-qxk)
		fy := max(qyk-n.minY, n.maxY-qyk)
		maxd2 := fx*fx + fy*fy
		if mind2 > 0 && maxd2 <= engineTheta2*mind2 {
			if mass > 0 {
				farNodes++
				lo += mass / e.powD2(maxd2)
				hi += mass / e.powD2(mind2)
			}
			continue
		}
		if l == 0 {
			// Near field: exact pairwise sum over the cell, scanning the
			// cell-ordered sender copies (contiguous) rather than gathering
			// through the member indices.
			c := int(nr.y)*d0 + int(nr.x)
			t0, t1 := sc.starts[c], sc.starts[c+1]
			for t := t0; t < t1; t++ {
				if int(sc.members[t]) == k {
					continue
				}
				ddx := sc.cpx[t] - qxk
				ddy := sc.cpy[t] - qyk
				exact += sc.cpw[t] / e.powD2(ddx*ddx+ddy*ddy)
			}
			nearPairs += int64(t1 - t0)
			if int32(c) == sc.cellOf[k] {
				nearPairs-- // the member itself is skipped, not a pair
			}
			continue
		}
		// Open the node: push only the non-empty children, sparing the
		// pop-and-discard round trip for empty quadrants.
		cx, cy := nr.x<<1, nr.y<<1
		cl := nr.level - 1
		cdim := d0 >> cl
		coff := levelOff[cl]
		for dy := int32(0); dy < 2; dy++ {
			for dx := int32(0); dx < 2; dx++ {
				if nodes[coff+int(cy+dy)*cdim+int(cx+dx)].mass != 0 {
					stack = append(stack, nodeRef{cl, cx + dx, cy + dy})
				}
			}
		}
	}
	sc.stack = stack
	st.FarNodes += farNodes
	st.NearPairs += nearPairs

	iLo := exact + lo + e.p.Noise
	iHi := exact + hi + e.p.Noise
	sig := sc.sig[k]
	if iHi == 0 {
		sc.lb[k], sc.ub[k] = math.Inf(1), math.Inf(1)
		return
	}
	sc.lb[k] = sig / (e.p.Beta * iHi) * (1 - intervalPad)
	if iLo == 0 {
		sc.ub[k] = math.Inf(1)
	} else {
		sc.ub[k] = sig / (e.p.Beta * iLo) * (1 + intervalPad)
	}
}
