// Engine is the fast SINR verification kernel behind
// (*schedule.Schedule).VerifySINR. The naive Margin does exact O(m²)
// pairwise interference per slot with a fresh math.Pow on every pair; the
// engine cuts the hot path to near-linear in three tiers while keeping
// every returned verdict and margin exact:
//
//  1. Far-field pyramid. Each slot's senders are bucketed into a dyadic
//     grid pyramid (the same dyadic machinery style as the internal/conflict
//     build: a power-of-two base grid plus coarser levels merging 2×2
//     children). For a receiver, any pyramid node whose sender bounding box
//     is far relative to its size — max/min squared distance within a factor
//     θ² — contributes its total power mass over [maxdist, mindist], giving
//     a certified interval for the interference and hence for the link's
//     SINR margin. Nearby nodes are opened; base cells are summed exactly.
//     The first pass runs every link with a deliberately coarse θ, so the
//     near field stays tiny and the descent costs O(near + log m) per link.
//
//  2. Adaptive cell refinement. The slot's worst margin is the minimum over
//     links, so only links whose margin interval reaches below the smallest
//     interval upper bound U can attain it. Instead of falling straight to
//     exact pairwise for those, the engine re-descends just the straddling
//     links with progressively tighter θ from engineThetaLadder — splitting
//     the cells that were aggregated before — until the candidate set stops
//     shrinking or a tighter pass would cost more than the exact row.
//     Intervals at every rung are certified, so mixing rungs is sound.
//
//  3. SoA exact kernels. Links still straddling after the ladder are
//     resolved by the exact pairwise sum, in slot order like the naive
//     path. Both this fallback and the near-field cell sums run on flat
//     structure-of-arrays float64 loops (separate x/y/power slices,
//     cell-ordered copies, no per-link struct loads) specialized per
//     α ∈ {2, 3, 4} with a math.Pow generic fallback. Every interval is
//     padded by a relative 1e-9 so floating-point slop between the interval
//     and exact arithmetic can never eject the true argmin from the
//     candidate set — the returned margin is always an exactly-computed one.
//
// The grid pyramid of a slot lives in a SlotGrid, which MarginSlotGrid can
// hand back to the caller for retention: verification caches keep built
// grids keyed by slot membership so escalation retries, delta re-verifies
// and warm re-runs skip buildGrid. A retained grid is immutable; reuse is
// guarded by an order hash (grid layout is slot-order dependent) and a
// power hash (masses are power sums — a membership match with different
// powers is refreshed into a new grid, never mutated in place).
//
// Determinism: MarginSlot is a pure function of (params, links, slot,
// powers); scratch and stats only carry reusable buffers and counters.
// Grid reuse returns bit-identical margins: the interval tiers may be
// freely rescheduled (they only select candidates, and certification plus
// padding keeps the true argmin in the set), while the exact rows that
// produce the returned margin always accumulate in naive slot order.
package sinr

import (
	"fmt"
	"math"

	"aggrate/internal/geom"
)

// intervalPad is the relative padding applied to the certified margin
// intervals before candidate selection. It dominates the accumulated
// floating-point discrepancy between the interval arithmetic and the exact
// pairwise sum (≈ m·2⁻⁵² ≲ 1e-10 even for million-link slots), so interval
// containment — and with it the exactness of the returned margin — survives
// rounding, including the few extra ulps of the reciprocal-multiply
// near-field kernels.
const intervalPad = 1e-9

// engineExactCutoff is the slot size at or below which the grid is not worth
// building and the engine runs the exact pairwise evaluation directly (still
// on the cached-gain SoA kernels, so small slots skip per-pair math.Pow too).
const engineExactCutoff = 64

// exactTile is the row/column tile size of the symmetric exact-all kernel:
// small enough that two tiles of sender/receiver coordinates and the
// partner-row accumulators stay L1-resident, large enough to amortize the
// tile loop overhead.
const exactTile = 128

// engineThetaLadder2 holds the squared opening thresholds θ² of the adaptive
// descent, coarsest first. A pyramid node is aggregated when
// maxdist² ≤ θ²·mindist², i.e. its power mass is localized within a factor θ
// of its distance, bounding the per-node interval ratio by θ^α. The first
// rung runs every link: θ=2 keeps the near field to a handful of cells.
// Later rungs re-descend only candidate links — straddlers of the slot
// minimum — trading a (θ−1)⁻² blowup of the near field for interval ratios
// that approach 1 and evict almost all candidates before the exact fallback.
var engineThetaLadder2 = [...]float64{
	2.0 * 2.0,
	1.5 * 1.5,
	1.25 * 1.25,
	1.12 * 1.12,
	1.06 * 1.06,
	1.03 * 1.03,
}

// engineRefineMin is the candidate-set size at or below which refinement
// stops and the engine resolves the stragglers exactly — a few exact rows
// are cheaper than another descent pass.
const engineRefineMin = 4

// engineMaxGridDim caps the base-grid resolution (memory is O(dim²)).
const engineMaxGridDim = 1024

// engineSharedPassMin is the slot size at or above which the coarse first
// pass runs the cell-shared descent (one pyramid walk per sender cell,
// amortized over its members) instead of one walk per link. Below it the
// per-link pass is already cheap and its tighter per-receiver intervals
// keep the candidate set smaller.
const engineSharedPassMin = 1 << 13

// FNV-1a over 64-bit words, used for the SlotGrid reuse guards.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Engine caches per-link gains for repeated slot verification over a fixed
// link set. Create one per schedule with NewEngine; MarginSlot is then safe
// for concurrent use as long as each goroutine owns its EngineScratch and
// EngineStats.
type Engine struct {
	p         Params
	alphaHalf float64
	powMode   int
	links     []geom.Link
	// lenA[i] = l_i^α, the received-signal denominator of link i.
	lenA []float64
	// forcePerLink disables the frontier-shared first pass regardless of
	// slot size; test-only, for pinning shared-vs-per-link margin identity.
	forcePerLink bool
}

// pow-mode fast paths for (d²)^(α/2).
const (
	powGeneric = iota
	powAlpha2
	powAlpha3
	powAlpha4
)

// NewEngine precomputes the per-link gain cache for the link set. The links
// slice is retained (not copied); callers must not mutate it while the
// engine is in use.
func NewEngine(p Params, links []geom.Link) *Engine {
	e := &Engine{p: p, alphaHalf: p.Alpha / 2, powMode: powGeneric, links: links}
	switch p.Alpha {
	case 2:
		e.powMode = powAlpha2
	case 3:
		e.powMode = powAlpha3
	case 4:
		e.powMode = powAlpha4
	}
	e.lenA = make([]float64, len(links))
	for i, l := range links {
		e.lenA[i] = e.powD2(l.S.Dist2(l.R))
	}
	return e
}

// powD2 returns (d2)^(α/2) = d^α for the squared distance d2. Only the
// default α=3 path is kept small enough to inline into the descent's
// far-node bounds (math.Sqrt compiles to a single instruction); α=2, α=4
// and the generic fractional exponent pay an out-of-line call via powD2Slow.
// The pairwise sums never come through here — they use the per-α rowSum
// kernels below.
func (e *Engine) powD2(d2 float64) float64 {
	if e.powMode == powAlpha3 {
		return d2 * math.Sqrt(d2)
	}
	return e.powD2Slow(d2)
}

// powD2Slow carries the non-default exponents out of line, keeping powD2
// itself under the inlining budget.
//
//go:noinline
func (e *Engine) powD2Slow(d2 float64) float64 {
	switch e.powMode {
	case powAlpha2:
		return d2
	case powAlpha4:
		return d2 * d2
	}
	return math.Pow(d2, e.alphaHalf)
}

// rowSum accumulates Σ_j pw[j]/dist(p_j, q)^α into acc over the flat sender
// arrays, dispatching to the α-specialized SoA kernels. The kernels add
// terms in slice order, so callers control summation order exactly (the
// naive-parity contract). This is the order-pinned path: the exact rows
// that produce returned margins always come through here.
func (e *Engine) rowSum(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	switch e.powMode {
	case powAlpha3:
		return rowSumA3(acc, px, py, pw, qx, qy)
	case powAlpha2:
		return rowSumA2(acc, px, py, pw, qx, qy)
	case powAlpha4:
		return rowSumA4(acc, px, py, pw, qx, qy)
	}
	return e.rowSumGeneric(acc, px, py, pw, qx, qy)
}

// rowSumA3 is the α=3 kernel: d³ = d²·√d². The py/pw reslices pin their
// lengths to len(px) so the compiler drops the per-iteration bounds checks
// and keeps the accumulator in a register.
func rowSumA3(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	py = py[:len(px)]
	pw = pw[:len(px)]
	for j := range px {
		dx := px[j] - qx
		dy := py[j] - qy
		d2 := dx*dx + dy*dy
		acc += pw[j] / (d2 * math.Sqrt(d2))
	}
	return acc
}

// rowSumA2 is the α=2 kernel: d² directly.
func rowSumA2(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	py = py[:len(px)]
	pw = pw[:len(px)]
	for j := range px {
		dx := px[j] - qx
		dy := py[j] - qy
		acc += pw[j] / (dx*dx + dy*dy)
	}
	return acc
}

// rowSumA4 is the α=4 kernel: d⁴ = (d²)².
func rowSumA4(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	py = py[:len(px)]
	pw = pw[:len(px)]
	for j := range px {
		dx := px[j] - qx
		dy := py[j] - qy
		d2 := dx*dx + dy*dy
		acc += pw[j] / (d2 * d2)
	}
	return acc
}

// rowSumGeneric handles fractional exponents via math.Pow.
func (e *Engine) rowSumGeneric(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	py = py[:len(px)]
	pw = pw[:len(px)]
	for j := range px {
		dx := px[j] - qx
		dy := py[j] - qy
		acc += pw[j] / math.Pow(dx*dx+dy*dy, e.alphaHalf)
	}
	return acc
}

// rowSumFast is the certified-interval counterpart of rowSum: the near-field
// cell sums of the descent come through here. These kernels batch four gains
// into one reciprocal (1/(g0·g1·g2·g3), terms recovered by multiplication),
// trading the four serial divides — the loop-carried latency wall of the
// plain kernels — for one divide plus a handful of pipelined multiplies.
// The result differs from left-to-right division by a few ulps, which only
// perturbs the certified interval endpoints and is absorbed by intervalPad;
// returned margins are unaffected (they come from the order-pinned rowSum).
// A degenerate product (underflow to 0, overflow to Inf, NaN from a zero
// distance) falls back to per-element division for the block, so co-located
// senders still poison the interval to +Inf exactly like the plain kernel.
func (e *Engine) rowSumFast(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	switch e.powMode {
	case powAlpha3:
		return rowSumFastA3(acc, px, py, pw, qx, qy)
	case powAlpha2:
		return rowSumFastA2(acc, px, py, pw, qx, qy)
	case powAlpha4:
		return rowSumFastA4(acc, px, py, pw, qx, qy)
	}
	return e.rowSumGeneric(acc, px, py, pw, qx, qy)
}

// rowSumFastA3 is the batched α=3 interval kernel.
func rowSumFastA3(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	n := len(px)
	py = py[:n]
	pw = pw[:n]
	var acc2 float64
	j := 0
	for ; j+4 <= n; j += 4 {
		dx0 := px[j] - qx
		dy0 := py[j] - qy
		d20 := dx0*dx0 + dy0*dy0
		g0 := d20 * math.Sqrt(d20)
		dx1 := px[j+1] - qx
		dy1 := py[j+1] - qy
		d21 := dx1*dx1 + dy1*dy1
		g1 := d21 * math.Sqrt(d21)
		dx2 := px[j+2] - qx
		dy2 := py[j+2] - qy
		d22 := dx2*dx2 + dy2*dy2
		g2 := d22 * math.Sqrt(d22)
		dx3 := px[j+3] - qx
		dy3 := py[j+3] - qy
		d23 := dx3*dx3 + dy3*dy3
		g3 := d23 * math.Sqrt(d23)
		g01 := g0 * g1
		g23 := g2 * g3
		if inv := 1 / (g01 * g23); inv > 0 && !math.IsInf(inv, 1) {
			acc += (pw[j]*g1 + pw[j+1]*g0) * g23 * inv
			acc2 += (pw[j+2]*g3 + pw[j+3]*g2) * g01 * inv
		} else {
			acc += pw[j]/g0 + pw[j+1]/g1
			acc2 += pw[j+2]/g2 + pw[j+3]/g3
		}
	}
	for ; j < n; j++ {
		dx := px[j] - qx
		dy := py[j] - qy
		d2 := dx*dx + dy*dy
		acc += pw[j] / (d2 * math.Sqrt(d2))
	}
	return acc + acc2
}

// rowSumFastA2 is the batched α=2 interval kernel.
func rowSumFastA2(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	n := len(px)
	py = py[:n]
	pw = pw[:n]
	var acc2 float64
	j := 0
	for ; j+4 <= n; j += 4 {
		dx0 := px[j] - qx
		dy0 := py[j] - qy
		g0 := dx0*dx0 + dy0*dy0
		dx1 := px[j+1] - qx
		dy1 := py[j+1] - qy
		g1 := dx1*dx1 + dy1*dy1
		dx2 := px[j+2] - qx
		dy2 := py[j+2] - qy
		g2 := dx2*dx2 + dy2*dy2
		dx3 := px[j+3] - qx
		dy3 := py[j+3] - qy
		g3 := dx3*dx3 + dy3*dy3
		g01 := g0 * g1
		g23 := g2 * g3
		if inv := 1 / (g01 * g23); inv > 0 && !math.IsInf(inv, 1) {
			acc += (pw[j]*g1 + pw[j+1]*g0) * g23 * inv
			acc2 += (pw[j+2]*g3 + pw[j+3]*g2) * g01 * inv
		} else {
			acc += pw[j]/g0 + pw[j+1]/g1
			acc2 += pw[j+2]/g2 + pw[j+3]/g3
		}
	}
	for ; j < n; j++ {
		dx := px[j] - qx
		dy := py[j] - qy
		acc += pw[j] / (dx*dx + dy*dy)
	}
	return acc + acc2
}

// rowSumFastA4 is the batched α=4 interval kernel.
func rowSumFastA4(acc float64, px, py, pw []float64, qx, qy float64) float64 {
	n := len(px)
	py = py[:n]
	pw = pw[:n]
	var acc2 float64
	j := 0
	for ; j+4 <= n; j += 4 {
		dx0 := px[j] - qx
		dy0 := py[j] - qy
		d20 := dx0*dx0 + dy0*dy0
		g0 := d20 * d20
		dx1 := px[j+1] - qx
		dy1 := py[j+1] - qy
		d21 := dx1*dx1 + dy1*dy1
		g1 := d21 * d21
		dx2 := px[j+2] - qx
		dy2 := py[j+2] - qy
		d22 := dx2*dx2 + dy2*dy2
		g2 := d22 * d22
		dx3 := px[j+3] - qx
		dy3 := py[j+3] - qy
		d23 := dx3*dx3 + dy3*dy3
		g3 := d23 * d23
		g01 := g0 * g1
		g23 := g2 * g3
		if inv := 1 / (g01 * g23); inv > 0 && !math.IsInf(inv, 1) {
			acc += (pw[j]*g1 + pw[j+1]*g0) * g23 * inv
			acc2 += (pw[j+2]*g3 + pw[j+3]*g2) * g01 * inv
		} else {
			acc += pw[j]/g0 + pw[j+1]/g1
			acc2 += pw[j+2]/g2 + pw[j+3]/g3
		}
	}
	for ; j < n; j++ {
		dx := px[j] - qx
		dy := py[j] - qy
		d2 := dx*dx + dy*dy
		acc += pw[j] / (d2 * d2)
	}
	return acc + acc2
}

// EngineStats counts the work the engine performed, for diagnostics and the
// bench artifact. All fields are exact sums over the verified slots and are
// deterministic in the input regardless of slot-level parallelism.
//
// The pair counters use per-link distinct-pair semantics: each link
// contributes the pairwise terms of the single evaluation that produced its
// final margin or interval — m−1 ExactPairs if it fell to the exact row,
// otherwise the near-field pairs of its last (tightest) descent. Work from
// superseded coarser descents is not counted, so
// ExactPairs+NearPairs ≤ NaivePairs and ExactPairsFrac ≤ 1 hold structurally,
// including when stats are accumulated across γ-escalation retries with Add
// (both numerator and denominator grow together, keeping the ratio a
// weighted mean of per-pass ratios).
type EngineStats struct {
	// Links counts link-slot SINR evaluations.
	Links int64
	// ExactLinks counts links resolved by the exact pairwise fallback
	// (including every link of slots at or below the small-slot cutoff).
	ExactLinks int64
	// ExactPairs counts pairwise interference terms evaluated by the
	// fallback: m−1 per exact link.
	ExactPairs int64
	// NearPairs counts pairwise terms evaluated exactly in the near field
	// of the final descent of links that did not fall to the exact row.
	NearPairs int64
	// FarNodes counts pyramid nodes accepted by the far-field bound across
	// all descent passes (a work counter, not a pair fraction).
	FarNodes int64
	// RefinedLinks counts refined link descents: one per link per
	// tighter-θ ladder rung it was re-descended at.
	RefinedLinks int64
	// RefinedCells counts base cells opened (summed exactly) during
	// refined descents.
	RefinedCells int64
	// NaivePairs counts the pairwise terms the naive path would have
	// evaluated: Σ_slots m·(m−1).
	NaivePairs int64
}

// Add accumulates o into st. This is the γ-retry accumulation path: Timings
// report stats summed over every verification pass of an instance, and the
// ExactPairsFrac ≤ 1 invariant is preserved because numerator and
// denominator fields accumulate together.
func (st *EngineStats) Add(o EngineStats) {
	st.Links += o.Links
	st.ExactLinks += o.ExactLinks
	st.ExactPairs += o.ExactPairs
	st.NearPairs += o.NearPairs
	st.FarNodes += o.FarNodes
	st.RefinedLinks += o.RefinedLinks
	st.RefinedCells += o.RefinedCells
	st.NaivePairs += o.NaivePairs
}

// ExactPairsFrac returns the fraction of the naive pairwise work the engine
// performed for the evaluations that produced final margins
// ((near + fallback pairs) / naive pairs), the headline "how much O(m²)
// survived" diagnostic. Always in [0, 1]; zero when no pairs were required.
func (st EngineStats) ExactPairsFrac() float64 {
	if st.NaivePairs == 0 {
		return 0
	}
	return float64(st.ExactPairs+st.NearPairs) / float64(st.NaivePairs)
}

// engineNode is one pyramid node: the total transmit power mass of the
// senders it covers and their exact bounding box. A zero mass marks an
// empty node.
type engineNode struct {
	mass                   float64
	minX, minY, maxX, maxY float64
}

// SlotGrid is the built spatial structure of one slot: the base-grid cell
// tables, the cell-ordered SoA sender copies the near-field sums stream
// over, and the bounding-box pyramid the descent walks. Building one is the
// per-slot setup cost of MarginSlot; retaining one (MarginSlotGrid with
// retain=true) lets verification caches skip that build when the same slot
// membership comes back — across γ-escalation retries, delta re-verifies
// and warm re-runs.
//
// A retained grid is immutable and safe for concurrent readers. Layout is
// slot-order dependent (cellOf/posOf use slot-local indices), so reuse is
// guarded by orderHash; masses are power sums, so a membership match with
// different powers is refreshed into a fresh grid via refreshFrom, never
// patched in place.
type SlotGrid struct {
	cellOf  []int32 // base-grid cell of each member's sender
	posOf   []int32 // position of each member in the cell-ordered arrays
	starts  []int32 // CSR cell offsets into members
	members []int32 // member indices grouped by base cell
	// Cell-ordered copies of (px, py, pw), indexed like members, so the
	// near-field sums of the interval descent scan contiguous memory.
	cpx, cpy, cpw []float64

	nodes    []engineNode // pyramid, level-major from the base grid up
	levelOff []int        // node offset of each pyramid level
	// childMask holds, for every non-base node, the 4-bit occupancy mask of
	// its children (bit dy·2+dx). Opening a node consults one byte instead
	// of probing four scattered 40-byte child structs. Indexed like nodes;
	// base-level entries are unused.
	childMask []uint8

	d0       int     // base-grid dimension (power of two)
	nonEmpty int     // non-empty base cells
	invCS    float64 // 1 / cell size
	gridOX   float64 // grid origin (sender bbox min corner)
	gridOY   float64

	// Reuse guards: FNV-1a over the slot's global link indices in slot
	// order, and over the power bits in slot order.
	orderHash uint64
	powHash   uint64
}

// m returns the slot size the grid was built for.
func (g *SlotGrid) m() int { return len(g.cellOf) }

// SizeBytes reports the grid's retained memory, for cache byte budgets.
func (g *SlotGrid) SizeBytes() int64 {
	b := int64(cap(g.cellOf)+cap(g.posOf)+cap(g.starts)+cap(g.members)) * 4
	b += int64(cap(g.cpx)+cap(g.cpy)+cap(g.cpw)) * 8
	b += int64(cap(g.nodes)) * 40 // 5 float64 fields
	b += int64(cap(g.childMask))
	b += int64(cap(g.levelOff)) * 8
	return b + 96 // struct header
}

// refreshFrom rebuilds g as src with new powers: the power-independent
// structure (cell tables, membership, bounding boxes, layout scalars) is
// copied, then the cell-ordered power copies and the node masses are
// recomputed. The mass arithmetic replays a fresh build bit for bit — base
// masses accumulate in slot order, pyramid masses sum non-empty children in
// child order — so a refreshed grid yields margins identical to building
// from scratch. src is never written (retained grids stay immutable under
// concurrent readers).
func (g *SlotGrid) refreshFrom(src *SlotGrid, pw []float64, powHash uint64) {
	g.cellOf = append(g.cellOf[:0], src.cellOf...)
	g.posOf = append(g.posOf[:0], src.posOf...)
	g.starts = append(g.starts[:0], src.starts...)
	g.members = append(g.members[:0], src.members...)
	g.cpx = append(g.cpx[:0], src.cpx...)
	g.cpy = append(g.cpy[:0], src.cpy...)
	if cap(g.cpw) < len(src.cpw) {
		g.cpw = make([]float64, len(src.cpw))
	}
	g.cpw = g.cpw[:len(src.cpw)]
	g.nodes = append(g.nodes[:0], src.nodes...)
	g.childMask = append(g.childMask[:0], src.childMask...)
	g.levelOff = append(g.levelOff[:0], src.levelOff...)
	g.d0, g.nonEmpty = src.d0, src.nonEmpty
	g.invCS, g.gridOX, g.gridOY = src.invCS, src.gridOX, src.gridOY
	g.orderHash, g.powHash = src.orderHash, powHash

	for i := range g.nodes {
		g.nodes[i].mass = 0
	}
	for k, p := range pw {
		g.nodes[g.cellOf[k]].mass += p
		g.cpw[g.posOf[k]] = p
	}
	d0 := g.d0
	for l, d := 1, d0>>1; d >= 1; l, d = l+1, d>>1 {
		off, coff := g.levelOff[l], g.levelOff[l-1]
		cd := d << 1
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				n := &g.nodes[off+y*d+x]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						ch := &g.nodes[coff+(2*y+dy)*cd+(2*x+dx)]
						if ch.mass == 0 {
							continue
						}
						// First non-empty child assigns, later ones add —
						// the same accumulation order as buildGrid's union
						// pass, so the sums round identically.
						if n.mass == 0 {
							n.mass = ch.mass
						} else {
							n.mass += ch.mass
						}
					}
				}
			}
		}
	}
}

// EngineScratch holds the reusable per-goroutine buffers of MarginSlot, so
// steady-state verification allocates nothing per slot.
type EngineScratch struct {
	// Gathered per-slot-member data (slot-local indexing).
	px, py []float64 // sender coordinates
	qx, qy []float64 // receiver coordinates
	pw     []float64 // transmit powers
	sig    []float64 // received signals P/l^α
	lb, ub []float64 // certified margin interval per member

	fill []int32 // CSR fill cursors (grid build only)

	near []int32 // near pairs of each member's latest descent
	cand []int32 // current candidate members (ascending)

	stack []nodeRef // descent stack

	// Cell-shared first-pass buffers: per-cell receiver bounding boxes, the
	// near-cell list of the cell being processed, and the flattened copies
	// of its near-field senders (one contiguous kernel scan per member
	// instead of one short call per near cell).
	rminx, rmaxx  []float64
	rminy, rmaxy  []float64
	nearCells     []int32
	fpx, fpy, fpw []float64

	// Frontier-shared descent buffers: double-buffered node groups and the
	// shared still-open cell pool they span, per-cell far-field interval
	// accumulators and cell coordinates, and the (cell, base-cell) near
	// pairs with their counting-sort layout.
	fgCur, fgNext  []frontierGroup
	flCur, flNext  []int32
	cellLo, cellHi []float64
	ccx, ccy       []int32
	npCell, npBase []int32
	nearStart      []int32
	nearOrd        []int32

	// grid is the scratch-owned slot structure, rebuilt (or refreshed from
	// a retained grid) when the caller is not caching grids.
	grid SlotGrid
}

type nodeRef struct{ level, x, y int32 }

// frontierGroup is one pyramid node of the level-ordered shared descent,
// with the span of still-open cells it must test in the level's shared
// cell pool. The four children of an opened node inherit one common span,
// so spans stay contiguous and the pool is append-only per level.
type frontierGroup struct {
	nx, ny int32 // node coordinates at the wave's level
	lo, hi int32 // open-cell span in the level's cell pool
}

// NewEngineScratch returns an empty scratch; buffers grow on demand and are
// reused across MarginSlot calls.
func NewEngineScratch() *EngineScratch { return &EngineScratch{} }

// reserve sizes the per-member buffers for a slot of m links.
func (sc *EngineScratch) reserve(m int) {
	if cap(sc.px) < m {
		sc.px = make([]float64, m)
		sc.py = make([]float64, m)
		sc.qx = make([]float64, m)
		sc.qy = make([]float64, m)
		sc.pw = make([]float64, m)
		sc.sig = make([]float64, m)
		sc.lb = make([]float64, m)
		sc.ub = make([]float64, m)
		sc.near = make([]int32, m)
		sc.cand = make([]int32, m)
	}
	sc.px, sc.py = sc.px[:m], sc.py[:m]
	sc.qx, sc.qy = sc.qx[:m], sc.qy[:m]
	sc.pw, sc.sig = sc.pw[:m], sc.sig[:m]
	sc.lb, sc.ub = sc.lb[:m], sc.ub[:m]
	sc.near = sc.near[:m]
	sc.cand = sc.cand[:0]
}

// refineCost estimates the near-field pairs of one descent at opening
// threshold θ: the base cells within the non-aggregable radius
// (≈ (θ+1)/(θ−1) half-diagonals) times the mean occupancy of non-empty
// cells. Used to stop the ladder when a tighter pass would cost more than
// the exact row it is trying to avoid.
func (g *SlotGrid) refineCost(theta2 float64, m int) float64 {
	theta := math.Sqrt(theta2)
	r := 0.71*(theta+1)/(theta-1) + 1 // cell radius of the near field
	cells := math.Pi * r * r
	occ := float64(m) / float64(max(g.nonEmpty, 1))
	return cells * occ
}

// slotHashes returns the SlotGrid reuse guards: FNV-1a over the global link
// indices in slot order, and over the power bits in slot order.
func slotHashes(idx []int, power []float64) (orderHash, powHash uint64) {
	oh, ph := uint64(fnvOffset64), uint64(fnvOffset64)
	for k, gi := range idx {
		oh = (oh ^ uint64(gi)) * fnvPrime64
		ph = (ph ^ math.Float64bits(power[k])) * fnvPrime64
	}
	return oh, ph
}

// MarginSlot returns the exact worst-case SINR margin (min over the slot's
// links of SINR_i/β) of one slot, given global link indices and their
// transmit powers (power[k] belongs to idx[k]). It matches
// Params.Margin on the corresponding link/power slices up to floating-point
// accumulation order (≲1e-12 relative), with identical error conditions.
// st accumulates work counters; both sc and st are caller-owned.
func (e *Engine) MarginSlot(idx []int, power []float64, sc *EngineScratch, st *EngineStats) (float64, error) {
	mg, _, _, err := e.MarginSlotGrid(idx, power, sc, st, nil, false)
	return mg, err
}

// MarginSlotGrid is MarginSlot with persistent-grid plumbing. g, when
// non-nil, is a grid previously returned by this method on the same Engine;
// if its membership order matches the slot it is reused — directly when the
// powers also match, via refreshFrom otherwise — skipping buildGrid. With
// retain=true the grid used for this evaluation is returned for the caller
// to cache: it is heap-owned, immutable from then on, and safe to share
// across goroutines. With retain=false the returned grid is g itself on a
// direct reuse and nil otherwise (the build lives in scratch). reused
// reports that buildGrid was skipped thanks to g. Margins are bit-identical
// across every combination of reuse, refresh and cold build.
func (e *Engine) MarginSlotGrid(idx []int, power []float64, sc *EngineScratch, st *EngineStats, g *SlotGrid, retain bool) (margin float64, grid *SlotGrid, reused bool, err error) {
	m := len(idx)
	if m != len(power) {
		return 0, nil, false, fmt.Errorf("sinr: %d links but %d powers", m, len(power))
	}
	if m == 0 {
		return math.Inf(1), nil, false, nil
	}
	sc.reserve(m)
	for k, gi := range idx {
		if power[k] <= 0 {
			return 0, nil, false, fmt.Errorf("sinr: non-positive power %g on link %d", power[k], k)
		}
		if gi < 0 || gi >= len(e.links) {
			return 0, nil, false, fmt.Errorf("sinr: link index %d outside the engine's %d links", gi, len(e.links))
		}
		l := e.links[gi]
		sc.px[k], sc.py[k] = l.S.X, l.S.Y
		sc.qx[k], sc.qy[k] = l.R.X, l.R.Y
		sc.pw[k] = power[k]
		sc.sig[k] = power[k] / e.lenA[gi]
	}
	st.Links += int64(m)
	st.NaivePairs += int64(m) * int64(m-1)
	if m <= engineExactCutoff {
		return e.exactAll(sc, m, st), nil, false, nil
	}

	// Resolve the slot structure: reuse the offered grid when the guards
	// match, otherwise build — into scratch normally, or into a fresh
	// heap grid when the caller retains it.
	var use *SlotGrid
	if g != nil && g.m() == m {
		oh, ph := slotHashes(idx, power)
		if g.orderHash == oh {
			switch {
			case g.powHash == ph:
				use, grid, reused = g, g, true
			case retain:
				fresh := &SlotGrid{}
				fresh.refreshFrom(g, sc.pw, ph)
				use, grid, reused = fresh, fresh, true
			default:
				sc.grid.refreshFrom(g, sc.pw, ph)
				use, reused = &sc.grid, true
			}
		}
	}
	if use == nil {
		target := &sc.grid
		if retain {
			target = &SlotGrid{}
		}
		if !e.buildGrid(sc, target, m) {
			return e.exactAll(sc, m, st), nil, false, nil
		}
		target.orderHash, target.powHash = slotHashes(idx, power)
		use = target
		if retain {
			grid = target
		}
	}

	// Tier 1 — coarse interval pass: a certified [lb, ub] margin interval
	// per link at the widest θ. Huge slots amortize the pyramid walk across
	// each sender cell's members via the shared descent; smaller slots run
	// the per-link descent in cell order (the grid's member order), so
	// neighbors descend near-identical pyramid paths and the tree walk
	// stays cache-resident. Each variant writes only per-k entries, so the
	// pass is order-independent.
	if m >= engineSharedPassMin && !e.forcePerLink {
		e.descendShared(sc, use, engineThetaLadder2[0], st)
	} else {
		for _, mk := range use.members {
			e.descend(sc, use, int(mk), engineThetaLadder2[0], false, st)
		}
	}
	// Only links whose interval reaches below the smallest upper bound can
	// attain the slot minimum.
	cand := e.candidates(sc, m)

	// Tier 2 — adaptive refinement: re-descend just the straddlers with
	// tighter θ until the set is tiny or a pass would out-cost exact rows.
	for rung := 1; rung < len(engineThetaLadder2) && len(cand) > engineRefineMin; rung++ {
		th2 := engineThetaLadder2[rung]
		if use.refineCost(th2, m) >= float64(m-1)/2 {
			break
		}
		for _, k := range cand {
			e.descend(sc, use, int(k), th2, true, st)
		}
		st.RefinedLinks += int64(len(cand))
		next := e.candidates(sc, m)
		if len(next) >= len(cand) {
			// No progress: the remaining straddlers are genuinely close to
			// the minimum; tighter rungs only add cost.
			cand = next
			break
		}
		cand = next
	}

	// Tier 3 — exact fallback for the remaining candidates, in slot order
	// like the naive path.
	worst := math.Inf(1)
	resolved := false
	for _, k := range cand {
		st.ExactLinks++
		st.ExactPairs += int64(m - 1)
		sc.near[k] = -1 // superseded by the exact row
		resolved = true
		if mg := e.exactOne(sc, m, int(k)); mg < worst {
			worst = mg
		}
	}
	for k := 0; k < m; k++ {
		if sc.near[k] >= 0 {
			st.NearPairs += int64(sc.near[k])
		}
	}
	if !resolved {
		// Defensive: interval arithmetic met a non-finite input the grid
		// guards missed. The exact path is always well defined.
		return e.exactAll(sc, m, st), grid, reused, nil
	}
	return worst, grid, reused, nil
}

// candidates rebuilds the straddler set: members whose margin lower bound
// does not exceed the smallest certified upper bound. The set is in
// ascending member order, so the exact fallback preserves naive slot order.
func (e *Engine) candidates(sc *EngineScratch, m int) []int32 {
	u := math.Inf(1)
	for k := 0; k < m; k++ {
		if sc.ub[k] < u {
			u = sc.ub[k]
		}
	}
	cand := sc.cand[:0]
	for k := 0; k < m; k++ {
		if sc.lb[k] <= u {
			cand = append(cand, int32(k))
		}
	}
	sc.cand = cand
	return cand
}

// exactOne computes the exact margin of slot member k by the full pairwise
// sum. The two range splits around k reproduce the naive path's j-order
// accumulation (j < k, then j > k) term for term.
func (e *Engine) exactOne(sc *EngineScratch, m, k int) float64 {
	intf := e.p.Noise
	qxk, qyk := sc.qx[k], sc.qy[k]
	intf = e.rowSum(intf, sc.px[:k], sc.py[:k], sc.pw[:k], qxk, qyk)
	intf = e.rowSum(intf, sc.px[k+1:m], sc.py[k+1:m], sc.pw[k+1:m], qxk, qyk)
	if intf == 0 {
		return math.Inf(1)
	}
	return sc.sig[k] / (e.p.Beta * intf)
}

// pairRow is one row segment of the symmetric exact-all kernel: it adds to
// accJ the interference row j receives from partners [t0, t0+len(accT)),
// and scatters into accT the term each partner's receiver gets from row j's
// sender — the unordered pair (j, t) is enumerated once, with both directed
// distances computed (the model is asymmetric: d(S_j,R_t) ≠ d(S_t,R_j)).
// The two directions form independent dependency chains, so their divides
// pipeline where the one-row-at-a-time loop stalls. Term expressions and
// per-row accumulation order match the naive row sums exactly (the tiling
// in exactAll delivers every row its partners in ascending index order), so
// the symmetric path is bit-identical to per-row evaluation.
func (e *Engine) pairRow(accJ float64, accT []float64, sc *EngineScratch, j, t0 int) float64 {
	switch e.powMode {
	case powAlpha3:
		return pairRowA3(accJ, accT, sc.px, sc.py, sc.qx, sc.qy, sc.pw, j, t0)
	case powAlpha2:
		return pairRowA2(accJ, accT, sc.px, sc.py, sc.qx, sc.qy, sc.pw, j, t0)
	case powAlpha4:
		return pairRowA4(accJ, accT, sc.px, sc.py, sc.qx, sc.qy, sc.pw, j, t0)
	}
	return pairRowGeneric(accJ, accT, sc.px, sc.py, sc.qx, sc.qy, sc.pw, j, t0, e.alphaHalf)
}

// pairRowA3 is the α=3 symmetric kernel.
func pairRowA3(accJ float64, accT []float64, px, py, qx, qy, pw []float64, j, t0 int) float64 {
	sxj, syj := px[j], py[j]
	rxj, ryj := qx[j], qy[j]
	pwj := pw[j]
	for i := range accT {
		t := t0 + i
		dx := px[t] - rxj
		dy := py[t] - ryj
		d2 := dx*dx + dy*dy
		accJ += pw[t] / (d2 * math.Sqrt(d2))
		ex := sxj - qx[t]
		ey := syj - qy[t]
		e2 := ex*ex + ey*ey
		accT[i] += pwj / (e2 * math.Sqrt(e2))
	}
	return accJ
}

// pairRowA2 is the α=2 symmetric kernel.
func pairRowA2(accJ float64, accT []float64, px, py, qx, qy, pw []float64, j, t0 int) float64 {
	sxj, syj := px[j], py[j]
	rxj, ryj := qx[j], qy[j]
	pwj := pw[j]
	for i := range accT {
		t := t0 + i
		dx := px[t] - rxj
		dy := py[t] - ryj
		accJ += pw[t] / (dx*dx + dy*dy)
		ex := sxj - qx[t]
		ey := syj - qy[t]
		accT[i] += pwj / (ex*ex + ey*ey)
	}
	return accJ
}

// pairRowA4 is the α=4 symmetric kernel.
func pairRowA4(accJ float64, accT []float64, px, py, qx, qy, pw []float64, j, t0 int) float64 {
	sxj, syj := px[j], py[j]
	rxj, ryj := qx[j], qy[j]
	pwj := pw[j]
	for i := range accT {
		t := t0 + i
		dx := px[t] - rxj
		dy := py[t] - ryj
		d2 := dx*dx + dy*dy
		accJ += pw[t] / (d2 * d2)
		ex := sxj - qx[t]
		ey := syj - qy[t]
		e2 := ex*ex + ey*ey
		accT[i] += pwj / (e2 * e2)
	}
	return accJ
}

// pairRowGeneric is the fractional-exponent symmetric kernel.
func pairRowGeneric(accJ float64, accT []float64, px, py, qx, qy, pw []float64, j, t0 int, alphaHalf float64) float64 {
	sxj, syj := px[j], py[j]
	rxj, ryj := qx[j], qy[j]
	pwj := pw[j]
	for i := range accT {
		t := t0 + i
		dx := px[t] - rxj
		dy := py[t] - ryj
		accJ += pw[t] / math.Pow(dx*dx+dy*dy, alphaHalf)
		ex := sxj - qx[t]
		ey := syj - qy[t]
		accT[i] += pwj / math.Pow(ex*ex+ey*ey, alphaHalf)
	}
	return accJ
}

// exactAll is the small-slot/degenerate path: exact margins for every link,
// via the symmetric tiled kernel — each unordered pair is enumerated once
// per tile pair, with the forward term accumulated into the active row and
// the reverse term scattered into the partner row's accumulator. The
// triangular tile order (diagonal tile first, then the column above it,
// ascending) delivers every row its partner terms in ascending index order,
// which makes the accumulation — and therefore the returned margin — bit
// for bit the same as the per-row naive order exactOne reproduces.
func (e *Engine) exactAll(sc *EngineScratch, m int, st *EngineStats) float64 {
	st.ExactLinks += int64(m)
	st.ExactPairs += int64(m) * int64(m-1)
	acc := sc.lb[:m] // lb doubles as the interference accumulator here
	for k := range acc {
		acc[k] = e.p.Noise
	}
	for jt := 0; jt < m; jt += exactTile {
		jEnd := min(jt+exactTile, m)
		for j := jt; j < jEnd; j++ {
			acc[j] = e.pairRow(acc[j], acc[j+1:jEnd], sc, j, j+1)
		}
		for kt := jEnd; kt < m; kt += exactTile {
			kEnd := min(kt+exactTile, m)
			for j := jt; j < jEnd; j++ {
				acc[j] = e.pairRow(acc[j], acc[kt:kEnd], sc, j, kt)
			}
		}
	}
	worst := math.Inf(1)
	for k := 0; k < m; k++ {
		intf := acc[k]
		mg := math.Inf(1)
		if intf != 0 {
			mg = sc.sig[k] / (e.p.Beta * intf)
		}
		if mg < worst {
			worst = mg
		}
	}
	return worst
}

// gridDim returns the base-grid dimension for a slot of m senders: the
// smallest power of two whose square covers m at the target occupancy,
// clamped to [4, engineMaxGridDim]. The occupancy target adapts to slot
// size: ≈8 senders per cell keeps refined-ladder cells cheap on the small
// and mid-size slots, while huge slots coarsen stepwise to 64 per cell —
// the coarse first pass dominates there, its frontier shrinks ~4× per
// halving of the base dimension, and the extra near-field pairs are
// streamed by the batched kernels at a fraction of the traversal cost
// while staying a vanishing fraction of m².
func gridDim(m int) int {
	occ := 8
	if m >= 1<<13 {
		occ = 16
	}
	d := 4
	for d < engineMaxGridDim && d*d*occ < m {
		d <<= 1
	}
	return d
}

// buildGrid buckets the slot's senders into the base grid and builds the
// pyramid bottom-up, writing the structure into g. It reports false when
// the sender extent is degenerate or non-finite, in which case the caller
// falls back to the exact path.
func (e *Engine) buildGrid(sc *EngineScratch, g *SlotGrid, m int) bool {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for k := 0; k < m; k++ {
		minX = min(minX, sc.px[k])
		maxX = max(maxX, sc.px[k])
		minY = min(minY, sc.py[k])
		maxY = max(maxY, sc.py[k])
	}
	ext := max(maxX-minX, maxY-minY)
	if !(ext > 0) || math.IsInf(ext, 1) {
		return false
	}
	d0 := gridDim(m)
	g.d0 = d0
	g.invCS = float64(d0) / ext
	g.gridOX, g.gridOY = minX, minY

	if cap(g.cellOf) < m {
		g.cellOf = make([]int32, m)
		g.posOf = make([]int32, m)
		g.members = make([]int32, m)
		g.cpx = make([]float64, m)
		g.cpy = make([]float64, m)
		g.cpw = make([]float64, m)
	}
	g.cellOf = g.cellOf[:m]
	g.posOf = g.posOf[:m]
	g.members = g.members[:m]
	g.cpx, g.cpy, g.cpw = g.cpx[:m], g.cpy[:m], g.cpw[:m]

	// Pyramid layout: level 0 is the d0×d0 base; each higher level halves
	// the dimension down to a single root node.
	levels := 1
	for d := d0; d > 1; d >>= 1 {
		levels++
	}
	g.levelOff = g.levelOff[:0]
	total := 0
	for l, d := 0, d0; l < levels; l, d = l+1, d>>1 {
		g.levelOff = append(g.levelOff, total)
		total += d * d
	}
	if cap(g.nodes) < total {
		g.nodes = make([]engineNode, total)
	}
	g.nodes = g.nodes[:total]
	clear(g.nodes)
	if cap(g.starts) < d0*d0+1 {
		g.starts = make([]int32, d0*d0+1)
	}
	g.starts = g.starts[:d0*d0+1]
	clear(g.starts)

	// Base cells: power mass, exact sender bounding boxes, CSR membership.
	for k := 0; k < m; k++ {
		cx := cellCoord(sc.px[k]-minX, g.invCS, d0)
		cy := cellCoord(sc.py[k]-minY, g.invCS, d0)
		g.cellOf[k] = int32(cy*d0 + cx)
		n := &g.nodes[cy*d0+cx]
		if n.mass == 0 {
			n.minX, n.maxX = sc.px[k], sc.px[k]
			n.minY, n.maxY = sc.py[k], sc.py[k]
		} else {
			n.minX = min(n.minX, sc.px[k])
			n.maxX = max(n.maxX, sc.px[k])
			n.minY = min(n.minY, sc.py[k])
			n.maxY = max(n.maxY, sc.py[k])
		}
		n.mass += sc.pw[k]
		g.starts[g.cellOf[k]+1]++
	}
	g.nonEmpty = 0
	for c := 0; c < d0*d0; c++ {
		if g.starts[c+1] > 0 {
			g.nonEmpty++
		}
		g.starts[c+1] += g.starts[c]
	}
	if cap(sc.fill) < d0*d0 {
		sc.fill = make([]int32, d0*d0)
	}
	sc.fill = sc.fill[:d0*d0]
	copy(sc.fill, g.starts[:d0*d0])
	for k := 0; k < m; k++ {
		c := g.cellOf[k]
		t := sc.fill[c]
		g.members[t] = int32(k)
		g.posOf[k] = t
		g.cpx[t], g.cpy[t], g.cpw[t] = sc.px[k], sc.py[k], sc.pw[k]
		sc.fill[c]++
	}

	// Upper levels: union of the four children, recording each node's
	// child-occupancy mask as we go.
	if cap(g.childMask) < total {
		g.childMask = make([]uint8, total)
	}
	g.childMask = g.childMask[:total]
	for l, d := 1, d0>>1; d >= 1; l, d = l+1, d>>1 {
		off, coff := g.levelOff[l], g.levelOff[l-1]
		cd := d << 1
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				n := &g.nodes[off+y*d+x]
				var mask uint8
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						ch := &g.nodes[coff+(2*y+dy)*cd+(2*x+dx)]
						if ch.mass == 0 {
							continue
						}
						mask |= 1 << (dy*2 + dx)
						if n.mass == 0 {
							*n = *ch
						} else {
							n.minX = min(n.minX, ch.minX)
							n.maxX = max(n.maxX, ch.maxX)
							n.minY = min(n.minY, ch.minY)
							n.maxY = max(n.maxY, ch.maxY)
							n.mass += ch.mass
						}
					}
				}
				g.childMask[off+y*d+x] = mask
			}
		}
	}
	return true
}

// cellCoord maps an offset from the grid origin to a clamped cell
// coordinate. The clamp keeps the bbox-max sender (offset·invCS == d0) and
// any rounding stragglers inside the grid.
func cellCoord(off, invCS float64, d0 int) int {
	c := int(off * invCS)
	if c < 0 {
		return 0
	}
	if c >= d0 {
		return d0 - 1
	}
	return c
}

// descend computes the certified margin interval of slot member k by a
// Barnes–Hut-style descent of the pyramid at opening threshold theta2:
// far nodes contribute aggregated power-mass bounds, near base cells are
// summed exactly on the SoA kernels, and the member's own sender is
// excluded wherever it lands (by position in exact cells, by mass
// subtraction in aggregated nodes). It overwrites sc.lb[k], sc.ub[k] and
// sc.near[k]; refined marks tighter-ladder passes for the work counters.
func (e *Engine) descend(sc *EngineScratch, g *SlotGrid, k int, theta2 float64, refined bool, st *EngineStats) {
	d0 := g.d0
	top := len(g.levelOff) - 1
	selfCX := int32(int(g.cellOf[k]) % d0)
	selfCY := int32(int(g.cellOf[k]) / d0)
	qxk, qyk := sc.qx[k], sc.qy[k]
	nodes, levelOff := g.nodes, g.levelOff
	stack := sc.stack[:0]
	var farNodes, nearPairs, nearCells int64

	var exact, lo, hi float64
	stack = append(stack, nodeRef{int32(top), 0, 0})
	for len(stack) > 0 {
		nr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l := int(nr.level)
		dim := d0 >> l
		ni := levelOff[l] + int(nr.y)*dim + int(nr.x)
		n := &nodes[ni]
		mass := n.mass
		if selfCX>>nr.level == nr.x && selfCY>>nr.level == nr.y {
			mass -= sc.pw[k]
		}
		// Squared distances from the receiver to the node's sender bbox:
		// nearest point of the box, and farthest corner. The nearest-point
		// offsets are computed branchlessly (max of the two signed gaps and
		// zero — both gaps are negative inside the box), which the compiler
		// lowers to float max instructions instead of unpredictable
		// branches.
		dx := max(n.minX-qxk, qxk-n.maxX, 0)
		dy := max(n.minY-qyk, qyk-n.maxY, 0)
		mind2 := dx*dx + dy*dy
		fx := max(qxk-n.minX, n.maxX-qxk)
		fy := max(qyk-n.minY, n.maxY-qyk)
		maxd2 := fx*fx + fy*fy
		if mind2 > 0 && maxd2 <= theta2*mind2 {
			if mass > 0 {
				farNodes++
				// One divide for both bounds: 1/(a·b) recovered into 1/a
				// and 1/b by multiplication. A few ulps of slop land in
				// the certified interval, where intervalPad absorbs them;
				// a degenerate product falls back to the two divides.
				a := e.powD2(maxd2)
				b := e.powD2(mind2)
				if inv := 1 / (a * b); inv > 0 && !math.IsInf(inv, 1) {
					lo += mass * b * inv
					hi += mass * a * inv
				} else {
					lo += mass / a
					hi += mass / b
				}
			}
			continue
		}
		if l == 0 {
			// Near field: exact pairwise sum over the cell, scanning the
			// cell-ordered sender copies (contiguous) rather than gathering
			// through the member indices.
			c := int(nr.y)*d0 + int(nr.x)
			t0, t1 := g.starts[c], g.starts[c+1]
			nearCells++
			if int32(c) == g.cellOf[k] {
				tk := g.posOf[k]
				exact = e.rowSumFast(exact, g.cpx[t0:tk], g.cpy[t0:tk], g.cpw[t0:tk], qxk, qyk)
				exact = e.rowSumFast(exact, g.cpx[tk+1:t1], g.cpy[tk+1:t1], g.cpw[tk+1:t1], qxk, qyk)
				nearPairs += int64(t1 - t0 - 1)
			} else {
				exact = e.rowSumFast(exact, g.cpx[t0:t1], g.cpy[t0:t1], g.cpw[t0:t1], qxk, qyk)
				nearPairs += int64(t1 - t0)
			}
			continue
		}
		// Open the node: push only the non-empty children, consulting the
		// one-byte occupancy mask instead of probing four scattered child
		// structs.
		cx, cy := nr.x<<1, nr.y<<1
		cl := nr.level - 1
		mask := g.childMask[ni]
		for i := uint8(0); i < 4; i++ {
			if mask&(1<<i) != 0 {
				stack = append(stack, nodeRef{cl, cx + int32(i&1), cy + int32(i>>1)})
			}
		}
	}
	sc.stack = stack
	st.FarNodes += farNodes
	if refined {
		st.RefinedCells += nearCells
	}
	sc.near[k] = int32(nearPairs)

	iLo := exact + lo + e.p.Noise
	iHi := exact + hi + e.p.Noise
	sig := sc.sig[k]
	if iHi == 0 {
		sc.lb[k], sc.ub[k] = math.Inf(1), math.Inf(1)
		return
	}
	sc.lb[k] = sig / (e.p.Beta * iHi) * (1 - intervalPad)
	if iLo == 0 {
		sc.ub[k] = math.Inf(1)
	} else {
		sc.ub[k] = sig / (e.p.Beta * iLo) * (1 + intervalPad)
	}
}

// descendShared is the cell-amortized coarse first pass for huge slots: one
// pyramid walk per non-empty sender cell instead of one per link. The
// far/near classification uses the cell's receiver bounding box, so a node
// accepted as far is far — and its aggregated [mass/maxdist^α,
// mass/mindist^α] interval certified — for every receiver in the cell
// simultaneously; the per-link cost drops to the exact near-field sums.
// Ancestors of the cell itself are always opened (never aggregated), so the
// members' own senders are excluded positionally in the base-cell sums
// exactly as in the per-link descent, and no mass subtraction is needed.
//
// The shared bounds are wider than per-receiver ones by the receiver
// spread, which only inflates the candidate set tier 2 then refines with
// the precise per-link descent — certification, and with it the bit-exact
// final margin, is unaffected. Writes sc.lb, sc.ub and sc.near for every
// member.
func (e *Engine) descendShared(sc *EngineScratch, g *SlotGrid, theta2 float64, st *EngineStats) {
	d0 := g.d0
	nc := d0 * d0
	if cap(sc.rminx) < nc {
		sc.rminx = make([]float64, nc)
		sc.rmaxx = make([]float64, nc)
		sc.rminy = make([]float64, nc)
		sc.rmaxy = make([]float64, nc)
	}
	rminx, rmaxx := sc.rminx[:nc], sc.rmaxx[:nc]
	rminy, rmaxy := sc.rminy[:nc], sc.rmaxy[:nc]
	for c := 0; c < nc; c++ {
		t0, t1 := g.starts[c], g.starts[c+1]
		if t0 == t1 {
			continue
		}
		k0 := int(g.members[t0])
		rminx[c], rmaxx[c] = sc.qx[k0], sc.qx[k0]
		rminy[c], rmaxy[c] = sc.qy[k0], sc.qy[k0]
		for t := t0 + 1; t < t1; t++ {
			k := int(g.members[t])
			rminx[c] = min(rminx[c], sc.qx[k])
			rmaxx[c] = max(rmaxx[c], sc.qx[k])
			rminy[c] = min(rminy[c], sc.qy[k])
			rmaxy[c] = max(rmaxy[c], sc.qy[k])
		}
	}

	// Per-cell far-field accumulators, cell coordinates, and the root
	// frontier: every non-empty cell starts open at the pyramid top.
	if cap(sc.cellLo) < nc {
		sc.cellLo = make([]float64, nc)
		sc.cellHi = make([]float64, nc)
		sc.ccx = make([]int32, nc)
		sc.ccy = make([]int32, nc)
	}
	cellLo, cellHi := sc.cellLo[:nc], sc.cellHi[:nc]
	ccx, ccy := sc.ccx[:nc], sc.ccy[:nc]
	curL := sc.flCur[:0]
	for c := 0; c < nc; c++ {
		if g.starts[c] == g.starts[c+1] {
			continue
		}
		cellLo[c], cellHi[c] = 0, 0
		ccx[c], ccy[c] = int32(c%d0), int32(c/d0)
		curL = append(curL, int32(c))
	}

	// Level-ordered shared descent: one breadth-first pass over the pyramid
	// for the whole slot. Each wave node carries the span of cells still
	// open at it (children inherit their parent's open subset, so spans are
	// contiguous in an append-only pool); the node's bbox is tested against
	// all of its cells in one flat run, so the node load and classification
	// setup amortize across cells instead of restarting a stack walk per
	// cell. Far acceptances accumulate into the per-cell interval; cells
	// that survive to level 0 become (cell, base-cell) near pairs. The
	// classification predicate per (node, cell) pair is exactly the per-cell
	// walk's, so near sets and certified intervals match it up to far-field
	// accumulation order — absorbed by the candidate tier; final margins
	// only ever come from the order-pinned exact kernels.
	top := len(g.levelOff) - 1
	nodes, levelOff := g.nodes, g.levelOff
	curG := append(sc.fgCur[:0], frontierGroup{0, 0, 0, int32(len(curL))})
	nextG, nextL := sc.fgNext[:0], sc.flNext[:0]
	pc, pb := sc.npCell[:0], sc.npBase[:0]
	var farNodes int64
	for l := top; l >= 0 && len(curG) > 0; l-- {
		dim := d0 >> l
		nextG, nextL = nextG[:0], nextL[:0]
		for _, fg := range curG {
			ni := levelOff[l] + int(fg.ny)*dim + int(fg.nx)
			n := &nodes[ni]
			nminX, nmaxX := n.minX, n.maxX
			nminY, nmaxY := n.minY, n.maxY
			mass := n.mass
			openStart := int32(len(nextL))
			for _, c := range curL[fg.lo:fg.hi] {
				bminx, bmaxx := rminx[c], rmaxx[c]
				bminy, bmaxy := rminy[c], rmaxy[c]
				// Min/max squared distance between the node's sender bbox
				// and the cell's receiver bbox.
				dx := max(nminX-bmaxx, bminx-nmaxX, 0)
				dy := max(nminY-bmaxy, bminy-nmaxY, 0)
				mind2 := dx*dx + dy*dy
				// Ancestors of the home cell hold the members' own senders;
				// always open them so self-exclusion stays positional.
				if mind2 > 0 && !(ccx[c]>>uint(l) == fg.nx && ccy[c]>>uint(l) == fg.ny) {
					fx := max(bmaxx-nminX, nmaxX-bminx)
					fy := max(bmaxy-nminY, nmaxY-bminy)
					maxd2 := fx*fx + fy*fy
					if maxd2 <= theta2*mind2 {
						if mass > 0 {
							farNodes++
							a := e.powD2(maxd2)
							b := e.powD2(mind2)
							if inv := 1 / (a * b); inv > 0 && !math.IsInf(inv, 1) {
								cellLo[c] += mass * b * inv
								cellHi[c] += mass * a * inv
							} else {
								cellLo[c] += mass / a
								cellHi[c] += mass / b
							}
						}
						continue
					}
				}
				if l == 0 {
					pc = append(pc, c)
					pb = append(pb, int32(int(fg.ny)*d0+int(fg.nx)))
					continue
				}
				nextL = append(nextL, c)
			}
			if l > 0 && int32(len(nextL)) > openStart {
				cx, cy := fg.nx<<1, fg.ny<<1
				mask := g.childMask[ni]
				for i := uint8(0); i < 4; i++ {
					if mask&(1<<i) != 0 {
						nextG = append(nextG, frontierGroup{cx + int32(i&1), cy + int32(i>>1), openStart, int32(len(nextL))})
					}
				}
			}
		}
		curG, nextG = nextG, curG
		curL, nextL = nextL, curL
	}
	sc.fgCur, sc.fgNext = curG[:0], nextG[:0]
	sc.flCur, sc.flNext = curL[:0], nextL[:0]
	sc.npCell, sc.npBase = pc, pb
	st.FarNodes += farNodes

	// Counting-sort the near pairs by home cell so each cell's base cells
	// form one contiguous run, in the deterministic wave emission order.
	if cap(sc.nearStart) < nc+1 {
		sc.nearStart = make([]int32, nc+1)
	}
	nearStart := sc.nearStart[:nc+1]
	for i := range nearStart {
		nearStart[i] = 0
	}
	for _, c := range pc {
		nearStart[c+1]++
	}
	for c := 0; c < nc; c++ {
		nearStart[c+1] += nearStart[c]
	}
	if cap(sc.nearOrd) < len(pb) {
		sc.nearOrd = make([]int32, len(pb))
	}
	nearOrd := sc.nearOrd[:len(pb)]
	fill := append(sc.nearCells[:0], nearStart[:nc]...)
	for i, c := range pc {
		nearOrd[fill[c]] = pb[i]
		fill[c]++
	}
	sc.nearCells = fill[:0]

	for c := 0; c < nc; c++ {
		t0, t1 := g.starts[c], g.starts[c+1]
		if t0 == t1 {
			continue
		}
		lo, hi := cellLo[c], cellHi[c]
		// Flatten the near cells' sender copies into one contiguous run;
		// every member of the home cell then scans a single SoA stretch
		// (split around its own sender) instead of a dozen short cell
		// segments. The copy is paid once per cell and amortized over its
		// members.
		fpx, fpy, fpw := sc.fpx[:0], sc.fpy[:0], sc.fpw[:0]
		homeOff := 0
		for _, bc := range nearOrd[nearStart[c]:nearStart[c+1]] {
			b0, b1 := g.starts[bc], g.starts[bc+1]
			if int(bc) == c {
				homeOff = len(fpx)
			}
			fpx = append(fpx, g.cpx[b0:b1]...)
			fpy = append(fpy, g.cpy[b0:b1]...)
			fpw = append(fpw, g.cpw[b0:b1]...)
		}
		sc.fpx, sc.fpy, sc.fpw = fpx, fpy, fpw
		basePairs := int64(len(fpx))
		for t := t0; t < t1; t++ {
			k := int(g.members[t])
			qxk, qyk := sc.qx[k], sc.qy[k]
			sp := homeOff + int(g.posOf[k]-t0)
			exact := e.rowSumFast(0, fpx[:sp], fpy[:sp], fpw[:sp], qxk, qyk)
			exact = e.rowSumFast(exact, fpx[sp+1:], fpy[sp+1:], fpw[sp+1:], qxk, qyk)
			sc.near[k] = int32(basePairs - 1)

			iLo := exact + lo + e.p.Noise
			iHi := exact + hi + e.p.Noise
			sig := sc.sig[k]
			if iHi == 0 {
				sc.lb[k], sc.ub[k] = math.Inf(1), math.Inf(1)
				continue
			}
			sc.lb[k] = sig / (e.p.Beta * iHi) * (1 - intervalPad)
			if iLo == 0 {
				sc.ub[k] = math.Inf(1)
			} else {
				sc.ub[k] = sig / (e.p.Beta * iLo) * (1 + intervalPad)
			}
		}
	}
}
