// Package sinr implements the physical (SINR) model of interference from
// Sec. 2 of the paper.
//
// A transmission on link i, concurrent with a set S of links, succeeds under
// power assignment P iff
//
//	S_i ≥ β·(Σ_{j∈S\{i}} I_ji + N),           (1)
//
// where the received signal is S_i = P(i)/l_i^α, the interference of j on i
// is I_ji = P(j)/d_ji^α with d_ji = d(s_j, r_i), N ≥ 0 is ambient noise, and
// β > 0 is the SINR threshold. α > 2 is the path-loss exponent.
//
// The package provides
//   - per-set feasibility checks for a concrete power assignment,
//   - the relative-interference (affectance) form I_P(j,i) of the constraint,
//   - the paper's additive operator I(j,i) = min{1, l_j^α/d(i,j)^α} used by
//     Lemma 1 and Theorem 2, and
//   - exact feasibility under *arbitrary* power control via the spectral
//     radius of the normalized gain matrix (used as ground truth for
//     "feasible" in the sense of Sec. 2).
package sinr

import (
	"fmt"
	"math"

	"aggrate/internal/geom"
)

// Params holds the physical-model constants.
type Params struct {
	// Alpha is the path-loss exponent; the analysis requires Alpha > 2.
	Alpha float64
	// Beta is the SINR decoding threshold β > 0.
	Beta float64
	// Noise is the ambient noise N ≥ 0. Zero models the interference-limited
	// regime directly.
	Noise float64
	// Epsilon is the interference-limited headroom: power assignments
	// guarantee P(i) ≥ (1+Epsilon)·β·N·l_i^α. Ignored when Noise == 0.
	Epsilon float64
}

// DefaultParams are the constants used throughout the experiments:
// α=3 (a standard outdoor exponent, >2 as required), β=2, no noise,
// 50% headroom.
func DefaultParams() Params {
	return Params{Alpha: 3, Beta: 2, Noise: 0, Epsilon: 0.5}
}

// Validate checks the model constraints the analysis relies on.
func (p Params) Validate() error {
	if !(p.Alpha > 2) {
		return fmt.Errorf("sinr: alpha must exceed 2, got %g", p.Alpha)
	}
	if !(p.Beta > 0) {
		return fmt.Errorf("sinr: beta must be positive, got %g", p.Beta)
	}
	if p.Noise < 0 {
		return fmt.Errorf("sinr: noise must be non-negative, got %g", p.Noise)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("sinr: epsilon must be non-negative, got %g", p.Epsilon)
	}
	return nil
}

// Signal returns S_i = power/l^α for a link of length l.
func (p Params) Signal(power, l float64) float64 {
	return power / math.Pow(l, p.Alpha)
}

// InterferenceAt returns I_ji = power_j / d_ji^α, the interference a sender
// transmitting with power_j at distance d_ji from a receiver imposes on it.
func (p Params) InterferenceAt(powerJ, dJI float64) float64 {
	return powerJ / math.Pow(dJI, p.Alpha)
}

// MinPower returns β·N·l^α, the minimum power to decode over a link of
// length l in the absence of interference, and zero when Noise is zero.
func (p Params) MinPower(l float64) float64 {
	return p.Beta * p.Noise * math.Pow(l, p.Alpha)
}

// Feasible reports whether every link in S satisfies the SINR condition (1)
// when all of S transmits simultaneously under the given powers
// (power[k] is the transmit power of links[k]). It returns an error if the
// slices disagree in length or a power is non-positive.
func (p Params) Feasible(links []geom.Link, power []float64) (bool, error) {
	margin, err := p.Margin(links, power)
	if err != nil {
		return false, err
	}
	return margin >= 1, nil
}

// Margin returns the worst-case SINR margin of the set: the minimum over
// links i of SINR_i/β. The set is feasible iff the margin is ≥ 1.
// A set with a single link and zero noise has margin +Inf.
func (p Params) Margin(links []geom.Link, power []float64) (float64, error) {
	if len(links) != len(power) {
		return 0, fmt.Errorf("sinr: %d links but %d powers", len(links), len(power))
	}
	worst := math.Inf(1)
	for i, li := range links {
		if power[i] <= 0 {
			return 0, fmt.Errorf("sinr: non-positive power %g on link %d", power[i], i)
		}
		sig := p.Signal(power[i], li.Length())
		intf := p.Noise
		for j, lj := range links {
			if j == i {
				continue
			}
			intf += p.InterferenceAt(power[j], geom.SenderToReceiver(lj, li))
		}
		var m float64
		if intf == 0 {
			m = math.Inf(1)
		} else {
			m = sig / (p.Beta * intf)
		}
		if m < worst {
			worst = m
		}
	}
	return worst, nil
}

// RelInterference returns the relative interference (affectance)
// I_P(j,i) = P(j)·l_i^α / (P(i)·d_ji^α) of link j on link i, the normalized
// form used in Sec. 4. With zero noise, a set is P-feasible iff
// Σ_j I_P(j,i) ≤ 1/β for every i.
func (p Params) RelInterference(j, i geom.Link, powerJ, powerI float64) float64 {
	if j == i {
		return 0
	}
	d := geom.SenderToReceiver(j, i)
	return powerJ * math.Pow(i.Length(), p.Alpha) / (powerI * math.Pow(d, p.Alpha))
}

// RelInterferenceSum returns Σ_{j∈S, j≠i} I_P(j, links[i]).
func (p Params) RelInterferenceSum(links []geom.Link, power []float64, i int) float64 {
	s := 0.0
	for j := range links {
		if j == i {
			continue
		}
		s += p.RelInterference(links[j], links[i], power[j], power[i])
	}
	return s
}

// AddOp returns the paper's additive operator
// I(j,i) = min{1, l_j^α / d(i,j)^α}, where d(i,j) is the minimum endpoint
// distance between the links. Coinciding links (d = 0) give 1.
func (p Params) AddOp(j, i geom.Link) float64 {
	d := geom.LinkDist(j, i)
	if d <= 0 {
		return 1
	}
	v := math.Pow(j.Length()/d, p.Alpha)
	if v > 1 {
		return 1
	}
	return v
}

// AddOpOut returns I(i, S) = Σ_{j∈S} I(i,j): the additive influence of link
// i on the set S (itself excluded by identity of the link values).
func (p Params) AddOpOut(i geom.Link, set []geom.Link) float64 {
	s := 0.0
	for _, j := range set {
		if j == i {
			continue
		}
		s += p.AddOp(i, j)
	}
	return s
}

// AddOpIn returns I(S, i) = Σ_{j∈S} I(j,i).
func (p Params) AddOpIn(set []geom.Link, i geom.Link) float64 {
	s := 0.0
	for _, j := range set {
		if j == i {
			continue
		}
		s += p.AddOp(j, i)
	}
	return s
}

// AddOpOutLonger returns I(i, S⁺_i) where S⁺_i is the subset of S with
// length ≥ l_i, the quantity bounded by Lemma 1 for MST links.
func (p Params) AddOpOutLonger(i geom.Link, set []geom.Link) float64 {
	li := i.Length()
	s := 0.0
	for _, j := range set {
		if j == i || j.Length() < li {
			continue
		}
		s += p.AddOp(i, j)
	}
	return s
}

// GainMatrix returns the normalized gain matrix B of the set, where
// B[i][j] = β·l_i^α/d_ji^α for j ≠ i and 0 on the diagonal. The SINR
// constraints with zero noise read componentwise P ≥ B·P; the set is
// feasible under some positive power assignment iff the spectral radius
// ρ(B) < 1 (Perron–Frobenius).
func (p Params) GainMatrix(links []geom.Link) [][]float64 {
	n := len(links)
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		liA := math.Pow(links[i].Length(), p.Alpha)
		for j := range b[i] {
			if j == i {
				continue
			}
			d := geom.SenderToReceiver(links[j], links[i])
			b[i][j] = p.Beta * liA / math.Pow(d, p.Alpha)
		}
	}
	return b
}

// SpectralRadius estimates the spectral radius of a non-negative square
// matrix by power iteration with max-norm normalization. For the
// irreducible-or-nearly-so gain matrices arising from link sets this
// converges quickly; iters=100 gives ~1e-10 accuracy on the experiment
// instances. A 0×0 or 1×1 all-zero matrix has radius 0.
func SpectralRadius(b [][]float64, iters int) float64 {
	n := len(b)
	if n == 0 {
		return 0
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	radius := 0.0
	for it := 0; it < iters; it++ {
		maxv := 0.0
		for i := 0; i < n; i++ {
			s := 0.0
			row := b[i]
			for j := 0; j < n; j++ {
				s += row[j] * x[j]
			}
			y[i] = s
			if s > maxv {
				maxv = s
			}
		}
		if maxv == 0 {
			return 0
		}
		radius = maxv
		inv := 1 / maxv
		for i := range y {
			// Keep a tiny floor so the iterate stays positive and can pick
			// up mass from any reducible block.
			x[i] = y[i]*inv + 1e-300
		}
	}
	return radius
}

// FeasibleSomePower reports whether the set is feasible under *some* power
// assignment with zero noise: ρ(B) < 1 for the normalized gain matrix. The
// margin returned is 1/ρ(B) (∞ when ρ=0); margins > 1 mean feasible.
func (p Params) FeasibleSomePower(links []geom.Link) (bool, float64) {
	if len(links) <= 1 {
		return true, math.Inf(1)
	}
	r := SpectralRadius(p.GainMatrix(links), 100)
	if r == 0 {
		return true, math.Inf(1)
	}
	return r < 1, 1 / r
}
