package sinr

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"aggrate/internal/geom"
)

// randLinks returns n links with senders and receivers uniform in a
// side×side square (deterministic in seed).
func randLinks(n int, side float64, seed int64) []geom.Link {
	r := rand.New(rand.NewSource(seed))
	links := make([]geom.Link, n)
	for i := range links {
		s := geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
		// Short links: receiver near the sender, so lengths (and margins)
		// spread over a realistic range.
		d := geom.Point{X: (r.Float64() - 0.5) * side / 20, Y: (r.Float64() - 0.5) * side / 20}
		links[i] = geom.NewLink(2*i, 2*i+1, s, s.Add(d))
	}
	return links
}

// clusterLinks returns n links bunched into a few tight clusters, the
// adversarial shape for grid aggregation (most mass in few cells).
func clusterLinks(n int, seed int64) []geom.Link {
	r := rand.New(rand.NewSource(seed))
	centers := []geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 50}, {X: 400, Y: 900}}
	links := make([]geom.Link, n)
	for i := range links {
		c := centers[r.Intn(len(centers))]
		s := c.Add(geom.Point{X: r.NormFloat64() * 5, Y: r.NormFloat64() * 5})
		d := geom.Point{X: r.Float64() + 0.1, Y: r.Float64() + 0.1}
		links[i] = geom.NewLink(2*i, 2*i+1, s, s.Add(d))
	}
	return links
}

func fullSlot(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func randPowers(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.5 + r.Float64()*10
	}
	return p
}

// checkParity compares the engine against Params.Margin on one slot:
// identical feasibility verdict and margin within 1e-9 relative.
func checkParity(t *testing.T, p Params, links []geom.Link, idx []int, powers []float64) {
	t.Helper()
	eng := NewEngine(p, links)
	sc := NewEngineScratch()
	var st EngineStats
	got, err := eng.MarginSlot(idx, powers, sc, &st)
	if err != nil {
		t.Fatalf("MarginSlot: %v", err)
	}
	slotLinks := make([]geom.Link, len(idx))
	for k, i := range idx {
		slotLinks[k] = links[i]
	}
	want, err := p.Margin(slotLinks, powers)
	if err != nil {
		t.Fatalf("Margin: %v", err)
	}
	if math.IsInf(want, 1) || math.IsInf(got, 1) {
		if got != want {
			t.Fatalf("margin = %g, naive = %g", got, want)
		}
		return
	}
	if (got >= 1) != (want >= 1) {
		t.Fatalf("verdict mismatch: engine margin %g vs naive %g", got, want)
	}
	if rel := math.Abs(got-want) / math.Max(math.Abs(want), 1e-300); rel > 1e-9 {
		t.Fatalf("margin = %.17g, naive = %.17g (rel %.3g > 1e-9)", got, want, rel)
	}
	if st.Links != int64(len(idx)) {
		t.Fatalf("stats.Links = %d, want %d", st.Links, len(idx))
	}
	if st.NaivePairs != int64(len(idx))*int64(len(idx)-1) {
		t.Fatalf("stats.NaivePairs = %d, want m(m-1) = %d", st.NaivePairs, len(idx)*(len(idx)-1))
	}
}

// TestEngineMatchesMarginExactPath covers the small-slot cutoff: every size
// below the grid threshold must match the naive oracle bit-for-bit in
// verdict and ≤1e-9 in margin, across exponents and noise regimes.
func TestEngineMatchesMarginExactPath(t *testing.T) {
	for _, alpha := range []float64{2.1, 3, 4} {
		for _, noise := range []float64{0, 0.03} {
			p := Params{Alpha: alpha, Beta: 2, Noise: noise, Epsilon: 0.5}
			for _, m := range []int{1, 2, 3, 8, 40, 64} {
				links := randLinks(m, 1000, int64(m)*7+int64(alpha*10))
				checkParity(t, p, links, fullSlot(m), randPowers(m, int64(m)))
			}
		}
	}
}

// TestEngineMatchesMarginGridPath forces the grid pyramid (m above the
// cutoff) on uniform and clustered layouts.
func TestEngineMatchesMarginGridPath(t *testing.T) {
	for _, alpha := range []float64{2.1, 3, 4} {
		p := Params{Alpha: alpha, Beta: 1, Noise: 0, Epsilon: 0.5}
		for _, m := range []int{65, 200, 1000} {
			links := randLinks(m, 5000, int64(m)+int64(alpha))
			checkParity(t, p, links, fullSlot(m), randPowers(m, int64(m)+1))

			cl := clusterLinks(m, int64(m)+2)
			checkParity(t, p, cl, fullSlot(m), randPowers(m, int64(m)+3))
		}
	}
}

// TestEngineSharedFrontierParity forces the frontier-shared first pass
// (m ≥ engineSharedPassMin) and checks, on uniform and clustered layouts,
// that (a) the margin matches the naive oracle and (b) it is bit-identical
// to the per-link descent tier — the certified-interval argument says the
// shared pass may only change candidate-set composition, never the margin.
func TestEngineSharedFrontierParity(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic oracle on a large slot")
	}
	m := engineSharedPassMin + 123
	p := Params{Alpha: 3, Beta: 1, Noise: 0, Epsilon: 0.5}
	layouts := map[string][]geom.Link{
		"uniform": randLinks(m, 20000, 31),
		"cluster": clusterLinks(m, 32),
	}
	for name, links := range layouts {
		powers := randPowers(m, 33)
		idx := fullSlot(m)
		eng := NewEngine(p, links)
		var st EngineStats
		shared, err := eng.MarginSlot(idx, powers, NewEngineScratch(), &st)
		if err != nil {
			t.Fatalf("%s: shared MarginSlot: %v", name, err)
		}
		engPL := NewEngine(p, links)
		engPL.forcePerLink = true
		var stPL EngineStats
		perLink, err := engPL.MarginSlot(idx, powers, NewEngineScratch(), &stPL)
		if err != nil {
			t.Fatalf("%s: per-link MarginSlot: %v", name, err)
		}
		if shared != perLink {
			t.Fatalf("%s: shared margin %.17g != per-link margin %.17g", name, shared, perLink)
		}
		slotLinks := make([]geom.Link, m)
		for k, i := range idx {
			slotLinks[k] = links[i]
		}
		want, err := p.Margin(slotLinks, powers)
		if err != nil {
			t.Fatalf("%s: Margin: %v", name, err)
		}
		if rel := math.Abs(shared-want) / math.Max(math.Abs(want), 1e-300); rel > 1e-9 {
			t.Fatalf("%s: margin %.17g vs naive %.17g (rel %.3g)", name, shared, want, rel)
		}
	}
}

// TestEngineSubsetSlot verifies that slots referencing a strict subset of
// the engine's link set (the normal case: one schedule, many slots) index
// correctly.
func TestEngineSubsetSlot(t *testing.T) {
	p := DefaultParams()
	links := randLinks(500, 2000, 11)
	r := rand.New(rand.NewSource(12))
	idx := r.Perm(500)[:180]
	checkParity(t, p, links, idx, randPowers(180, 13))
}

// TestEngineLongLinks places links whose length rivals the deployment
// extent, so a link's own sender falls in a *far* pyramid node relative to
// its receiver — the self-mass-subtraction path of the far-field bound.
func TestEngineLongLinks(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	links := make([]geom.Link, 300)
	for i := range links {
		s := geom.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
		d := geom.Point{X: (r.Float64() - 0.5) * 1500, Y: (r.Float64() - 0.5) * 1500}
		links[i] = geom.NewLink(2*i, 2*i+1, s, s.Add(d))
	}
	checkParity(t, DefaultParams(), links, fullSlot(300), randPowers(300, 22))
}

// TestEngineDegenerate covers the grid's bail-outs: co-located senders
// (zero extent) and a sender coinciding with another link's receiver
// (infinite interference, margin 0).
func TestEngineDegenerate(t *testing.T) {
	p := DefaultParams()
	// All senders at the origin: grid extent 0, exact fallback.
	links := make([]geom.Link, 100)
	for i := range links {
		links[i] = geom.NewLink(2*i, 2*i+1, geom.Point{},
			geom.Point{X: 1 + float64(i)*0.01, Y: 1})
	}
	checkParity(t, p, links, fullSlot(100), randPowers(100, 31))

	// links[1]'s sender sits exactly on links[0]'s receiver.
	links2 := randLinks(80, 100, 32)
	links2[1].S = links2[0].R
	eng := NewEngine(p, links2)
	var st EngineStats
	got, err := eng.MarginSlot(fullSlot(80), randPowers(80, 33), NewEngineScratch(), &st)
	if err != nil || got != 0 {
		t.Fatalf("coincident sender/receiver: margin=%g err=%v, want 0, nil", got, err)
	}
}

// TestEngineHandComputed mirrors the schedule test's hand-computed slot:
// two unit links at distance 10, uniform power, α=3, β=2 → margin 364.5.
func TestEngineHandComputed(t *testing.T) {
	p := Params{Alpha: 3, Beta: 2, Noise: 0, Epsilon: 0}
	links := []geom.Link{
		geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1}),
		geom.NewLink(2, 3, geom.Point{X: 10}, geom.Point{X: 11}),
	}
	eng := NewEngine(p, links)
	var st EngineStats
	got, err := eng.MarginSlot([]int{0, 1}, []float64{1, 1}, NewEngineScratch(), &st)
	if err != nil || math.Abs(got-364.5) > 1e-9 {
		t.Fatalf("margin = %g err = %v, want 364.5, nil", got, err)
	}
}

// TestEngineErrors: the engine must reproduce Params.Margin's error
// conditions (and messages) so the schedule wrapper's output is identical.
func TestEngineErrors(t *testing.T) {
	p := DefaultParams()
	links := randLinks(4, 100, 41)
	eng := NewEngine(p, links)
	sc := NewEngineScratch()
	var st EngineStats

	if _, err := eng.MarginSlot([]int{0, 1}, []float64{1}, sc, &st); err == nil ||
		!strings.Contains(err.Error(), "2 links but 1 powers") {
		t.Fatalf("length mismatch: err = %v", err)
	}
	_, err := eng.MarginSlot([]int{0, 1, 2}, []float64{1, -1, 1}, sc, &st)
	if err == nil || !strings.Contains(err.Error(), "non-positive power -1 on link 1") {
		t.Fatalf("bad power: err = %v", err)
	}
	want, werr := p.Margin([]geom.Link{links[0], links[1], links[2]}, []float64{1, -1, 1})
	if werr == nil || want != 0 || err.Error() != werr.Error() {
		t.Fatalf("error text diverges from naive: engine %q vs naive %q", err, werr)
	}
	if _, err := eng.MarginSlot([]int{0, 99}, []float64{1, 1}, sc, &st); err == nil {
		t.Fatal("out-of-range link index accepted")
	}
}

// TestEngineScratchReuse: buffers reused across slots of very different
// sizes must not leak state between calls.
func TestEngineScratchReuse(t *testing.T) {
	p := DefaultParams()
	links := randLinks(800, 3000, 51)
	eng := NewEngine(p, links)
	sc := NewEngineScratch()
	var st EngineStats
	sizes := []int{700, 12, 300, 1, 800, 90}
	for trial, m := range sizes {
		idx := fullSlot(m)
		pw := randPowers(m, int64(trial))
		got, err := eng.MarginSlot(idx, pw, sc, &st)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var fresh EngineStats
		want, err := eng.MarginSlot(idx, pw, NewEngineScratch(), &fresh)
		if err != nil || got != want {
			t.Fatalf("trial %d: reused scratch margin %g != fresh %g (err %v)", trial, got, want, err)
		}
	}
}

// TestEngineStatsAccumulate: Add must sum every counter and ExactPairsFrac
// must be exact-work over naive-work.
func TestEngineStatsAccumulate(t *testing.T) {
	a := EngineStats{Links: 1, ExactLinks: 2, ExactPairs: 3, NearPairs: 4,
		FarNodes: 5, RefinedLinks: 6, RefinedCells: 7, NaivePairs: 12}
	b := a
	b.Add(a)
	if b != (EngineStats{2, 4, 6, 8, 10, 12, 14, 24}) {
		t.Fatalf("Add = %+v", b)
	}
	if got := b.ExactPairsFrac(); got != float64(6+8)/24 {
		t.Fatalf("ExactPairsFrac = %g", got)
	}
	if (EngineStats{}).ExactPairsFrac() != 0 {
		t.Fatal("empty stats must have frac 0")
	}
}

// TestEngineStatsFracInvariant: the per-link distinct-pair accounting must
// keep ExactPairsFrac ≤ 1 on real engine runs — including small slots just
// above the grid cutoff (the historical >1.0 regime) and when stats are
// accumulated across repeated verification passes, as the γ-escalation
// retry loop does.
func TestEngineStatsFracInvariant(t *testing.T) {
	p := DefaultParams()
	var acc EngineStats
	for _, m := range []int{65, 70, 80, 100, 150, 300, 1000, 2500} {
		links := randLinks(m, 2000, int64(m))
		eng := NewEngine(p, links)
		sc := NewEngineScratch()
		var st EngineStats
		if _, err := eng.MarginSlot(fullSlot(m), randPowers(m, int64(m)+5), sc, &st); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if f := st.ExactPairsFrac(); f > 1 {
			t.Fatalf("m=%d: ExactPairsFrac %g > 1 (stats %+v)", m, f, st)
		}
		if st.ExactPairs+st.NearPairs > st.NaivePairs {
			t.Fatalf("m=%d: pairs %d+%d exceed naive %d", m, st.ExactPairs, st.NearPairs, st.NaivePairs)
		}
		acc.Add(st)
		// A second pass over the same slot, accumulated like a γ retry.
		if _, err := eng.MarginSlot(fullSlot(m), randPowers(m, int64(m)+5), sc, &st); err != nil {
			t.Fatalf("m=%d retry: %v", m, err)
		}
		acc.Add(st)
	}
	if f := acc.ExactPairsFrac(); f > 1 {
		t.Fatalf("accumulated ExactPairsFrac %g > 1 (stats %+v)", f, acc)
	}
}

// BenchmarkMargin compares the naive O(m²) Margin with the engine on one
// large slot — the per-slot speedup layer 1+2 buy before slot parallelism.
// BenchmarkDescendShared compares the tier-1 coarse pass on a huge slot:
// per-link pyramid descents ("cold") against the frontier-shared wave.
func BenchmarkDescendShared(b *testing.B) {
	m := 1 << 14
	links := randLinks(m, 50000, 41)
	powers := randPowers(m, 42)
	idx := fullSlot(m)
	p := Params{Alpha: 3, Beta: 1, Noise: 0, Epsilon: 0.5}
	for _, mode := range []string{"cold", "frontier"} {
		b.Run(mode, func(b *testing.B) {
			eng := NewEngine(p, links)
			eng.forcePerLink = mode == "cold"
			sc := NewEngineScratch()
			var st EngineStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.MarginSlot(idx, powers, sc, &st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMargin(b *testing.B) {
	links := randLinks(4000, 20000, 61)
	powers := randPowers(4000, 62)
	idx := fullSlot(4000)
	p := DefaultParams()
	slotLinks := make([]geom.Link, len(idx))
	for k, i := range idx {
		slotLinks[k] = links[i]
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Margin(slotLinks, powers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		eng := NewEngine(p, links)
		sc := NewEngineScratch()
		var st EngineStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.MarginSlot(idx, powers, sc, &st); err != nil {
				b.Fatal(err)
			}
		}
	})
}
