package sinr

import (
	"math"
	"time"

	"aggrate/internal/geom"
)

// kernelBenchLinks builds a deterministic synthetic slot for kernel
// micro-measurement: m unit links scattered over an m^(1/2)-side square by a
// fixed-seed splitmix64 stream, so every caller times the same workload.
func kernelBenchLinks(m int) []geom.Link {
	links := make([]geom.Link, m)
	side := math.Sqrt(float64(m))
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
	for i := range links {
		sx, sy := next()*side, next()*side
		theta := next() * 2 * math.Pi
		links[i] = geom.Link{
			S: geom.Point{X: sx, Y: sy},
			R: geom.Point{X: sx + math.Cos(theta), Y: sy + math.Sin(theta)},
		}
	}
	return links
}

// MeasureKernelNsPerPair times the symmetric tiled near-field kernel — the
// unordered-pair enumeration behind exactAll, the engine's hottest inner
// loop — on a synthetic m-sender slot, and returns nanoseconds per ordered
// pairwise term (the m·(m−1) terms a naive evaluation would compute). The
// bench command records it as kernel_ns_per_pair so the regression gate can
// catch a de-optimized kernel (a lost unroll, a reintroduced math.Pow)
// independently of slot-structure and pipeline effects.
func MeasureKernelNsPerPair(p Params, m, rounds int) float64 {
	if m < 2 || rounds < 1 {
		return 0
	}
	links := kernelBenchLinks(m)
	e := NewEngine(p, links)
	sc := NewEngineScratch()
	sc.reserve(m)
	for k, l := range links {
		sc.px[k], sc.py[k] = l.S.X, l.S.Y
		sc.qx[k], sc.qy[k] = l.R.X, l.R.Y
		sc.pw[k] = 1
		sc.sig[k] = 1 / e.lenA[k]
	}
	var st EngineStats
	sink := 0.0
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		sink += e.exactAll(sc, m, &st)
	}
	elapsed := time.Since(t0)
	if math.IsNaN(sink) { // keep the accumulation observable
		return math.NaN()
	}
	pairs := float64(rounds) * float64(m) * float64(m-1)
	return float64(elapsed.Nanoseconds()) / pairs
}
