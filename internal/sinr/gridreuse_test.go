package sinr

import (
	"math"
	"testing"
)

// TestMarginSlotGridReuse pins the persistent-slot-structure contract:
// margins are bit-identical across cold build, direct reuse, power-refresh
// reuse, and a rejected (permuted-order) reuse, and the reused flag reports
// exactly when buildGrid was skipped.
func TestMarginSlotGridReuse(t *testing.T) {
	const m = 600 // above the exact-path cutoff: the slot builds a grid
	p := DefaultParams()
	links := randLinks(m, 40000, 31)
	e := NewEngine(p, links)
	sc := NewEngineScratch()
	idx := fullSlot(m)
	powers := randPowers(m, 32)

	var st EngineStats
	cold, grid, reused, err := e.MarginSlotGrid(idx, powers, sc, &st, nil, true)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if reused || grid == nil {
		t.Fatalf("cold pass: reused=%v grid=%v", reused, grid != nil)
	}

	// Direct reuse: same membership order, same powers.
	warm, g2, reused, err := e.MarginSlotGrid(idx, powers, sc, &st, grid, true)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !reused || g2 != grid {
		t.Fatalf("direct reuse not taken: reused=%v same_grid=%v", reused, g2 == grid)
	}
	if warm != cold {
		t.Fatalf("direct-reuse margin %.17g != cold %.17g", warm, cold)
	}

	// Power-refresh reuse: same membership, different powers. The refreshed
	// grid must be a fresh object (the cached one stays immutable) and the
	// margin must match a from-scratch build with the new powers.
	powers2 := append([]float64(nil), powers...)
	for i := range powers2 {
		powers2[i] *= 1.0625
	}
	refreshed, g3, reused, err := e.MarginSlotGrid(idx, powers2, sc, &st, grid, true)
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if !reused || g3 == grid || g3 == nil {
		t.Fatalf("refresh reuse not taken: reused=%v fresh_grid=%v", reused, g3 != grid && g3 != nil)
	}
	scratch2, _, _, err := e.MarginSlotGrid(idx, powers2, NewEngineScratch(), &st, nil, false)
	if err != nil {
		t.Fatalf("scratch rebuild: %v", err)
	}
	if refreshed != scratch2 {
		t.Fatalf("refreshed margin %.17g != scratch %.17g", refreshed, scratch2)
	}

	// Permuted membership order: the order hash rejects the grid (slot order
	// defines the exact-path accumulation order), forcing a rebuild.
	perm := append([]int(nil), idx...)
	permPow := append([]float64(nil), powers...)
	perm[0], perm[1] = perm[1], perm[0]
	permPow[0], permPow[1] = permPow[1], permPow[0]
	pm, _, reused, err := e.MarginSlotGrid(perm, permPow, sc, &st, grid, true)
	if err != nil {
		t.Fatalf("permuted: %v", err)
	}
	if reused {
		t.Fatalf("permuted slot order reused a stale grid")
	}
	ps, _, _, err := e.MarginSlotGrid(perm, permPow, NewEngineScratch(), &st, nil, false)
	if err != nil {
		t.Fatalf("permuted scratch: %v", err)
	}
	if pm != ps {
		t.Fatalf("permuted margin %.17g != scratch %.17g", pm, ps)
	}

	// retain=false with a matching grid: direct reuse returns g itself;
	// refresh happens in scratch and returns no grid to keep.
	_, g4, reused, err := e.MarginSlotGrid(idx, powers, sc, &st, grid, false)
	if err != nil || !reused || g4 != grid {
		t.Fatalf("retain=false direct reuse: err=%v reused=%v same=%v", err, reused, g4 == grid)
	}
	_, g5, reused, err := e.MarginSlotGrid(idx, powers2, sc, &st, grid, false)
	if err != nil || !reused || g5 != nil {
		t.Fatalf("retain=false refresh: err=%v reused=%v grid=%v", err, reused, g5)
	}
}

// TestSlotGridSizeBytes: the byte accounting the VerifyCache budget relies
// on is positive and grows with slot size.
func TestSlotGridSizeBytes(t *testing.T) {
	p := DefaultParams()
	sizes := []int{200, 2000}
	var prev int64
	for _, m := range sizes {
		links := randLinks(m, 40000, 33)
		e := NewEngine(p, links)
		var st EngineStats
		_, g, _, err := e.MarginSlotGrid(fullSlot(m), randPowers(m, 34), NewEngineScratch(), &st, nil, true)
		if err != nil || g == nil {
			t.Fatalf("m=%d: grid=%v err=%v", m, g != nil, err)
		}
		if g.SizeBytes() <= prev {
			t.Fatalf("m=%d: SizeBytes %d not above smaller slot's %d", m, g.SizeBytes(), prev)
		}
		prev = g.SizeBytes()
	}
}

// BenchmarkNearFieldKernel times the symmetric tiled pair kernel (exactAll)
// against the per-row naive-order fallback (exactOne over every row) on the
// same slot — the two must agree bit for bit, and the symmetric kernel is
// the one the regression gate watches via kernel_ns_per_pair.
func BenchmarkNearFieldKernel(b *testing.B) {
	const m = 2048
	p := DefaultParams()
	links := kernelBenchLinks(m)
	e := NewEngine(p, links)
	sc := NewEngineScratch()
	sc.reserve(m)
	for k, l := range links {
		sc.px[k], sc.py[k] = l.S.X, l.S.Y
		sc.qx[k], sc.qy[k] = l.R.X, l.R.Y
		sc.pw[k] = 1
		sc.sig[k] = 1 / e.lenA[k]
	}
	var st EngineStats
	b.Run("symmetric", func(b *testing.B) {
		acc := 0.0
		for i := 0; i < b.N; i++ {
			acc += e.exactAll(sc, m, &st)
		}
		if math.IsNaN(acc) {
			b.Fatal("NaN margin")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(m)*float64(m-1)), "ns/pair")
	})
	b.Run("per-row", func(b *testing.B) {
		acc := 0.0
		for i := 0; i < b.N; i++ {
			worst := math.Inf(1)
			for k := 0; k < m; k++ {
				if mg := e.exactOne(sc, m, k); mg < worst {
					worst = mg
				}
			}
			acc += worst
		}
		if math.IsNaN(acc) {
			b.Fatal("NaN margin")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(m)*float64(m-1)), "ns/pair")
	})
}

// BenchmarkMarginSlotWarm: cold slot evaluation (buildGrid every time)
// against the persistent-structure warm path (grid offered back).
func BenchmarkMarginSlotWarm(b *testing.B) {
	const m = 20000
	p := DefaultParams()
	links := randLinks(m, 200000, 35)
	e := NewEngine(p, links)
	idx := fullSlot(m)
	powers := randPowers(m, 36)
	sc := NewEngineScratch()
	var st EngineStats
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := e.MarginSlotGrid(idx, powers, sc, &st, nil, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grid-warm", func(b *testing.B) {
		_, grid, _, err := e.MarginSlotGrid(idx, powers, sc, &st, nil, true)
		if err != nil || grid == nil {
			b.Fatalf("prime: grid=%v err=%v", grid != nil, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _, reused, err := e.MarginSlotGrid(idx, powers, sc, &st, grid, false)
			if err != nil {
				b.Fatal(err)
			}
			if !reused {
				b.Fatal("warm pass rebuilt the grid")
			}
		}
	})
}
