package sinr

import (
	"math"
	"testing"

	"aggrate/internal/geom"
)

// twoLinkParams are the hand-computed fixture constants: α=3, β=2, no
// noise. All expected values below are derived by hand from Sec. 2's
// definitions.
func twoLinkParams() Params { return Params{Alpha: 3, Beta: 2, Noise: 0, Epsilon: 0} }

// TestMarginTwoLinksFeasible: links A = (0,0)→(1,0) and B = (10,0)→(11,0),
// unit powers.
//
//	S_A = 1/1³ = 1;  I_{BA} = 1/d(s_B, r_A)³ = 1/9³ = 1/729
//	SINR_A = 729, margin_A = 729/β = 364.5
//	S_B = 1;  I_{AB} = 1/d(s_A, r_B)³ = 1/11³ = 1/1331
//	SINR_B = 1331, margin_B = 665.5  →  worst margin 364.5
func TestMarginTwoLinksFeasible(t *testing.T) {
	p := twoLinkParams()
	links := []geom.Link{
		geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1}),
		geom.NewLink(2, 3, geom.Point{X: 10}, geom.Point{X: 11}),
	}
	m, err := p.Margin(links, []float64{1, 1})
	if err != nil {
		t.Fatalf("Margin: %v", err)
	}
	if want := 364.5; math.Abs(m-want) > 1e-9 {
		t.Fatalf("margin = %.12g, want %g", m, want)
	}
	ok, err := p.Feasible(links, []float64{1, 1})
	if err != nil || !ok {
		t.Fatalf("Feasible = %v, %v; want true, nil", ok, err)
	}
}

// TestMarginTwoLinksInfeasible: move B to (2,0)→(3,0).
//
//	I_{BA} = 1/d(s_B, r_A)³ = 1/1³ = 1 → SINR_A = 1, margin_A = 0.5
//	I_{AB} = 1/d(s_A, r_B)³ = 1/27  → SINR_B = 27, margin_B = 13.5
func TestMarginTwoLinksInfeasible(t *testing.T) {
	p := twoLinkParams()
	links := []geom.Link{
		geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1}),
		geom.NewLink(2, 3, geom.Point{X: 2}, geom.Point{X: 3}),
	}
	m, err := p.Margin(links, []float64{1, 1})
	if err != nil {
		t.Fatalf("Margin: %v", err)
	}
	if want := 0.5; math.Abs(m-want) > 1e-12 {
		t.Fatalf("margin = %.12g, want %g", m, want)
	}
	if ok, _ := p.Feasible(links, []float64{1, 1}); ok {
		t.Fatal("Feasible = true for an infeasible pair")
	}
	// The pair is still feasible under *some* power assignment: boosting A
	// relative to B trades A's deficit against B's huge slack.
	if ok, margin := p.FeasibleSomePower(links); !ok || margin <= 1 {
		t.Fatalf("FeasibleSomePower = %v, %g; want true with margin > 1", ok, margin)
	}
}

// TestMarginEdgeCases covers the degenerate inputs Margin must reject or
// special-case.
func TestMarginEdgeCases(t *testing.T) {
	p := twoLinkParams()
	single := []geom.Link{geom.NewLink(0, 1, geom.Point{}, geom.Point{X: 5})}
	m, err := p.Margin(single, []float64{1})
	if err != nil || !math.IsInf(m, 1) {
		t.Fatalf("single link, zero noise: margin = %v, %v; want +Inf, nil", m, err)
	}
	if _, err := p.Margin(single, []float64{1, 2}); err == nil {
		t.Fatal("Margin accepted mismatched slice lengths")
	}
	if _, err := p.Margin(single, []float64{0}); err == nil {
		t.Fatal("Margin accepted non-positive power")
	}
}

// TestAddOp pins the additive operator I(j,i) = min{1, (l_j/d(i,j))^α}.
func TestAddOp(t *testing.T) {
	p := twoLinkParams()
	a := geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1}) // length 1
	b := geom.NewLink(2, 3, geom.Point{X: 3}, geom.Point{X: 4}) // d(a,b)=2
	if got, want := p.AddOp(a, b), 0.125; math.Abs(got-want) > 1e-12 {
		t.Fatalf("AddOp = %.12g, want %g (= (1/2)³)", got, want)
	}
	c := geom.NewLink(4, 5, geom.Point{X: 1.5}, geom.Point{X: 9}) // length 7.5, d(a,c)=0.5
	if got := p.AddOp(c, a); got != 1 {
		t.Fatalf("AddOp clamp = %.12g, want 1", got)
	}
	if got := p.AddOp(a, a); got != 1 {
		t.Fatalf("AddOp of coinciding links = %g, want 1", got)
	}
}

// TestNoiseFloor: with noise, a single link needs P ≥ β·N·l^α; MinPower and
// Margin must agree on the boundary.
func TestNoiseFloor(t *testing.T) {
	p := Params{Alpha: 3, Beta: 2, Noise: 0.001, Epsilon: 0}
	l := geom.NewLink(0, 1, geom.Point{}, geom.Point{X: 2})
	floor := p.MinPower(2) // 2·0.001·8 = 0.016
	if math.Abs(floor-0.016) > 1e-15 {
		t.Fatalf("MinPower = %g, want 0.016", floor)
	}
	m, err := p.Margin([]geom.Link{l}, []float64{floor})
	if err != nil || math.Abs(m-1) > 1e-12 {
		t.Fatalf("margin at the noise floor = %v, %v; want exactly 1", m, err)
	}
}

// TestSpectralRadiusKnown checks the power iteration on a matrix with a
// known radius.
func TestSpectralRadiusKnown(t *testing.T) {
	// [[1, 2], [0.5, 1]] has eigenvalues 1 ± 1 → radius 2, with a spectral
	// gap so the power iteration converges.
	b := [][]float64{{1, 2}, {0.5, 1}}
	if r := SpectralRadius(b, 200); math.Abs(r-2) > 1e-8 {
		t.Fatalf("SpectralRadius = %.12g, want 2", r)
	}
	if r := SpectralRadius(nil, 10); r != 0 {
		t.Fatalf("SpectralRadius(nil) = %g, want 0", r)
	}
}
