package schedule

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/sinr"
)

// randInstance returns n short links uniform in a side×side square plus a
// round-robin coloring schedule over k slots (so slot sizes are ~n/k and
// exercise the engine's grid path for small k).
func randInstance(n, k int, side, lenDiv float64, seed int64) (*Schedule, []float64) {
	r := rand.New(rand.NewSource(seed))
	links := make([]geom.Link, n)
	powers := make([]float64, n)
	colors := make([]int, n)
	for i := range links {
		s := geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
		d := geom.Point{X: (r.Float64() - 0.5) * side / lenDiv, Y: (r.Float64() - 0.5) * side / lenDiv}
		links[i] = geom.NewLink(2*i, 2*i+1, s, s.Add(d))
		powers[i] = 0.5 + r.Float64()*4
		colors[i] = i % k
	}
	s, err := FromColoring(links, colors)
	if err != nil {
		panic(err)
	}
	return s, powers
}

// checkVerifyParity runs both engines and demands identical margins (1e-9
// relative, +Inf exact) and identical error presence and message.
func checkVerifyParity(t *testing.T, s *Schedule, p sinr.Params, pf PowerFunc) {
	t.Helper()
	fast, _, ferr := s.VerifySINRFast(p, pf)
	naive, nerr := s.VerifySINRNaive(p, pf)
	if (ferr == nil) != (nerr == nil) {
		t.Fatalf("error mismatch: fast=%v naive=%v", ferr, nerr)
	}
	if ferr != nil && ferr.Error() != nerr.Error() {
		t.Fatalf("error text mismatch:\nfast:  %v\nnaive: %v", ferr, nerr)
	}
	if math.IsInf(fast, 1) || math.IsInf(naive, 1) {
		if fast != naive {
			t.Fatalf("margin mismatch: fast=%g naive=%g", fast, naive)
		}
		return
	}
	if rel := math.Abs(fast-naive) / math.Max(math.Abs(naive), 1e-300); rel > 1e-9 {
		t.Fatalf("margin mismatch: fast=%.17g naive=%.17g (rel %.3g)", fast, naive, rel)
	}
}

// TestVerifyFastMatchesNaive sweeps slot shapes: sparse feasible schedules,
// dense infeasible ones (error parity, including the reported slot and the
// %.4g margin in the message), multicolor schedules, and empty slots.
func TestVerifyFastMatchesNaive(t *testing.T) {
	p := sinr.DefaultParams()
	// Sparse: wide area, many slots → feasible.
	s, powers := randInstance(400, 25, 50000, 30, 1)
	checkVerifyParity(t, s, p, FixedPower(powers))
	// Dense: everything in few slots → some slot infeasible.
	s, powers = randInstance(300, 2, 200, 30, 2)
	checkVerifyParity(t, s, p, FixedPower(powers))
	// Multicolor with duplicate appearances and an empty slot.
	s, powers = randInstance(120, 6, 30000, 30, 3)
	s.Slots = append(s.Slots, nil, append([]int(nil), s.Slots[0]...))
	checkVerifyParity(t, s, p, FixedPower(powers))
	// Singleton slots only: +Inf margin under zero noise.
	links := []geom.Link{
		geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1}),
		geom.NewLink(2, 3, geom.Point{X: 10}, geom.Point{X: 11}),
	}
	s2, _ := FromColoring(links, []int{0, 1})
	checkVerifyParity(t, s2, p, FixedPower([]float64{1, 1}))
}

// TestVerifyPowerFuncError: a failing PowerFunc must surface with the same
// slot attribution and zero margin on both paths.
func TestVerifyPowerFuncError(t *testing.T) {
	s, powers := randInstance(60, 4, 10000, 30, 4)
	bad := func(slot int, linkIdx []int) ([]float64, error) {
		if slot == 2 {
			return nil, fmt.Errorf("boom")
		}
		return FixedPower(powers)(slot, linkIdx)
	}
	checkVerifyParity(t, s, sinr.DefaultParams(), bad)
	if _, err := s.VerifySINR(sinr.DefaultParams(), bad); err == nil {
		t.Fatal("VerifySINR swallowed the power error")
	}
}

// TestVerifyBadPower: non-positive powers error identically through both
// engines (message text included).
func TestVerifyBadPower(t *testing.T) {
	s, powers := randInstance(80, 4, 10000, 30, 5)
	powers[17] = 0
	checkVerifyParity(t, s, sinr.DefaultParams(), FixedPower(powers))
}

// TestVerifyStatsPlumbing: the fast path must report slot counts and the
// naive-pair total matching the schedule shape.
func TestVerifyStatsPlumbing(t *testing.T) {
	s, powers := randInstance(200, 8, 50000, 400, 6)
	_, st, err := s.VerifySINRFast(sinr.DefaultParams(), FixedPower(powers))
	if err != nil {
		t.Fatalf("VerifySINRFast: %v", err)
	}
	if st.Slots != 8 {
		t.Fatalf("Slots = %d, want 8", st.Slots)
	}
	wantPairs := int64(0)
	for _, slot := range s.Slots {
		m := int64(len(slot))
		wantPairs += m * (m - 1)
	}
	if st.Engine.NaivePairs != wantPairs {
		t.Fatalf("NaivePairs = %d, want %d", st.Engine.NaivePairs, wantPairs)
	}
	if st.Engine.Links != 200 {
		t.Fatalf("Links = %d, want 200", st.Engine.Links)
	}
	if st.MarginSec <= 0 {
		t.Fatal("MarginSec not measured")
	}
}

// BenchmarkVerify compares the two verification paths end-to-end on one
// schedule (18 slots over 6000 links), GOMAXPROCS-bound.
func BenchmarkVerify(b *testing.B) {
	s, powers := randInstance(6000, 18, 200000, 2000, 7)
	p := sinr.DefaultParams()
	pf := FixedPower(powers)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.VerifySINR(p, pf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.VerifySINRNaive(p, pf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
