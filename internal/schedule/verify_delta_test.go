package schedule

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/sinr"
)

// clusterInstance builds links clumped into Gaussian clusters — slot
// neighborhoods are dense, so the engine leans on refinement and exact
// fallback more than the uniform generator does.
func clusterInstance(n, k int, side float64, seed int64) (*Schedule, []float64) {
	r := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, 6)
	for i := range centers {
		centers[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	links := make([]geom.Link, n)
	powers := make([]float64, n)
	colors := make([]int, n)
	for i := range links {
		c := centers[r.Intn(len(centers))]
		s := geom.Point{X: c.X + r.NormFloat64()*side/40, Y: c.Y + r.NormFloat64()*side/40}
		d := geom.Point{X: (r.Float64() - 0.5) * side / 60, Y: (r.Float64() - 0.5) * side / 60}
		links[i] = geom.NewLink(2*i, 2*i+1, s, s.Add(d))
		powers[i] = 0.5 + r.Float64()*4
		colors[i] = i % k
	}
	s, err := FromColoring(links, colors)
	if err != nil {
		panic(err)
	}
	return s, powers
}

// annulusInstance places senders on a ring band — the far-field pyramid sees
// a hollow mass distribution, a shape the uniform and cluster generators
// never produce.
func annulusInstance(n, k int, radius float64, seed int64) (*Schedule, []float64) {
	r := rand.New(rand.NewSource(seed))
	links := make([]geom.Link, n)
	powers := make([]float64, n)
	colors := make([]int, n)
	for i := range links {
		ang := r.Float64() * 2 * math.Pi
		rad := radius * (0.8 + 0.2*r.Float64())
		s := geom.Point{X: rad * math.Cos(ang), Y: rad * math.Sin(ang)}
		d := geom.Point{X: (r.Float64() - 0.5) * radius / 100, Y: (r.Float64() - 0.5) * radius / 100}
		links[i] = geom.NewLink(2*i, 2*i+1, s, s.Add(d))
		powers[i] = 0.5 + r.Float64()*4
		colors[i] = i % k
	}
	s, err := FromColoring(links, colors)
	if err != nil {
		panic(err)
	}
	return s, powers
}

// checkDeltaParity verifies s through the warm cache and demands the exact
// same outcome as a from-scratch fast run and the naive oracle: margins to
// 1e-9 relative (bit-equal between delta and scratch-fast, whose arithmetic
// is identical), same error presence and text.
func checkDeltaParity(t *testing.T, s *Schedule, p sinr.Params, pf PowerFunc, vc *VerifyCache) {
	t.Helper()
	dm, _, derr := s.VerifySINRDelta(context.Background(), p, pf, vc)
	fm, _, ferr := s.VerifySINRFast(p, pf)
	nm, nerr := s.VerifySINRNaive(p, pf)
	if (derr == nil) != (ferr == nil) || (derr == nil) != (nerr == nil) {
		t.Fatalf("error mismatch: delta=%v fast=%v naive=%v", derr, ferr, nerr)
	}
	// Delta and scratch-fast share arithmetic: identical text. Naive sums in
	// a different order, so it is held to presence plus the numeric checks.
	if derr != nil && derr.Error() != ferr.Error() {
		t.Fatalf("error text mismatch:\ndelta: %v\nfast:  %v", derr, ferr)
	}
	if dm != fm {
		// Cached margins are the engine's own outputs for identical slot
		// content, so the delta path must be bit-identical to scratch-fast.
		t.Fatalf("delta margin %.17g != scratch fast %.17g", dm, fm)
	}
	if math.IsInf(fm, 1) != math.IsInf(nm, 1) {
		t.Fatalf("margin mismatch: fast=%g naive=%g", fm, nm)
	}
	if !math.IsInf(nm, 1) && nm != 0 {
		if rel := math.Abs(fm-nm) / math.Max(math.Abs(nm), 1e-300); rel > 1e-9 {
			t.Fatalf("margin mismatch: fast=%.17g naive=%.17g (rel %.3g)", fm, nm, rel)
		}
	}
}

// TestVerifyDeltaAfterMutations is the incremental-verification property
// test: verify a schedule once into a cache, mutate it — drop a link from a
// slot, change one power, re-partition the links as a γ-escalation rebuild
// would — and demand that re-verifying through the warm cache matches a
// from-scratch fast run bit-for-bit and the naive oracle to 1e-9, on
// uniform, cluster, and annulus geometries, feasible or not.
func TestVerifyDeltaAfterMutations(t *testing.T) {
	p := sinr.DefaultParams()
	type mk struct {
		name string
		gen  func(seed int64) (*Schedule, []float64)
	}
	makers := []mk{
		{"uniform", func(seed int64) (*Schedule, []float64) { return randInstance(300, 12, 50000, 30, seed) }},
		{"cluster", func(seed int64) (*Schedule, []float64) { return clusterInstance(300, 12, 50000, seed) }},
		{"annulus", func(seed int64) (*Schedule, []float64) { return annulusInstance(300, 12, 30000, seed) }},
		// Dense variant: infeasible slots exercise the failCut path and
		// caching of feasible slots from failed schedules.
		{"uniform-dense", func(seed int64) (*Schedule, []float64) { return randInstance(240, 2, 300, 30, seed) }},
	}
	for _, m := range makers {
		for seed := int64(1); seed <= 3; seed++ {
			s, powers := m.gen(seed)
			vc := NewVerifyCache(p)
			pf := FixedPower(powers)
			// Cold pass populates the cache (verdict itself checked by parity).
			checkDeltaParity(t, s, p, pf, vc)

			// Unchanged re-verify: every slot must come from the cache.
			_, st, _ := s.VerifySINRDelta(context.Background(), p, pf, vc)
			if st.ReusedSlots != st.Slots || st.Slots == 0 {
				// An infeasible schedule stops at the first bad slot, so only
				// the examined prefix is reused; demand full reuse only when
				// the schedule verified cleanly.
				if _, _, err := s.VerifySINRFast(p, pf); err == nil {
					t.Fatalf("%s/%d: unchanged re-verify reused %d of %d slots",
						m.name, seed, st.ReusedSlots, st.Slots)
				}
			}

			// Mutation 1: drop a link from the largest slot.
			big := 0
			for k := range s.Slots {
				if len(s.Slots[k]) > len(s.Slots[big]) {
					big = k
				}
			}
			drop := *s
			drop.Slots = append([][]int(nil), s.Slots...)
			drop.Slots[big] = append([]int(nil), s.Slots[big][1:]...)
			checkDeltaParity(t, &drop, p, pf, vc)

			// Mutation 2: change one power — the touched slots re-verify,
			// everything else reuses.
			powers2 := append([]float64(nil), powers...)
			powers2[7] *= 1.25
			checkDeltaParity(t, s, p, FixedPower(powers2), vc)

			// Mutation 3: re-partition half the links into different slots,
			// as a γ-escalation rebuild would; the unchanged slots still hit.
			colors := make([]int, len(s.Links))
			for i := range colors {
				colors[i] = i % 12
				if i%2 == 0 {
					colors[i] = (i + 5) % 12
				}
			}
			if reb, err := FromColoring(s.Links, colors); err == nil {
				checkDeltaParity(t, reb, p, pf, vc)
			}
		}
	}
}

// TestVerifyDeltaParamsMismatch: a cache bound to different SINR params must
// be ignored (full recompute, correct answer, no reuse reported).
func TestVerifyDeltaParamsMismatch(t *testing.T) {
	p := sinr.DefaultParams()
	s, powers := randInstance(200, 8, 50000, 400, 11)
	pf := FixedPower(powers)
	other := p
	other.Beta *= 2
	vc := NewVerifyCache(other)
	m1, st, err := s.VerifySINRDelta(context.Background(), p, pf, vc)
	if err != nil {
		t.Fatalf("VerifySINRDelta: %v", err)
	}
	if st.ReusedSlots != 0 || vc.Len() != 0 {
		t.Fatalf("mismatched cache used: reused=%d len=%d", st.ReusedSlots, vc.Len())
	}
	m2, _, _ := s.VerifySINRFast(p, pf)
	if m1 != m2 {
		t.Fatalf("margin %g != scratch %g", m1, m2)
	}
}

// TestVerifyCtxCancelDeterministic pins the pool to one worker and cancels
// from inside the PowerFunc, so the set of examined slots is exactly the
// slot-order prefix up to the cancelling slot. The partial stats must equal
// the slot-order sum over that prefix — the documented determinism contract
// of the cancelled path — and repeat identically across runs.
func TestVerifyCtxCancelDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	s, powers := randInstance(240, 12, 50000, 400, 13)
	p := sinr.DefaultParams()
	// The instance must be feasible: an infeasible slot before cancelAt would
	// move failCut and skip the later slots, so the cancel would never fire.
	if _, _, err := s.VerifySINRFast(p, FixedPower(powers)); err != nil {
		t.Fatalf("precondition: instance not feasible: %v", err)
	}
	const cancelAt = 7
	run := func() (VerifyStats, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		calls := 0
		pf := func(slot int, linkIdx []int) ([]float64, error) {
			calls++
			if calls == cancelAt {
				cancel()
			}
			return FixedPower(powers)(slot, linkIdx)
		}
		m, st, err := s.VerifySINRDelta(ctx, p, pf, nil)
		if m != 0 {
			t.Fatalf("cancelled verify returned a margin: %g", m)
		}
		return st, err
	}
	st1, err1 := run()
	if !errors.Is(err1, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err1)
	}
	// With one worker and block size 1, slots are dispatched in slot order;
	// the cancel fires inside slot cancelAt-1's PowerFunc, which still
	// completes, and the fan-out stops at the next block boundary.
	if st1.Slots != cancelAt {
		t.Fatalf("partial stats cover %d slots, want %d", st1.Slots, cancelAt)
	}
	if st1.Engine.Links == 0 || st1.MarginSec <= 0 {
		t.Fatalf("partial stats missing engine work: %+v", st1)
	}
	st2, err2 := run()
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err2)
	}
	// Timing fields are wall-clock; everything else must repeat exactly.
	if st1.Slots != st2.Slots || st1.ReusedSlots != st2.ReusedSlots || st1.Engine != st2.Engine {
		t.Fatalf("cancelled stats not deterministic:\nfirst:  %+v\nsecond: %+v", st1, st2)
	}
}

// FuzzVerifyDelta fuzzes the incremental path against both the from-scratch
// fast engine and the naive oracle, at the default params and at α=2.05 —
// the near-pathological path-loss regime where far-field bounds are at
// their weakest. The seed corpus mirrors the conflict package's known-hard
// shape: a hub of near-zero links next to far-away long ones.
func FuzzVerifyDelta(f *testing.F) {
	f.Add([]byte{12, 0, 0, 1, 0, 0, 100, 100, 5, 252, 16}, uint8(3), false)
	f.Add([]byte{24, 3, 3, 2, 1, 8, 250, 250, 30, 30, 12}, uint8(2), true)
	pathological := []byte{16}
	for i := 0; i < 8; i++ {
		pathological = append(pathological, byte(i%3), 0, 1, 0, 0)
	}
	for i := 0; i < 8; i++ {
		pathological = append(pathological, 100, 100, byte(2+i), 253, 16)
	}
	f.Add(pathological, uint8(4), true)
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8, alpha205 bool) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%24 + 2
		k := int(kRaw)%6 + 1
		links := make([]geom.Link, 0, n)
		powers := make([]float64, 0, n)
		colors := make([]int, 0, n)
		for i := 0; i < n; i++ {
			b := data[1+5*i:]
			if len(b) < 5 {
				break
			}
			sx, sy := float64(int8(b[0])), float64(int8(b[1]))
			scale := math.Ldexp(1, int(b[4]%17)-8) / 8
			s := geom.Point{X: sx, Y: sy}
			r := geom.Point{X: sx + float64(int8(b[2]))*scale, Y: sy + float64(int8(b[3]))*scale}
			links = append(links, geom.NewLink(2*i, 2*i+1, s, r))
			powers = append(powers, 0.25+float64(b[4])/64)
			colors = append(colors, i%k)
		}
		if len(links) < 2 {
			return
		}
		s, err := FromColoring(links, colors)
		if err != nil {
			return
		}
		p := sinr.DefaultParams()
		if alpha205 {
			p.Alpha = 2.05
		}
		pf := FixedPower(powers)
		vc := NewVerifyCache(p)
		for pass := 0; pass < 2; pass++ { // cold, then fully warm
			dm, _, derr := s.VerifySINRDelta(context.Background(), p, pf, vc)
			fm, _, ferr := s.VerifySINRFast(p, pf)
			nm, nerr := s.VerifySINRNaive(p, pf)
			if (derr == nil) != (ferr == nil) || (derr == nil) != (nerr == nil) {
				t.Fatalf("pass %d error mismatch: delta=%v fast=%v naive=%v", pass, derr, ferr, nerr)
			}
			// Delta and scratch-fast share arithmetic, so their text must be
			// identical. Naive accumulates in a different order; its margin can
			// land on the other side of the %.4g rounding boundary in the error
			// text, so it is held to presence plus the numeric check below.
			if derr != nil && derr.Error() != ferr.Error() {
				t.Fatalf("pass %d error text mismatch:\ndelta: %v\nfast:  %v", pass, derr, ferr)
			}
			if dm != fm {
				t.Fatalf("pass %d delta margin %.17g != fast %.17g", pass, dm, fm)
			}
			if math.IsInf(fm, 1) != math.IsInf(nm, 1) {
				t.Fatalf("pass %d margin mismatch: fast=%g naive=%g", pass, fm, nm)
			}
			if !math.IsInf(nm, 1) && nm != 0 {
				if rel := math.Abs(fm-nm) / math.Max(math.Abs(nm), 1e-300); rel > 1e-9 {
					t.Fatalf("pass %d margin mismatch: fast=%.17g naive=%.17g", pass, fm, nm)
				}
			}
		}
	})
}

// BenchmarkVerifyIncremental measures the second γ-escalation-style pass:
// cold is a from-scratch verification, warm re-verifies the identical
// schedule through the populated cache (pure content-hash lookups).
func BenchmarkVerifyIncremental(b *testing.B) {
	s, powers := randInstance(6000, 18, 200000, 2000, 7)
	p := sinr.DefaultParams()
	pf := FixedPower(powers)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vc := NewVerifyCache(p)
			if _, _, err := s.VerifySINRDelta(context.Background(), p, pf, vc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		vc := NewVerifyCache(p)
		if _, _, err := s.VerifySINRDelta(context.Background(), p, pf, vc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, st, err := s.VerifySINRDelta(context.Background(), p, pf, vc)
			if err != nil {
				b.Fatal(err)
			}
			if st.ReusedSlots != st.Slots {
				b.Fatalf("warm pass recomputed: %d of %d reused", st.ReusedSlots, st.Slots)
			}
			_ = m
		}
	})
}
