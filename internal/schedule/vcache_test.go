package schedule

import (
	"context"
	"testing"

	"aggrate/internal/sinr"
)

// TestVerifyCacheGridTier: the cache's second tier keeps built slot grids
// keyed by membership alone. Dropping the margins (the escalation-retry
// shape: same membership, new powers) must re-verify every slot with the
// grid build answered from the cache, bit-identical to a cold run.
func TestVerifyCacheGridTier(t *testing.T) {
	// k=4 slots of ~500 links each: well above the exact-path cutoff, so
	// every slot builds a grid worth retaining.
	s, powers := randInstance(2000, 4, 200000, 2000, 21)
	p := sinr.DefaultParams()
	pf := FixedPower(powers)
	vc := NewVerifyCache(p)

	cold, st, err := s.VerifySINRDelta(context.Background(), p, pf, vc)
	if err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	if st.ReusedGrids != 0 {
		t.Fatalf("cold verify reported %d reused grids", st.ReusedGrids)
	}
	if vc.Len() != len(s.Slots) || vc.GridLen() != len(s.Slots) {
		t.Fatalf("cold cache: %d margins, %d grids, want %d of each",
			vc.Len(), vc.GridLen(), len(s.Slots))
	}
	if vc.Bytes() <= 0 {
		t.Fatalf("cache reports %d bytes after retaining grids", vc.Bytes())
	}

	vc.InvalidateMargins()
	if vc.Len() != 0 || vc.GridLen() != len(s.Slots) {
		t.Fatalf("after InvalidateMargins: %d margins, %d grids", vc.Len(), vc.GridLen())
	}
	warm, st, err := s.VerifySINRDelta(context.Background(), p, pf, vc)
	if err != nil {
		t.Fatalf("grid-warm verify: %v", err)
	}
	if warm != cold {
		t.Fatalf("grid-warm margin %.17g != cold %.17g", warm, cold)
	}
	if st.ReusedSlots != 0 || st.ReusedGrids != st.Slots || st.Slots == 0 {
		t.Fatalf("grid-warm stats: reused_slots=%d reused_grids=%d slots=%d",
			st.ReusedSlots, st.ReusedGrids, st.Slots)
	}

	// Changed powers, same membership: margin misses, grid still hits.
	powers2 := append([]float64(nil), powers...)
	for i := range powers2 {
		powers2[i] *= 1.125
	}
	pf2 := FixedPower(powers2)
	m2, st, err := s.VerifySINRDelta(context.Background(), p, pf2, vc)
	if err != nil {
		t.Fatalf("power-changed verify: %v", err)
	}
	if st.ReusedGrids != st.Slots {
		t.Fatalf("power-changed pass reused %d of %d grids", st.ReusedGrids, st.Slots)
	}
	f2, _, err := s.VerifySINRFast(p, pf2)
	if err != nil {
		t.Fatalf("scratch fast: %v", err)
	}
	if m2 != f2 {
		t.Fatalf("power-changed grid-warm margin %.17g != scratch %.17g", m2, f2)
	}
}

// TestVerifyCacheByteBudget: the cache grows to its contents on a generous
// budget and evicts LRU entries down to the budget on a tight one, without
// ever affecting verification results.
func TestVerifyCacheByteBudget(t *testing.T) {
	s, powers := randInstance(2000, 8, 200000, 2000, 22)
	p := sinr.DefaultParams()
	pf := FixedPower(powers)

	big := NewVerifyCacheBytes(p, 1<<30)
	cold, _, err := s.VerifySINRDelta(context.Background(), p, pf, big)
	if err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	full := big.Bytes()
	if full <= 0 || big.GridLen() != len(s.Slots) {
		t.Fatalf("generous budget: %d bytes, %d grids", full, big.GridLen())
	}

	// A budget sized for roughly half the retained state forces eviction.
	budget := full / 2
	small := NewVerifyCacheBytes(p, budget)
	m, _, err := s.VerifySINRDelta(context.Background(), p, pf, small)
	if err != nil {
		t.Fatalf("tight-budget verify: %v", err)
	}
	if m != cold {
		t.Fatalf("tight-budget margin %.17g != cold %.17g", m, cold)
	}
	if small.Bytes() > budget {
		t.Fatalf("cache holds %d bytes over its %d budget", small.Bytes(), budget)
	}
	if small.GridLen() >= len(s.Slots) {
		t.Fatalf("tight budget evicted nothing: %d grids of %d slots",
			small.GridLen(), len(s.Slots))
	}

	// Eviction only sheds reuse, never correctness: a re-verify through the
	// partially-evicted cache still matches bit for bit.
	m2, _, err := s.VerifySINRDelta(context.Background(), p, pf, small)
	if err != nil {
		t.Fatalf("re-verify through evicted cache: %v", err)
	}
	if m2 != cold {
		t.Fatalf("evicted-cache margin %.17g != cold %.17g", m2, cold)
	}

	// Degenerate budget: a single retained grid may exceed it; the cache
	// must keep serving (head entry is never evicted) and stay tiny.
	tiny := NewVerifyCacheBytes(p, 1)
	if m3, _, err := s.VerifySINRDelta(context.Background(), p, pf, tiny); err != nil || m3 != cold {
		t.Fatalf("tiny-budget verify: m=%v err=%v", m3, err)
	}
	if tiny.GridLen() > 1 || tiny.Len() > 1 {
		t.Fatalf("tiny budget retained %d grids, %d margins", tiny.GridLen(), tiny.Len())
	}
}
