// Package schedule turns colorings into TDMA aggregation schedules and
// defines the rate semantics of Sec. 2.
//
// A Schedule is a periodic sequence of slots; slot k lists the links that
// transmit in time slots k, k+Period, k+2·Period, …. A coloring schedule has
// every link in exactly one slot, so its rate is 1/Period. Multicoloring
// schedules (Sec. 4's 5-cycle example) may place a link in several slots,
// achieving rate (occurrences)/Period, which can beat any proper coloring.
package schedule

import (
	"fmt"
	"math"

	"aggrate/internal/geom"
	"aggrate/internal/sinr"
)

// Schedule is a periodic TDMA schedule over an indexed link set.
type Schedule struct {
	// Links is the scheduled link set.
	Links []geom.Link
	// Slots[k] lists link indices transmitting in slot k of each period.
	Slots [][]int
}

// FromColoring builds a coloring schedule: slot c carries exactly the links
// colored c. It returns an error if any link is uncolored or a color is out
// of the dense palette [0, numColors).
func FromColoring(links []geom.Link, colors []int) (*Schedule, error) {
	if len(colors) != len(links) {
		return nil, fmt.Errorf("schedule: %d colors for %d links", len(colors), len(links))
	}
	numColors := 0
	for i, c := range colors {
		if c < 0 {
			return nil, fmt.Errorf("schedule: link %d uncolored", i)
		}
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	s := &Schedule{
		Links: append([]geom.Link(nil), links...),
		Slots: make([][]int, numColors),
	}
	// Counting sort into one flat backing array: two sequential passes over
	// colors instead of per-slot append growth, and slot k keeps the same
	// index-ascending order appends would have produced.
	off := make([]int32, numColors+1)
	for _, c := range colors {
		off[c+1]++
	}
	for c := 0; c < numColors; c++ {
		off[c+1] += off[c]
	}
	flat := make([]int, len(colors))
	fill := append([]int32(nil), off[:numColors]...)
	for i, c := range colors {
		flat[fill[c]] = i
		fill[c]++
	}
	for c := 0; c < numColors; c++ {
		lo, hi := off[c], off[c+1]
		if lo < hi { // an unused color keeps its nil slot, as appends would
			s.Slots[c] = flat[lo:hi:hi]
		}
	}
	return s, nil
}

// New builds a schedule directly from slot contents, copying the inputs.
func New(links []geom.Link, slots [][]int) *Schedule {
	s := &Schedule{
		Links: append([]geom.Link(nil), links...),
		Slots: make([][]int, len(slots)),
	}
	for k, slot := range slots {
		s.Slots[k] = append([]int(nil), slot...)
	}
	return s
}

// Period returns the schedule length (number of slots per period).
func (s *Schedule) Period() int { return len(s.Slots) }

// Occurrences returns how many slots of the period each link appears in,
// in one pass over the slots.
func (s *Schedule) Occurrences() []int {
	occ := make([]int, len(s.Links))
	for _, slot := range s.Slots {
		for _, i := range slot {
			occ[i]++
		}
	}
	return occ
}

// Rate returns the aggregation rate of the schedule: the minimum over links
// of occurrences/Period (Sec. 2). An empty or zero-period schedule has rate
// 0; a schedule missing some link has rate 0. The counts come from a single
// Occurrences pass over the slots.
func (s *Schedule) Rate() float64 {
	if s.Period() == 0 || len(s.Links) == 0 {
		return 0
	}
	occ := s.Occurrences()
	minOcc := occ[0]
	for _, o := range occ[1:] {
		if o < minOcc {
			minOcc = o
		}
	}
	return float64(minOcc) / float64(s.Period())
}

// Validate checks structural sanity: every slot references valid link
// indices with no duplicates inside a slot, and every link appears at least
// once per period. One []bool seen-buffer is reused across slots (reset by
// walking the slot again) instead of allocating a map per slot.
func (s *Schedule) Validate() error {
	occ := make([]int, len(s.Links))
	seen := make([]bool, len(s.Links))
	for k, slot := range s.Slots {
		for _, i := range slot {
			if i < 0 || i >= len(s.Links) {
				return fmt.Errorf("schedule: slot %d references link %d out of range", k, i)
			}
			if seen[i] {
				return fmt.Errorf("schedule: slot %d lists link %d twice", k, i)
			}
			seen[i] = true
			occ[i]++
		}
		for _, i := range slot {
			seen[i] = false
		}
	}
	for i, o := range occ {
		if o == 0 {
			return fmt.Errorf("schedule: link %d never scheduled", i)
		}
	}
	return nil
}

// PowerFunc supplies, for a slot index and the link indices transmitting in
// it, the transmit power of each listed link (same order). Global power
// control solves per slot; oblivious schemes return a fixed per-link value.
type PowerFunc func(slot int, linkIdx []int) ([]float64, error)

// FixedPower adapts a single per-link power vector (an oblivious
// assignment) to a PowerFunc.
func FixedPower(perLink []float64) PowerFunc {
	return func(_ int, linkIdx []int) ([]float64, error) {
		out := make([]float64, len(linkIdx))
		for k, i := range linkIdx {
			if i < 0 || i >= len(perLink) {
				return nil, fmt.Errorf("schedule: link index %d outside power vector", i)
			}
			out[k] = perLink[i]
		}
		return out, nil
	}
}

// VerifySINRNaive checks every slot by the exact O(m²) pairwise evaluation
// (sinr.Params.Margin), sequentially. It is retained as the oracle for the
// fast engine behind VerifySINR (see verify.go): both return the same
// margins (up to floating-point accumulation order) and identical error
// conditions and messages.
func (s *Schedule) VerifySINRNaive(p sinr.Params, pf PowerFunc) (float64, error) {
	worst := math.Inf(1)
	for k, slot := range s.Slots {
		if len(slot) == 0 {
			continue
		}
		links := make([]geom.Link, len(slot))
		for t, i := range slot {
			links[t] = s.Links[i]
		}
		powers, err := pf(k, slot)
		if err != nil {
			return 0, fmt.Errorf("schedule: slot %d power assignment: %w", k, err)
		}
		m, err := p.Margin(links, powers)
		if err != nil {
			return 0, fmt.Errorf("schedule: slot %d: %w", k, err)
		}
		if m < worst {
			worst = m
		}
		if m < 1 {
			return worst, fmt.Errorf("schedule: slot %d infeasible (margin %.4g < 1)", k, m)
		}
	}
	return worst, nil
}

// Concat returns the schedule that plays a's period then b's period (over
// the same link set). Useful for composing per-length-class schedules.
func Concat(a, b *Schedule) (*Schedule, error) {
	if len(a.Links) != len(b.Links) {
		return nil, fmt.Errorf("schedule: cannot concat over different link sets (%d vs %d links)",
			len(a.Links), len(b.Links))
	}
	out := New(a.Links, a.Slots)
	for _, slot := range b.Slots {
		out.Slots = append(out.Slots, append([]int(nil), slot...))
	}
	return out, nil
}
