package schedule

import (
	"math"
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/sinr"
)

func pairLinks() []geom.Link {
	return []geom.Link{
		geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1}),
		geom.NewLink(2, 3, geom.Point{X: 10}, geom.Point{X: 11}),
	}
}

func TestFromColoring(t *testing.T) {
	links := pairLinks()
	s, err := FromColoring(links, []int{0, 1})
	if err != nil {
		t.Fatalf("FromColoring: %v", err)
	}
	if s.Period() != 2 || s.Rate() != 0.5 {
		t.Fatalf("period=%d rate=%g, want 2 and 0.5", s.Period(), s.Rate())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, err := FromColoring(links, []int{0, -1}); err == nil {
		t.Fatal("FromColoring accepted an uncolored link")
	}
	if _, err := FromColoring(links, []int{0}); err == nil {
		t.Fatal("FromColoring accepted a short color slice")
	}
}

// TestMulticolorRate: a link appearing in several slots raises the rate —
// the Sec. 4 mechanism that beats any proper coloring on the 5-cycle.
func TestMulticolorRate(t *testing.T) {
	links := pairLinks()
	s := New(links, [][]int{{0, 1}, {0}, {1}})
	occ := s.Occurrences()
	if occ[0] != 2 || occ[1] != 2 {
		t.Fatalf("Occurrences = %v, want [2 2]", occ)
	}
	if got, want := s.Rate(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Rate = %g, want %g", got, want)
	}
}

func TestValidateRejects(t *testing.T) {
	links := pairLinks()
	if err := New(links, [][]int{{0, 0}, {1}}).Validate(); err == nil {
		t.Fatal("Validate accepted a duplicate within a slot")
	}
	if err := New(links, [][]int{{0}}).Validate(); err == nil {
		t.Fatal("Validate accepted a never-scheduled link")
	}
	if err := New(links, [][]int{{0}, {5}}).Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-range index")
	}
}

func TestVerifySINR(t *testing.T) {
	p := sinr.Params{Alpha: 3, Beta: 2, Noise: 0, Epsilon: 0}
	links := pairLinks()
	// Separate slots: singletons, infinite margin, feasible.
	s, _ := FromColoring(links, []int{0, 1})
	m, err := s.VerifySINR(p, FixedPower([]float64{1, 1}))
	if err != nil || !math.IsInf(m, 1) {
		t.Fatalf("singleton slots: margin=%v err=%v, want +Inf, nil", m, err)
	}
	// Same slot: the hand-computed margin 364.5 from the sinr tests.
	s2, _ := FromColoring(links, []int{0, 0})
	m, err = s2.VerifySINR(p, FixedPower([]float64{1, 1}))
	if err != nil || math.Abs(m-364.5) > 1e-9 {
		t.Fatalf("joint slot: margin=%v err=%v, want 364.5, nil", m, err)
	}
	// Infeasible joint slot must be reported.
	close2 := []geom.Link{
		geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1}),
		geom.NewLink(2, 3, geom.Point{X: 2}, geom.Point{X: 3}),
	}
	s3, _ := FromColoring(close2, []int{0, 0})
	if _, err := s3.VerifySINR(p, FixedPower([]float64{1, 1})); err == nil {
		t.Fatal("VerifySINR accepted an infeasible slot")
	}
}

func TestConcat(t *testing.T) {
	links := pairLinks()
	a, _ := FromColoring(links, []int{0, 0})
	b, _ := FromColoring(links, []int{0, 1})
	c, err := Concat(a, b)
	if err != nil || c.Period() != 3 {
		t.Fatalf("Concat: period=%d err=%v, want 3, nil", c.Period(), err)
	}
	if occ := c.Occurrences(); occ[0] != 2 || occ[1] != 2 {
		t.Fatalf("Concat occurrences = %v, want [2 2]", occ)
	}
	if _, err := Concat(a, New(links[:1], [][]int{{0}})); err == nil {
		t.Fatal("Concat accepted mismatched link sets")
	}
}
