// SINR verification engines. VerifySINR routes through the fast engine
// (internal/sinr.Engine: cached gains, grid-aggregated far-field intervals,
// exact fallback) with slots verified across the shared internal/par worker
// pool; VerifySINRNaive in schedule.go retains the exact O(m²)-per-slot
// oracle. Both return identical margins (up to floating-point accumulation
// order, ≲1e-12 relative) and identical error conditions, messages, and
// slot ordering: the fast path evaluates slots in parallel but reduces the
// results in slot order, reproducing the naive path's first-infeasible-slot
// semantics exactly.

package schedule

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"aggrate/internal/par"
	"aggrate/internal/sinr"
)

// Verification engine names, as accepted by the experiment layer and the
// CLI --verify-engine flag.
const (
	// EngineFast is the near-linear engine (the default).
	EngineFast = "fast"
	// EngineNaive is the exact O(m²)-per-slot reference path.
	EngineNaive = "naive"
)

// Engines lists the verification engines in canonical order.
func Engines() []string { return []string{EngineFast, EngineNaive} }

// VerifyStats reports what a fast verification run did: the engine's work
// counters plus the wall-clock split between power assignment (where global
// power control pays its per-slot Solve) and margin computation.
type VerifyStats struct {
	// Slots counts the non-empty slots examined.
	Slots int
	// ReusedSlots counts slots whose margin came from a VerifyCache hit
	// (identical membership and powers as a previously verified slot), so
	// no engine work was performed for them.
	ReusedSlots int
	// ReusedGrids counts slots whose margin was recomputed but whose built
	// sender grid + pyramid came from the cache (identical membership as a
	// previously verified slot), so the engine skipped buildGrid. Margin
	// cache hits do not count here — a reused margin needs no grid at all.
	ReusedGrids int
	// Engine aggregates the fast engine's work counters over the slots
	// actually computed (cache hits contribute nothing).
	Engine sinr.EngineStats
	// PowerSec is the wall-clock spent in the PowerFunc, summed over slots.
	PowerSec float64
	// MarginSec is the wall-clock spent computing slot margins, summed over
	// slots. Both sums add per-slot times, so under parallel verification
	// they can exceed the elapsed wall-clock by up to the worker count.
	MarginSec float64
}

// slotKey is the content hash of one slot: its size plus two independent
// order-insensitive 64-bit mixes over the members' (global link index,
// power bits) pairs. Slot membership is a set and the experiment layer's
// power functions are content-determined, so two slots with equal keys are
// (collision aside, ~2⁻¹²⁸) the same verification problem over the same
// link set.
type slotKey struct {
	sum, xor uint64
	m        int32
}

// mix64 is the splitmix64 finalizer, a cheap full-avalanche 64-bit mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashSlot returns the order-insensitive content key of (slot, powers).
// Commutative accumulation (sum and rotated xor of per-member mixes) makes
// the key independent of member order, though every scheduler strategy
// emits slots in increasing link-index order anyway (the stable-slot-order
// contract tested in internal/scheduler).
func hashSlot(slot []int, powers []float64) slotKey {
	var k slotKey
	k.m = int32(len(slot))
	for i, g := range slot {
		h := mix64(uint64(g)*0x9e3779b97f4a7c15 ^ math.Float64bits(powers[i]))
		k.sum += h
		k.xor ^= h<<(h&63) | h>>(64-h&63)
	}
	return k
}

// hashSlotMembers returns the order-insensitive membership key of a slot:
// hashSlot with the power bits left out. Two slots with equal membership
// keys cover the same link set, possibly under different powers — exactly
// the situation where the built sender grid (geometry-determined structure,
// power-determined masses) can be refreshed instead of rebuilt.
func hashSlotMembers(slot []int) slotKey {
	var k slotKey
	k.m = int32(len(slot))
	for _, g := range slot {
		h := mix64(uint64(g) * 0x9e3779b97f4a7c15)
		k.sum += h
		k.xor ^= h<<(h&63) | h>>(64-h&63)
	}
	return k
}

// DefaultVerifyCacheBytes is the byte budget NewVerifyCache installs:
// generous enough to hold the margins plus the built slot grids of an
// n=1e6 schedule, small enough that a long-lived service process cannot
// grow without bound across escalation chains.
const DefaultVerifyCacheBytes = 256 << 20

// vcEntry is one cache line: either a margin (keyed by slot content,
// membership + powers) or a built slot grid (keyed by membership alone).
// Entries of both kinds share a single LRU list and byte budget.
type vcEntry struct {
	key        slotKey
	grid       bool // which map owns the entry
	margin     float64
	g          *sinr.SlotGrid
	size       int64
	prev, next *vcEntry
}

// VerifyCache memoizes slot verification work by content key, enabling the
// incremental VerifySINRDelta path: re-verifying a schedule that shares
// slots with a previously verified one (γ-escalation retries, the service's
// re-verify hook, delta re-checks after slot edits) recomputes only the
// slots whose membership or powers actually changed. It holds two tiers:
// exact margins keyed by full slot content (membership + powers), and built
// sender grids + pyramids keyed by membership alone — so a slot that kept
// its links but changed powers skips the grid build and only refreshes the
// masses. Both tiers share one LRU list bounded by a byte budget; margins
// are ~100 bytes each, grids carry their measured SizeBytes, and the
// least-recently-used entries of either kind are evicted once the budget
// is exceeded.
//
// A cache is only meaningful across verifications over the same link set
// and SINR params it was created for; VerifySINRDelta falls back to a full
// recompute (never a wrong answer) when the params disagree. The caller
// must not reuse a cache across different link sets — keys are global link
// indices, so equal keys would alias different geometry. Cached grids are
// immutable: the engine refreshes into a fresh grid rather than mutating a
// cached one, so read-only concurrent lookups during a fan-out are safe.
type VerifyCache struct {
	p       sinr.Params
	budget  int64
	used    int64
	margins map[slotKey]*vcEntry
	grids   map[slotKey]*vcEntry
	// LRU list: head is most recently used, tail is next to evict.
	head, tail *vcEntry
}

// vcMarginSize approximates the resident cost of one margin entry (struct,
// map bucket share, pointer overhead) against the byte budget.
const vcMarginSize = 112

// NewVerifyCache returns an empty cache bound to the given params, with the
// default byte budget.
func NewVerifyCache(p sinr.Params) *VerifyCache {
	return NewVerifyCacheBytes(p, DefaultVerifyCacheBytes)
}

// NewVerifyCacheBytes returns an empty cache bound to the given params with
// an explicit byte budget. A budget ≤ 0 disables grid retention and keeps
// only the margin most recently inserted — still correct, just cold.
func NewVerifyCacheBytes(p sinr.Params, budget int64) *VerifyCache {
	return &VerifyCache{
		p:       p,
		budget:  budget,
		margins: make(map[slotKey]*vcEntry),
		grids:   make(map[slotKey]*vcEntry),
	}
}

// Len reports the number of cached slot margins.
func (vc *VerifyCache) Len() int {
	if vc == nil {
		return 0
	}
	return len(vc.margins)
}

// GridLen reports the number of cached built slot grids.
func (vc *VerifyCache) GridLen() int {
	if vc == nil {
		return 0
	}
	return len(vc.grids)
}

// Bytes reports the cache's current charge against its byte budget.
func (vc *VerifyCache) Bytes() int64 {
	if vc == nil {
		return 0
	}
	return vc.used
}

// InvalidateMargins drops every cached margin while keeping the built slot
// grids. A following verification of the same schedule recomputes every
// margin with the grid-build stage skipped — the grid-warm path that
// escalation retries with changed powers take per slot, exposed whole for
// re-verification sweeps and the warm-verify benchmark.
func (vc *VerifyCache) InvalidateMargins() {
	if vc == nil {
		return
	}
	for k, e := range vc.margins {
		vc.unlink(e)
		vc.used -= e.size
		delete(vc.margins, k)
	}
}

// unlink removes e from the LRU list.
func (vc *VerifyCache) unlink(e *vcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		vc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		vc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (vc *VerifyCache) pushFront(e *vcEntry) {
	e.prev, e.next = nil, vc.head
	if vc.head != nil {
		vc.head.prev = e
	}
	vc.head = e
	if vc.tail == nil {
		vc.tail = e
	}
}

// touch moves an existing entry to the front of the LRU list.
func (vc *VerifyCache) touch(e *vcEntry) {
	if vc.head == e {
		return
	}
	vc.unlink(e)
	vc.pushFront(e)
}

// insertMargin adds (or refreshes) a margin entry and evicts past budget.
func (vc *VerifyCache) insertMargin(key slotKey, margin float64) {
	if e, ok := vc.margins[key]; ok {
		e.margin = margin
		vc.touch(e)
		return
	}
	e := &vcEntry{key: key, margin: margin, size: vcMarginSize}
	vc.margins[key] = e
	vc.used += e.size
	vc.pushFront(e)
	vc.evict()
}

// insertGrid adds (or replaces) a grid entry and evicts past budget. g must
// not be mutated after insertion.
func (vc *VerifyCache) insertGrid(key slotKey, g *sinr.SlotGrid) {
	size := g.SizeBytes() + vcMarginSize
	if e, ok := vc.grids[key]; ok {
		vc.used += size - e.size
		e.g, e.size = g, size
		vc.touch(e)
		vc.evict()
		return
	}
	e := &vcEntry{key: key, grid: true, g: g, size: size}
	vc.grids[key] = e
	vc.used += size
	vc.pushFront(e)
	vc.evict()
}

// evict drops least-recently-used entries until the budget is respected,
// always keeping the most recent entry so a single oversized grid still
// serves the verification that built it.
func (vc *VerifyCache) evict() {
	for vc.used > vc.budget && vc.tail != nil && vc.tail != vc.head {
		e := vc.tail
		vc.unlink(e)
		vc.used -= e.size
		if e.grid {
			delete(vc.grids, e.key)
		} else {
			delete(vc.margins, e.key)
		}
	}
}

// VerifySINR checks that every slot of the schedule is SINR-feasible under
// the powers provided by pf, via the fast engine. It returns the worst slot
// margin observed (min over slots of min over links of SINR/β) and an error
// naming the first infeasible slot, if any — the same contract, margins, and
// error messages as VerifySINRNaive. pf must be safe for concurrent use;
// FixedPower and the experiment layer's power functions are.
func (s *Schedule) VerifySINR(p sinr.Params, pf PowerFunc) (float64, error) {
	m, _, err := s.VerifySINRFast(p, pf)
	return m, err
}

// VerifySINRFast is VerifySINR returning the engine diagnostics alongside.
func (s *Schedule) VerifySINRFast(p sinr.Params, pf PowerFunc) (float64, VerifyStats, error) {
	return s.VerifySINRCtx(context.Background(), p, pf)
}

// VerifySINRCtx is VerifySINRFast with cancellation: the per-slot fan-out
// checks ctx at slot boundaries, so a cancel stops verification within one
// slot of work per active worker. On cancellation it returns
// (0, partial stats, ctx.Err()) — never a feasibility verdict, since an
// unknown set of slots went unexamined.
func (s *Schedule) VerifySINRCtx(ctx context.Context, p sinr.Params, pf PowerFunc) (float64, VerifyStats, error) {
	return s.VerifySINRDelta(ctx, p, pf, nil)
}

// VerifySINRDelta is VerifySINRCtx with incremental re-verification: slots
// whose content key (membership + powers) is present in vc reuse the cached
// exact margin and skip the engine entirely; freshly computed margins are
// added to vc afterwards (including on infeasible schedules, so the next
// γ-escalation attempt reuses every slot it kept). A nil vc — or one bound
// to different params — degrades to a full recompute. Margins, verdicts,
// error messages, and stats determinism are identical with and without a
// cache, because cached values are the engine's own exact margins for
// identical slot content. vc must not be shared between concurrent
// verifications.
func (s *Schedule) VerifySINRDelta(ctx context.Context, p sinr.Params, pf PowerFunc, vc *VerifyCache) (float64, VerifyStats, error) {
	var st VerifyStats
	if vc != nil && vc.p != p {
		vc = nil
	}
	eng := sinr.NewEngine(p, s.Links)
	type slotOut struct {
		margin              float64
		stats               sinr.EngineStats
		powerSec, marginSec float64
		pfErr, mErr         error
		key, gkey           slotKey
		// grid is the built (or refreshed) slot grid the engine retained for
		// this slot, to be inserted into the cache after the fan-out.
		grid *sinr.SlotGrid
		// ran marks slots a worker actually examined — the cancelled-path
		// stats must not count slots that were never dispatched.
		ran bool
		// reused marks margin cache hits (no engine work, nothing to
		// re-insert); gridReused marks grid cache hits under a margin miss.
		reused, gridReused bool
	}
	outs := make([]slotOut, len(s.Slots))
	// failCut is the lowest slot index so far found infeasible (or errored).
	// The naive oracle stops at the first bad slot, and the reduction below
	// replicates that — slots beyond the cut can never influence the result,
	// so workers skip them. On an infeasible schedule (every γ-escalation
	// attempt but the last) this turns a full verification pass into one that
	// stops shortly after the first bad slot.
	var failCut atomic.Int64
	failCut.Store(int64(len(s.Slots)))
	// Block size 1: slot sizes are heavily skewed (first-fit slot 0 is the
	// largest), so fine-grained stealing is what balances the pool.
	err := par.ForBlocksCtx(ctx, len(s.Slots), 1, func(next func() (int, int, bool)) {
		sc := sinr.NewEngineScratch()
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for k := lo; k < hi; k++ {
				slot := s.Slots[k]
				if len(slot) == 0 || int64(k) > failCut.Load() {
					continue
				}
				o := &outs[k]
				o.ran = true
				t0 := time.Now()
				powers, err := pf(k, slot)
				o.powerSec = time.Since(t0).Seconds()
				if err != nil {
					o.pfErr = err
					lowerCut(&failCut, int64(k))
					continue
				}
				if vc != nil {
					// Both maps are read-only for the whole fan-out (inserts
					// happen after it), so concurrent lookups are safe.
					o.key = hashSlot(slot, powers)
					if e, ok := vc.margins[o.key]; ok {
						o.margin, o.reused = e.margin, true
						if o.margin < 1 {
							lowerCut(&failCut, int64(k))
						}
						continue
					}
					// Margin miss: look for a built grid under the slot's
					// membership key and verify grid-warm, retaining the
					// built/refreshed grid for insertion after the fan-out.
					o.gkey = hashSlotMembers(slot)
					var cg *sinr.SlotGrid
					if e, ok := vc.grids[o.gkey]; ok {
						cg = e.g
					}
					t0 = time.Now()
					o.margin, o.grid, o.gridReused, o.mErr =
						eng.MarginSlotGrid(slot, powers, sc, &o.stats, cg, true)
					o.marginSec = time.Since(t0).Seconds()
					if o.mErr != nil || o.margin < 1 {
						lowerCut(&failCut, int64(k))
					}
					continue
				}
				t0 = time.Now()
				o.margin, o.mErr = eng.MarginSlot(slot, powers, sc, &o.stats)
				o.marginSec = time.Since(t0).Seconds()
				if o.mErr != nil || o.margin < 1 {
					lowerCut(&failCut, int64(k))
				}
			}
		}
	})

	// Record freshly computed margins and retained grids — on every exit
	// path, in slot order (deterministic LRU recency). Caching the feasible
	// slots of an infeasible schedule is the point of the γ-escalation
	// reuse: the next attempt skips every slot it kept. Reused entries are
	// touched so eviction tracks actual access order.
	if vc != nil {
		for k := range outs {
			o := &outs[k]
			if !o.ran || o.pfErr != nil {
				continue
			}
			if o.reused {
				if e, ok := vc.margins[o.key]; ok {
					vc.touch(e)
				}
				continue
			}
			if o.mErr == nil {
				vc.insertMargin(o.key, o.margin)
			}
			if o.grid != nil {
				vc.insertGrid(o.gkey, o.grid)
			}
		}
	}

	if err != nil {
		// Cancelled mid-fan-out: an unknown subset of slots never ran, so the
		// zero-valued outs must not be read as margins. Partial stats cover
		// only the slots a worker actually examined (work performed), summed
		// in slot order so the report is deterministic for a fixed ran set.
		for k := range outs {
			if !outs[k].ran {
				continue
			}
			st.Slots++
			if outs[k].reused {
				st.ReusedSlots++
			}
			if outs[k].gridReused {
				st.ReusedGrids++
			}
			st.Engine.Add(outs[k].stats)
			st.PowerSec += outs[k].powerSec
			st.MarginSec += outs[k].marginSec
		}
		return 0, st, err
	}

	// Deterministic reduction in slot order, replicating the naive path's
	// early-return values: a power/margin error at the first offending slot
	// returns 0; the first infeasible slot returns the min margin over the
	// slots up to and including it. Stats accumulate in the same order, so
	// they never depend on which slots beyond the cut a worker happened to
	// finish before the cut moved.
	worst := math.Inf(1)
	for k := range outs {
		if len(s.Slots[k]) == 0 {
			continue
		}
		o := &outs[k]
		st.Slots++
		if o.reused {
			st.ReusedSlots++
		}
		if o.gridReused {
			st.ReusedGrids++
		}
		st.Engine.Add(o.stats)
		st.PowerSec += o.powerSec
		st.MarginSec += o.marginSec
		if o.pfErr != nil {
			return 0, st, fmt.Errorf("schedule: slot %d power assignment: %w", k, o.pfErr)
		}
		if o.mErr != nil {
			return 0, st, fmt.Errorf("schedule: slot %d: %w", k, o.mErr)
		}
		if o.margin < worst {
			worst = o.margin
		}
		if o.margin < 1 {
			return worst, st, fmt.Errorf("schedule: slot %d infeasible (margin %.4g < 1)", k, o.margin)
		}
	}
	return worst, st, nil
}

// lowerCut lowers cut to k if k is smaller (atomic monotone min).
func lowerCut(cut *atomic.Int64, k int64) {
	for {
		cur := cut.Load()
		if k >= cur || cut.CompareAndSwap(cur, k) {
			return
		}
	}
}
