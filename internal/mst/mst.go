// Package mst builds the aggregation tree: the Euclidean minimum spanning
// tree of the input pointset, oriented toward a sink to form a convergecast
// tree.
//
// The paper's protocol (Sec. 3) uses the MST with edges directed arbitrarily;
// for the convergecast semantics of the simulator, edges point from child to
// parent along the unique sink-rooted orientation. Three constructions are
// provided: EMST, a grid-accelerated Borůvka that is near-linear on the
// experiment scenarios and the production path of NewMSTTree; Prim in O(n²)
// time and O(n) memory, the oracle EMST is cross-checked against; and
// Kruskal over all pairs as an independent second oracle. EMST resolves
// equal-weight candidates with Kruskal's edge order (weight, then the sorted
// endpoint pair), which makes it exact even on tie-heavy inputs; on
// pointsets with distinct pairwise distances (all jittered generators) the
// MST is unique and all three constructions agree edge-for-edge. For
// collinear pointsets LineMST exploits the 1-D structure (connect neighbors
// in sorted order).
package mst

import (
	"context"
	"fmt"
	"math"
	"sort"

	"aggrate/internal/geom"
	"aggrate/internal/unionfind"
)

// Edge is an undirected tree edge between two point indices.
type Edge struct {
	U, V   int
	Weight float64
}

// Prim computes the Euclidean MST of pts with the O(n²) dense-graph variant
// of Prim's algorithm (the right tool for a complete geometric graph).
// It returns n-1 edges; a nil slice for n < 2.
func Prim(pts []geom.Point) []Edge {
	n := len(pts)
	if n < 2 {
		return nil
	}
	const none = -1
	inTree := make([]bool, n)
	bestDist := make([]float64, n) // squared distance to the tree
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
		bestFrom[i] = none
	}
	edges := make([]Edge, 0, n-1)
	cur := 0
	inTree[0] = true
	for len(edges) < n-1 {
		// Relax distances through the vertex added last.
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			if d := pts[cur].Dist2(pts[v]); d < bestDist[v] {
				bestDist[v] = d
				bestFrom[v] = cur
			}
		}
		// Pick the closest fringe vertex.
		next := none
		nd := math.Inf(1)
		for v := 0; v < n; v++ {
			if !inTree[v] && bestDist[v] < nd {
				nd = bestDist[v]
				next = v
			}
		}
		if next == none {
			// Unreachable for finite coordinates, but fail loudly rather
			// than loop forever if a NaN coordinate sneaks in.
			panic("mst: disconnected geometric graph (NaN coordinates?)")
		}
		edges = append(edges, Edge{U: bestFrom[next], V: next, Weight: math.Sqrt(nd)})
		inTree[next] = true
		cur = next
	}
	return edges
}

// Kruskal computes the Euclidean MST by sorting all O(n²) pairs and adding
// them greedily with a union-find. It exists as an independent
// cross-check of Prim and for tests; Prim is the default.
func Kruskal(pts []geom.Point) []Edge {
	n := len(pts)
	if n < 2 {
		return nil
	}
	all := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, Edge{U: i, V: j, Weight: pts[i].Dist(pts[j])})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Weight != all[b].Weight {
			return all[a].Weight < all[b].Weight
		}
		// Deterministic tie-break so Prim/Kruskal agree on grids.
		if all[a].U != all[b].U {
			return all[a].U < all[b].U
		}
		return all[a].V < all[b].V
	})
	dsu := unionfind.New(n)
	edges := make([]Edge, 0, n-1)
	for _, e := range all {
		if dsu.Union(e.U, e.V) {
			edges = append(edges, e)
			if len(edges) == n-1 {
				break
			}
		}
	}
	return edges
}

// emstCutoff is the pointset size below which the dense Prim is faster than
// building the grid.
const emstCutoff = 256

// EMST computes the Euclidean MST with Borůvka's algorithm over a uniform
// hash grid: each round finds, for every component, its minimum outgoing
// edge by ring-searching the grid outward from each point until the ring's
// lower distance bound exceeds the component's best candidate so far, then
// merges components along the selected edges. Components halve per round,
// so there are O(log n) rounds, and the shared per-component bound prunes
// almost every interior point's search after the first boundary point has
// found a close foreign neighbor — near-linear work on the experiment
// scenarios.
//
// Exactness: Borůvka is exact whenever each component selects a true
// minimum outgoing edge under a total order on edges; candidates are
// compared by (squared distance, sorted endpoint pair), Kruskal's order, so
// ties cannot produce a non-minimum tree. Degenerate inputs (zero extent,
// non-finite coordinates) fall back to Prim.
func EMST(pts []geom.Point) []Edge {
	edges, _ := EMSTCtx(context.Background(), pts) // Background never cancels
	return edges
}

// EMSTCtx is EMST with cancellation, checked once per Borůvka round
// (components halve per round, so the first round — the bulk of the work —
// is the longest uncancellable window). On cancellation it returns
// (nil, ctx.Err()); a partial edge set is never returned.
func EMSTCtx(ctx context.Context, pts []geom.Point) ([]Edge, error) {
	n := len(pts)
	if n < emstCutoff {
		return Prim(pts), nil
	}
	lo, hi := geom.BoundingBox(pts)
	ext := math.Max(hi.X-lo.X, hi.Y-lo.Y)
	if !(ext > 0) || math.IsInf(ext, 1) {
		return Prim(pts), nil
	}
	// Base grid at ~1 point per cell.
	d0 := 1
	for d0*d0 < n && d0 < 4096 {
		d0 <<= 1
	}
	cs := ext / float64(d0)
	cellIdx := func(p geom.Point) (int, int) {
		cx := int((p.X - lo.X) / cs)
		cy := int((p.Y - lo.Y) / cs)
		if cx < 0 {
			cx = 0
		} else if cx >= d0 {
			cx = d0 - 1
		}
		if cy < 0 {
			cy = 0
		} else if cy >= d0 {
			cy = d0 - 1
		}
		return cx, cy
	}
	// CSR layout: points grouped by cell.
	starts := make([]int32, d0*d0+1)
	cellOf := make([]int32, n)
	for i, p := range pts {
		cx, cy := cellIdx(p)
		cellOf[i] = int32(cy*d0 + cx)
		starts[cellOf[i]+1]++
	}
	for c := 0; c < d0*d0; c++ {
		starts[c+1] += starts[c]
	}
	fill := append([]int32(nil), starts[:d0*d0]...)
	members := make([]int32, n)
	for i := 0; i < n; i++ {
		members[fill[cellOf[i]]] = int32(i)
		fill[cellOf[i]]++
	}

	dsu := unionfind.New(n)
	edges := make([]Edge, 0, n-1)
	bestD2 := make([]float64, n) // indexed by component root
	bestU := make([]int32, n)
	bestV := make([]int32, n)
	roots := make([]int32, 0, n)
	// rootOf memoizes dsu.Find for the duration of one round (roots only
	// change at the merge step), turning the O(candidates) Find calls of the
	// ring search into array loads.
	rootOf := make([]int32, n)
	// cellRoot[c] is the common component root of every point in cell c, or
	// -1 if the cell is empty or spans components. In later rounds most cells
	// interior to a component are uniform, and the ring search skips them
	// without touching their members — the bulk of the late-round work.
	cellRoot := make([]int32, d0*d0)
	// better reports whether candidate (d2, u, v) precedes the root's
	// current best under Kruskal's order (weight, sorted endpoint pair).
	better := func(r int, d2 float64, u, v int32) bool {
		if d2 != bestD2[r] {
			return d2 < bestD2[r]
		}
		au, av := minmax32(u, v)
		bu, bv := minmax32(bestU[r], bestV[r])
		if au != bu {
			return au < bu
		}
		return av < bv
	}
	for len(edges) < n-1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		roots = roots[:0]
		for i := 0; i < n; i++ {
			r := dsu.Find(i)
			rootOf[i] = int32(r)
			if r == i {
				bestD2[i] = math.Inf(1)
				bestU[i], bestV[i] = -1, -1
				roots = append(roots, int32(i))
			}
		}
		for c := 0; c < d0*d0; c++ {
			s, e := starts[c], starts[c+1]
			if s == e {
				cellRoot[c] = -1
				continue
			}
			cr := rootOf[members[s]]
			for _, j := range members[s+1 : e] {
				if rootOf[j] != cr {
					cr = -1
					break
				}
			}
			cellRoot[c] = cr
		}
		// Minimum outgoing edge per component, via bounded ring search.
		for i := 0; i < n; i++ {
			r := int(rootOf[i])
			p := pts[i]
			cx, cy := cellIdx(p)
			for ring := 0; ; ring++ {
				// Ring lower bound: any point in a cell at Chebyshev ring
				// distance k from p's cell is at least (k-1)·cs away from p,
				// so once that exceeds the component's best candidate the
				// remaining rings cannot contain the minimum (nor an
				// equal-weight tie, which the strict inequality excludes).
				if ring >= 2 {
					lb := float64(ring-1) * cs
					if lb*lb > bestD2[r] {
						break
					}
				}
				x0, x1 := cx-ring, cx+ring
				y0, y1 := cy-ring, cy+ring
				if x0 < 0 && x1 >= d0 && y0 < 0 && y1 >= d0 {
					break // the shell lies entirely outside the grid
				}
				for y := y0; y <= y1; y++ {
					if y < 0 || y >= d0 {
						continue
					}
					for x := x0; x <= x1; x++ {
						if x < 0 || x >= d0 {
							continue
						}
						// Ring shell only: interior cells were visited by
						// smaller rings.
						if ring > 0 && x != x0 && x != x1 && y != y0 && y != y1 {
							continue
						}
						c := y*d0 + x
						if int(cellRoot[c]) == r {
							continue // every member is same-component
						}
						for _, j := range members[starts[c]:starts[c+1]] {
							if int(rootOf[j]) == r {
								continue
							}
							d2 := p.Dist2(pts[j])
							if d2 < bestD2[r] || (d2 == bestD2[r] && better(r, d2, int32(i), j)) {
								bestD2[r] = d2
								bestU[r], bestV[r] = int32(i), j
							}
						}
					}
				}
			}
		}
		// Merge along the selected edges.
		progressed := false
		for _, r := range roots {
			if bestV[r] < 0 {
				continue
			}
			if dsu.Union(int(bestU[r]), int(bestV[r])) {
				edges = append(edges, Edge{
					U: int(bestU[r]), V: int(bestV[r]),
					Weight: math.Sqrt(bestD2[r]),
				})
				progressed = true
			}
		}
		if !progressed {
			// No component found an outgoing edge (NaN coordinates or a
			// bound inversion): the dense oracle handles what the grid
			// cannot.
			return Prim(pts), nil
		}
	}
	return edges, nil
}

func minmax32(a, b int32) (int32, int32) {
	if a < b {
		return a, b
	}
	return b, a
}

// LineMST computes the MST of a collinear pointset (sorted-neighbor chain).
// The points need not be pre-sorted. It returns an error if the points are
// not all on the x-axis.
func LineMST(pts []geom.Point) ([]Edge, error) {
	if !geom.OnLine(pts) {
		return nil, fmt.Errorf("mst: LineMST requires points on the x-axis")
	}
	n := len(pts)
	if n < 2 {
		return nil, nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].X < pts[order[b]].X })
	edges := make([]Edge, 0, n-1)
	for k := 0; k+1 < n; k++ {
		u, v := order[k], order[k+1]
		edges = append(edges, Edge{U: u, V: v, Weight: pts[u].Dist(pts[v])})
	}
	return edges, nil
}

// TotalWeight sums the edge weights.
func TotalWeight(edges []Edge) float64 {
	s := 0.0
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

// Tree is a convergecast tree: an MST rooted at a sink, with every non-sink
// node owning exactly one directed link toward its parent.
type Tree struct {
	// Points is the node set; Sink indexes the root.
	Points []geom.Point
	Sink   int
	// Parent[v] is v's parent, or -1 for the sink.
	Parent []int
	// Children[v] lists v's children.
	Children [][]int
	// Depth[v] is the hop distance from v to the sink (0 at the sink).
	Depth []int
	// Links[k] is the directed link of edge k, from child to parent. There
	// is exactly one link per non-sink node; LinkOf maps nodes to links.
	Links []geom.Link
	// LinkOf[v] is the index into Links of node v's uplink, -1 for the sink.
	LinkOf []int
}

// Build orients the given spanning edges toward the sink and assembles the
// convergecast structure. It returns an error if the edges do not form a
// spanning tree of the pointset or sink is out of range.
func Build(pts []geom.Point, edges []Edge, sink int) (*Tree, error) {
	n := len(pts)
	if sink < 0 || sink >= n {
		return nil, fmt.Errorf("mst: sink %d out of range [0,%d)", sink, n)
	}
	if len(edges) != n-1 {
		return nil, fmt.Errorf("mst: %d edges cannot span %d points", len(edges), n)
	}
	adj := make([][]int, n)
	dsu := unionfind.New(n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("mst: edge (%d,%d) out of range", e.U, e.V)
		}
		if !dsu.Union(e.U, e.V) {
			return nil, fmt.Errorf("mst: edge (%d,%d) creates a cycle", e.U, e.V)
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	t := &Tree{
		Points:   pts,
		Sink:     sink,
		Parent:   make([]int, n),
		Children: make([][]int, n),
		Depth:    make([]int, n),
		LinkOf:   make([]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.LinkOf[i] = -1
	}
	// BFS from the sink to orient edges.
	queue := []int{sink}
	visited := make([]bool, n)
	visited[sink] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if visited[w] {
				continue
			}
			visited[w] = true
			t.Parent[w] = v
			t.Depth[w] = t.Depth[v] + 1
			t.Children[v] = append(t.Children[v], w)
			queue = append(queue, w)
		}
	}
	for v, ok := range visited {
		if !ok {
			return nil, fmt.Errorf("mst: node %d not reachable from sink", v)
		}
	}
	// One uplink per non-sink node, ordered by node index for determinism.
	t.Links = make([]geom.Link, 0, n-1)
	for v := 0; v < n; v++ {
		if v == sink {
			continue
		}
		p := t.Parent[v]
		t.LinkOf[v] = len(t.Links)
		t.Links = append(t.Links, geom.NewLink(v, p, pts[v], pts[p]))
	}
	return t, nil
}

// NewMSTTree is the one-call constructor used by the public planner: it
// computes the Euclidean MST of pts (grid-accelerated Borůvka, with the
// dense Prim as small-input and degenerate-input fallback) and orients it
// toward sink.
func NewMSTTree(pts []geom.Point, sink int) (*Tree, error) {
	return Build(pts, EMST(pts), sink)
}

// NewMSTTreeCtx is NewMSTTree with cancellation of the Borůvka rounds; see
// EMSTCtx.
func NewMSTTreeCtx(ctx context.Context, pts []geom.Point, sink int) (*Tree, error) {
	edges, err := EMSTCtx(ctx, pts)
	if err != nil {
		return nil, err
	}
	return Build(pts, edges, sink)
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.Points) }

// Height returns the maximum depth over all nodes.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// SubtreeSizes returns, for each node, the number of nodes in its subtree
// (including itself). The sink's entry equals n.
func (t *Tree) SubtreeSizes() []int {
	n := t.N()
	size := make([]int, n)
	// Process nodes in decreasing depth so children are done before parents.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.Depth[order[a]] > t.Depth[order[b]] })
	for _, v := range order {
		size[v] = 1
		for _, c := range t.Children[v] {
			size[v] += size[c]
		}
	}
	return size
}

// PathToSink returns the node sequence from v up to the sink, inclusive.
func (t *Tree) PathToSink(v int) []int {
	path := []int{v}
	for t.Parent[v] != -1 {
		v = t.Parent[v]
		path = append(path, v)
	}
	return path
}

// Validate re-checks the structural invariants (acyclic, spanning, depths
// consistent, one uplink per non-sink node). It is cheap and called by the
// end-to-end plan verifier.
func (t *Tree) Validate() error {
	n := t.N()
	if t.Sink < 0 || t.Sink >= n {
		return fmt.Errorf("mst: invalid sink %d", t.Sink)
	}
	if t.Parent[t.Sink] != -1 {
		return fmt.Errorf("mst: sink has parent %d", t.Parent[t.Sink])
	}
	if len(t.Links) != n-1 {
		return fmt.Errorf("mst: %d links for %d nodes", len(t.Links), n)
	}
	for v := 0; v < n; v++ {
		if v == t.Sink {
			continue
		}
		p := t.Parent[v]
		if p < 0 || p >= n {
			return fmt.Errorf("mst: node %d has invalid parent %d", v, p)
		}
		if t.Depth[v] != t.Depth[p]+1 {
			return fmt.Errorf("mst: depth invariant broken at node %d", v)
		}
		k := t.LinkOf[v]
		if k < 0 || k >= len(t.Links) {
			return fmt.Errorf("mst: node %d has invalid uplink index %d", v, k)
		}
		if l := t.Links[k]; l.Sender != v || l.Receiver != p {
			return fmt.Errorf("mst: uplink of node %d is %v", v, l)
		}
	}
	return nil
}
