// Package mst builds the aggregation tree: the Euclidean minimum spanning
// tree of the input pointset, oriented toward a sink to form a convergecast
// tree.
//
// The paper's protocol (Sec. 3) uses the MST with edges directed arbitrarily;
// for the convergecast semantics of the simulator, edges point from child to
// parent along the unique sink-rooted orientation. Three constructions are
// provided: EMST, a grid-accelerated Borůvka that is near-linear on the
// experiment scenarios and the production path of NewMSTTree; Prim in O(n²)
// time and O(n) memory, the oracle EMST is cross-checked against; and
// Kruskal over all pairs as an independent second oracle. EMST resolves
// equal-weight candidates with Kruskal's edge order (weight, then the sorted
// endpoint pair), which makes it exact even on tie-heavy inputs; on
// pointsets with distinct pairwise distances (all jittered generators) the
// MST is unique and all three constructions agree edge-for-edge. For
// collinear pointsets LineMST exploits the 1-D structure (connect neighbors
// in sorted order).
package mst

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"aggrate/internal/geom"
	"aggrate/internal/unionfind"
)

// Edge is an undirected tree edge between two point indices.
type Edge struct {
	U, V   int
	Weight float64
}

// Prim computes the Euclidean MST of pts with the O(n²) dense-graph variant
// of Prim's algorithm (the right tool for a complete geometric graph).
// It returns n-1 edges; a nil slice for n < 2.
func Prim(pts []geom.Point) []Edge {
	n := len(pts)
	if n < 2 {
		return nil
	}
	const none = -1
	inTree := make([]bool, n)
	bestDist := make([]float64, n) // squared distance to the tree
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
		bestFrom[i] = none
	}
	edges := make([]Edge, 0, n-1)
	cur := 0
	inTree[0] = true
	for len(edges) < n-1 {
		// Relax distances through the vertex added last.
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			if d := pts[cur].Dist2(pts[v]); d < bestDist[v] {
				bestDist[v] = d
				bestFrom[v] = cur
			}
		}
		// Pick the closest fringe vertex.
		next := none
		nd := math.Inf(1)
		for v := 0; v < n; v++ {
			if !inTree[v] && bestDist[v] < nd {
				nd = bestDist[v]
				next = v
			}
		}
		if next == none {
			// Unreachable for finite coordinates, but fail loudly rather
			// than loop forever if a NaN coordinate sneaks in.
			panic("mst: disconnected geometric graph (NaN coordinates?)")
		}
		edges = append(edges, Edge{U: bestFrom[next], V: next, Weight: math.Sqrt(nd)})
		inTree[next] = true
		cur = next
	}
	return edges
}

// Kruskal computes the Euclidean MST by sorting all O(n²) pairs and adding
// them greedily with a union-find. It exists as an independent
// cross-check of Prim and for tests; Prim is the default.
func Kruskal(pts []geom.Point) []Edge {
	n := len(pts)
	if n < 2 {
		return nil
	}
	all := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, Edge{U: i, V: j, Weight: pts[i].Dist(pts[j])})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Weight != all[b].Weight {
			return all[a].Weight < all[b].Weight
		}
		// Deterministic tie-break so Prim/Kruskal agree on grids.
		if all[a].U != all[b].U {
			return all[a].U < all[b].U
		}
		return all[a].V < all[b].V
	})
	dsu := unionfind.New(n)
	edges := make([]Edge, 0, n-1)
	for _, e := range all {
		if dsu.Union(e.U, e.V) {
			edges = append(edges, e)
			if len(edges) == n-1 {
				break
			}
		}
	}
	return edges
}

// emstCutoff is the pointset size below which the dense Prim is faster than
// building the grid.
const emstCutoff = 256

// EMST computes the Euclidean MST with Borůvka's algorithm over a uniform
// hash grid: each round finds, for every component, its minimum outgoing
// edge by ring-searching the grid outward from each point until the ring's
// lower distance bound exceeds the component's best candidate so far, then
// merges components along the selected edges. Components halve per round,
// so there are O(log n) rounds, and the shared per-component bound prunes
// almost every interior point's search after the first boundary point has
// found a close foreign neighbor — near-linear work on the experiment
// scenarios.
//
// Exactness: Borůvka is exact whenever each component selects a true
// minimum outgoing edge under a total order on edges; candidates are
// compared by (squared distance, sorted endpoint pair), Kruskal's order, so
// ties cannot produce a non-minimum tree. Degenerate inputs (zero extent,
// non-finite coordinates) fall back to Prim.
func EMST(pts []geom.Point) []Edge {
	edges, _ := EMSTCtx(context.Background(), pts) // Background never cancels
	return edges
}

// emstStats counts the work-skipping behavior of one EMSTCtx run, for
// benchmarks and regression visibility (BenchmarkEMSTLarge reports them as
// custom metrics).
type emstStats struct {
	// Rounds is the number of Borůvka rounds.
	Rounds int
	// Supercells counts coarse cells certified single-component-with-
	// single-component-neighborhood, summed over rounds.
	Supercells int
	// SkippedPoints counts points whose entire ring search was skipped by
	// the supercell test, summed over rounds.
	SkippedPoints int
	// CachedPoints counts points whose ring search was replaced by a cached
	// best-edge candidate from an earlier round, summed over rounds.
	CachedPoints int
}

// EMSTCtx is EMST with cancellation, checked once per Borůvka round
// (components halve per round, so the first round — the bulk of the work —
// is the longest uncancellable window). On cancellation it returns
// (nil, ctx.Err()); a partial edge set is never returned.
func EMSTCtx(ctx context.Context, pts []geom.Point) ([]Edge, error) {
	return emstCtx(ctx, pts, nil)
}

func emstCtx(ctx context.Context, pts []geom.Point, st *emstStats) ([]Edge, error) {
	n := len(pts)
	if n < emstCutoff {
		return Prim(pts), nil
	}
	lo, hi := geom.BoundingBox(pts)
	ext := math.Max(hi.X-lo.X, hi.Y-lo.Y)
	if !(ext > 0) || math.IsInf(ext, 1) {
		return Prim(pts), nil
	}
	// Base grid at ~1 point per cell.
	d0 := 1
	for d0*d0 < n && d0 < 4096 {
		d0 <<= 1
	}
	cs := ext / float64(d0)
	cellIdx := func(p geom.Point) (int, int) {
		cx := int((p.X - lo.X) / cs)
		cy := int((p.Y - lo.Y) / cs)
		if cx < 0 {
			cx = 0
		} else if cx >= d0 {
			cx = d0 - 1
		}
		if cy < 0 {
			cy = 0
		} else if cy >= d0 {
			cy = d0 - 1
		}
		return cx, cy
	}
	// CSR layout: points grouped by cell.
	starts := make([]int32, d0*d0+1)
	cellOf := make([]int32, n)
	for i, p := range pts {
		cx, cy := cellIdx(p)
		cellOf[i] = int32(cy*d0 + cx)
		starts[cellOf[i]+1]++
	}
	for c := 0; c < d0*d0; c++ {
		starts[c+1] += starts[c]
	}
	fill := append([]int32(nil), starts[:d0*d0]...)
	members := make([]int32, n)
	for i := 0; i < n; i++ {
		members[fill[cellOf[i]]] = int32(i)
		fill[cellOf[i]]++
	}
	// Cell-grouped copies of the coordinates and (per round) the component
	// roots, indexed by CSR slot rather than point index. The ring search
	// streams members[s:e] ranges, and reading through these keeps its
	// hottest loads sequential instead of gather-loads through members.
	xsM := make([]float64, n)
	ysM := make([]float64, n)
	for k, j := range members {
		xsM[k] = pts[j].X
		ysM[k] = pts[j].Y
	}
	rootM := make([]int32, n)

	// Cross-round champion cache, indexed by CSR slot so the per-point scan
	// loop streams it sequentially. candJ[k]/candD2[k] hold a pair (i, j) —
	// i the point in slot k — that was the component's best candidate at the
	// moment i's ring scan ended: such a pair precedes every pair i scanned
	// (the shared best is a running minimum over them) and every pair i
	// pruned (the ring bound discards only pairs strictly worse than the
	// bound, which at that moment was this pair's own weight) — so it is i's
	// exact Kruskal-order minimum outgoing pair. Merges only shrink the
	// foreign set, so the pair stays i's minimum in every later round until
	// j's component merges with i's; while it does, i offers the cached pair
	// and skips its ring scan outright.
	candJ := make([]int32, n)
	candD2 := make([]float64, n)
	for k := range candJ {
		candJ[k] = -1
	}

	dsu := unionfind.New(n)
	edges := make([]Edge, 0, n-1)
	bestD2 := make([]float64, n) // indexed by component root
	bestU := make([]int32, n)
	bestV := make([]int32, n)
	roots := make([]int32, 0, n)
	// rootOf memoizes dsu.Find for the duration of one round (roots only
	// change at the merge step), turning the O(candidates) Find calls of the
	// ring search into array loads.
	rootOf := make([]int32, n)
	// cellRoot[c] is the common component root of every point in cell c, or
	// -1 if the cell is empty or spans components. In later rounds most cells
	// interior to a component are uniform, and the ring search skips them
	// without touching their members — the bulk of the late-round work.
	cellRoot := make([]int32, d0*d0)
	// Supercell skipping, one pyramid level up from the cell tags: coarse
	// cells of side S = 2·cs (d0 is a power of two ≥ 16, so dc = d0/2 tiles
	// the grid exactly). coarseRoot[cc] is the common root of the coarse
	// cell's points (-2 empty, -1 mixed); blockRoot[cc] is that root when
	// additionally every in-grid coarse neighbor is empty or has the same
	// root — then every foreign point is outside the 3×3 coarse block, hence
	// at distance ≥ S from any point of cc, and a point whose component
	// already holds a candidate strictly below (S·(1-1e-9))² can skip its
	// entire ring scan. The 1e-9 pad absorbs the ulp by which cellIdx's
	// clamped division can misplace a point relative to its cell rectangle;
	// the strict inequality keeps equal-weight ties inside the scan, the
	// same device as the ring lower bound.
	dc := d0 / 2
	coarseRoot := make([]int32, dc*dc)
	blockRoot := make([]int32, dc*dc)
	skipCut := 2 * cs * (1 - 1e-9)
	skipCut *= skipCut
	var stats emstStats
	// better reports whether candidate (d2, u, v) precedes the root's
	// current best under Kruskal's order (weight, sorted endpoint pair).
	better := func(r int, d2 float64, u, v int32) bool {
		if d2 != bestD2[r] {
			return d2 < bestD2[r]
		}
		au, av := minmax32(u, v)
		bu, bv := minmax32(bestU[r], bestV[r])
		if au != bu {
			return au < bu
		}
		return av < bv
	}
	for len(edges) < n-1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		roots = roots[:0]
		for i := 0; i < n; i++ {
			r := dsu.Find(i)
			rootOf[i] = int32(r)
			if r == i {
				bestD2[i] = math.Inf(1)
				bestU[i], bestV[i] = -1, -1
				roots = append(roots, int32(i))
			}
		}
		for k, j := range members {
			rootM[k] = rootOf[j]
		}
		for c := 0; c < d0*d0; c++ {
			s, e := starts[c], starts[c+1]
			if s == e {
				cellRoot[c] = -1
				continue
			}
			cr := rootM[s]
			for _, rj := range rootM[s+1 : e] {
				if rj != cr {
					cr = -1
					break
				}
			}
			cellRoot[c] = cr
		}
		stats.Rounds++
		// Coarse roots: fold each 2×2 block of fine cells (empty fine cells
		// are wildcards; a mixed fine cell poisons the block).
		for ccy := 0; ccy < dc; ccy++ {
			for ccx := 0; ccx < dc; ccx++ {
				cr := int32(-2)
				for fy := 2 * ccy; fy < 2*ccy+2 && cr != -1; fy++ {
					for fx := 2 * ccx; fx < 2*ccx+2; fx++ {
						c := fy*d0 + fx
						if starts[c] == starts[c+1] {
							continue
						}
						fr := cellRoot[c]
						if fr < 0 || (cr != -2 && fr != cr) {
							cr = -1
							break
						}
						cr = fr
					}
				}
				coarseRoot[ccy*dc+ccx] = cr
			}
		}
		// Block roots: a coarse cell keeps its root only if all ≤8 in-grid
		// coarse neighbors are empty or same-component (out-of-grid space
		// holds no points and is vacuously fine).
		for ccy := 0; ccy < dc; ccy++ {
			for ccx := 0; ccx < dc; ccx++ {
				cc := ccy*dc + ccx
				cr := coarseRoot[cc]
				if cr >= 0 {
					for ny := ccy - 1; ny <= ccy+1 && cr >= 0; ny++ {
						if ny < 0 || ny >= dc {
							continue
						}
						for nx := ccx - 1; nx <= ccx+1; nx++ {
							if nx < 0 || nx >= dc {
								continue
							}
							if nr := coarseRoot[ny*dc+nx]; nr != -2 && nr != cr {
								cr = -1
								break
							}
						}
					}
				}
				if cr >= 0 {
					stats.Supercells++
				}
				blockRoot[cc] = cr
			}
		}
		// Minimum outgoing edge per component, via bounded ring search. The
		// scan walks cells (not points in index order) so the per-point
		// loads stream through the slot-indexed rootM/xsM/ysM and adjacent
		// scans share their ring rows of cellRoot/starts — but grid rows are
		// visited in bit-reversed order, not top-to-bottom. The shared
		// per-component bound is what makes interior points cheap, and it
		// only collapses once some near-boundary point of the component has
		// scanned; a plain row-major sweep can keep a component's bound
		// enormous until the sweep finally reaches its boundary (every point
		// above it then pays a huge ring search), while bit-reversed rows
		// reach within d0/2^k of every row after 2^k rows, so bounds decay
		// geometrically as in the old random-index order.
		//
		// Scan order cannot change the selected edges — every pruning rule
		// (ring lower bound, supercell skip) discards only pairs strictly
		// worse than the component's best at skip time, which bestD2's
		// monotone decrease makes strictly worse than the final best, so
		// each root still ends at the total-order minimum of its outgoing
		// pairs. Only the stats counters are order-sensitive.
		lg := bits.TrailingZeros32(uint32(d0)) // d0 is a power of two
		for ry := 0; ry < d0; ry++ {
			cy := int(bits.Reverse32(uint32(ry)) >> (32 - lg))
			for cx := 0; cx < d0; cx++ {
				home := cy*d0 + cx
				ms, me := starts[home], starts[home+1]
				if ms == me {
					continue
				}
				br := blockRoot[(cy>>1)*dc+(cx>>1)]
				for k := ms; k < me; k++ {
					r := int(rootM[k])
					// Supercell skip: every foreign point is ≥ S away, and
					// the component already holds a strictly better candidate
					// (bestD2 only decreases within a round, so the test
					// stays valid). The first point of a fresh component sees
					// bestD2 = +Inf and always scans, so every component
					// still finds its outgoing edge.
					if br == int32(r) && bestD2[r] < skipCut {
						stats.SkippedPoints++
						continue
					}
					i := members[k]
					// Cached champion pair: while candJ[k] is still foreign
					// it remains i's exact minimum outgoing pair — offer it
					// and skip the ring scan. The cache is left in place; it
					// stays valid until candJ[k]'s component merges in.
					if j := candJ[k]; j >= 0 && rootOf[j] != int32(r) {
						if d2 := candD2[k]; d2 < bestD2[r] || (d2 == bestD2[r] && better(r, d2, i, j)) {
							bestD2[r] = d2
							bestU[r], bestV[r] = i, j
						}
						stats.CachedPoints++
						continue
					}
					px, py := xsM[k], ysM[k]
					// The scan is sequential, so only i itself can move the
					// component's best while i scans: hold it in locals (bd,
					// bu, bv) for the duration — the stores into the float64
					// arrays below would otherwise force the compiler to
					// reload bestD2[r] from memory on every candidate.
					bd, bu, bv := bestD2[r], bestU[r], bestV[r]
					for ring := 0; ; ring++ {
						// Ring lower bound: any point in a cell at Chebyshev
						// ring distance q from p's cell is at least (q-1)·cs
						// away from p, so once that exceeds the component's
						// best candidate the remaining rings cannot contain
						// the minimum (nor an equal-weight tie, which the
						// strict inequality excludes).
						if ring >= 2 {
							lb := float64(ring-1) * cs
							if lb*lb > bd {
								break
							}
						}
						x0, x1 := cx-ring, cx+ring
						y0, y1 := cy-ring, cy+ring
						if x0 < 0 && x1 >= d0 && y0 < 0 && y1 >= d0 {
							break // the shell lies entirely outside the grid
						}
						lx := x0
						if lx < 0 {
							lx = 0
						}
						hx := x1
						if hx >= d0 {
							hx = d0 - 1
						}
						// The shell's top and bottom rows are contiguous cell
						// spans, so their members occupy one contiguous slot
						// range each: scan it directly (the per-point rootM
						// test subsumes the per-cell cellRoot skip).
						// y0 ≤ cy < d0 and y1 ≥ cy ≥ 0 always hold.
						for pass := 0; pass < 2; pass++ {
							y := y0
							if pass == 1 {
								y = y1
								if y1 == y0 {
									break
								}
							} else if y < 0 {
								continue
							}
							if y >= d0 {
								continue
							}
							row := y * d0
							for k2 := starts[row+lx]; k2 < starts[row+hx+1]; k2++ {
								if int(rootM[k2]) == r {
									continue
								}
								dx := px - xsM[k2]
								dy := py - ysM[k2]
								d2 := dx*dx + dy*dy
								if d2 < bd {
									bd = d2
									bu, bv = i, members[k2]
								} else if d2 == bd {
									au, av := minmax32(i, members[k2])
									cu, cv := minmax32(bu, bv)
									if au < cu || (au == cu && av < cv) {
										bu, bv = i, members[k2]
									}
								}
							}
						}
						// Left and right shell columns, interior y only (the
						// corner cells belong to the rows above).
						ly := y0 + 1
						if ly < 0 {
							ly = 0
						}
						hy := y1 - 1
						if hy >= d0 {
							hy = d0 - 1
						}
						for pass := 0; pass < 2; pass++ {
							x := x0
							if pass == 1 {
								x = x1
								if x1 == x0 {
									break
								}
								if x >= d0 {
									continue
								}
							} else if x < 0 {
								continue
							}
							for y := ly; y <= hy; y++ {
								c := y*d0 + x
								if int(cellRoot[c]) == r {
									continue // every member is same-component
								}
								for k2 := starts[c]; k2 < starts[c+1]; k2++ {
									if int(rootM[k2]) == r {
										continue
									}
									dx := px - xsM[k2]
									dy := py - ysM[k2]
									d2 := dx*dx + dy*dy
									if d2 < bd {
										bd = d2
										bu, bv = i, members[k2]
									} else if d2 == bd {
										au, av := minmax32(i, members[k2])
										cu, cv := minmax32(bu, bv)
										if au < cu || (au == cu && av < cv) {
											bu, bv = i, members[k2]
										}
									}
								}
							}
						}
					}
					bestD2[r], bestU[r], bestV[r] = bd, bu, bv
					// Champion cache write: if i still supplies the shared
					// best as its scan ends, that pair is i's exact minimum
					// outgoing pair (see candJ above). Otherwise any previous
					// cache entry has already failed its validity check, so
					// clear it.
					if bu == i {
						candJ[k], candD2[k] = bv, bd
					} else if candJ[k] >= 0 {
						candJ[k] = -1
					}
				}
			}
		}
		// Merge along the selected edges.
		progressed := false
		for _, r := range roots {
			if bestV[r] < 0 {
				continue
			}
			if dsu.Union(int(bestU[r]), int(bestV[r])) {
				edges = append(edges, Edge{
					U: int(bestU[r]), V: int(bestV[r]),
					Weight: math.Sqrt(bestD2[r]),
				})
				progressed = true
			}
		}
		if !progressed {
			// No component found an outgoing edge (NaN coordinates or a
			// bound inversion): the dense oracle handles what the grid
			// cannot.
			return Prim(pts), nil
		}
	}
	if st != nil {
		*st = stats
	}
	return edges, nil
}

func minmax32(a, b int32) (int32, int32) {
	if a < b {
		return a, b
	}
	return b, a
}

// LineMST computes the MST of a collinear pointset (sorted-neighbor chain).
// The points need not be pre-sorted. It returns an error if the points are
// not all on the x-axis.
func LineMST(pts []geom.Point) ([]Edge, error) {
	if !geom.OnLine(pts) {
		return nil, fmt.Errorf("mst: LineMST requires points on the x-axis")
	}
	n := len(pts)
	if n < 2 {
		return nil, nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].X < pts[order[b]].X })
	edges := make([]Edge, 0, n-1)
	for k := 0; k+1 < n; k++ {
		u, v := order[k], order[k+1]
		edges = append(edges, Edge{U: u, V: v, Weight: pts[u].Dist(pts[v])})
	}
	return edges, nil
}

// TotalWeight sums the edge weights.
func TotalWeight(edges []Edge) float64 {
	s := 0.0
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

// Tree is a convergecast tree: an MST rooted at a sink, with every non-sink
// node owning exactly one directed link toward its parent.
type Tree struct {
	// Points is the node set; Sink indexes the root.
	Points []geom.Point
	Sink   int
	// Parent[v] is v's parent, or -1 for the sink.
	Parent []int
	// Children[v] lists v's children.
	Children [][]int
	// Depth[v] is the hop distance from v to the sink (0 at the sink).
	Depth []int
	// Links[k] is the directed link of edge k, from child to parent. There
	// is exactly one link per non-sink node; LinkOf maps nodes to links.
	Links []geom.Link
	// LinkOf[v] is the index into Links of node v's uplink, -1 for the sink.
	LinkOf []int
}

// Build orients the given spanning edges toward the sink and assembles the
// convergecast structure. It returns an error if the edges do not form a
// spanning tree of the pointset or sink is out of range.
func Build(pts []geom.Point, edges []Edge, sink int) (*Tree, error) {
	n := len(pts)
	if sink < 0 || sink >= n {
		return nil, fmt.Errorf("mst: sink %d out of range [0,%d)", sink, n)
	}
	if len(edges) != n-1 {
		return nil, fmt.Errorf("mst: %d edges cannot span %d points", len(edges), n)
	}
	// CSR adjacency: two counted passes instead of 2(n-1) per-node appends,
	// and the BFS streams each node's neighbors from one contiguous block.
	rowPtr := make([]int32, n+1)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("mst: edge (%d,%d) out of range", e.U, e.V)
		}
		rowPtr[e.U+1]++
		rowPtr[e.V+1]++
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	adjFlat := make([]int32, 2*(n-1))
	fill := append([]int32(nil), rowPtr[:n]...)
	for _, e := range edges {
		adjFlat[fill[e.U]] = int32(e.V)
		fill[e.U]++
		adjFlat[fill[e.V]] = int32(e.U)
		fill[e.V]++
	}
	t := &Tree{
		Points:   pts,
		Sink:     sink,
		Parent:   make([]int, n),
		Children: make([][]int, n),
		Depth:    make([]int, n),
		LinkOf:   make([]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.LinkOf[i] = -1
	}
	// BFS from the sink to orient edges. Connectivity doubles as the
	// spanning-tree check: n-1 edges that reach every node cannot contain a
	// cycle, so no separate union-find pass is needed.
	queue := make([]int32, 1, n)
	queue[0] = int32(sink)
	visited := make([]bool, n)
	visited[sink] = true
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, w := range adjFlat[rowPtr[v]:rowPtr[v+1]] {
			if visited[w] {
				continue
			}
			visited[w] = true
			t.Parent[w] = int(v)
			t.Depth[w] = t.Depth[v] + 1
			queue = append(queue, w)
		}
	}
	for v, ok := range visited {
		if !ok {
			return nil, fmt.Errorf("mst: node %d not reachable from sink (edges do not form a spanning tree)", v)
		}
	}
	// Children, carved from one flat backing array in BFS discovery order —
	// per parent that is its adjacency order, as the row-by-row BFS visits.
	childPtr := make([]int32, n+1)
	for _, w := range queue[1:] {
		childPtr[t.Parent[w]+1]++
	}
	for i := 0; i < n; i++ {
		childPtr[i+1] += childPtr[i]
	}
	childFlat := make([]int, n-1)
	cfill := append([]int32(nil), childPtr[:n]...)
	for _, w := range queue[1:] {
		p := t.Parent[w]
		childFlat[cfill[p]] = int(w)
		cfill[p]++
	}
	for v := 0; v < n; v++ {
		s, e := childPtr[v], childPtr[v+1]
		if s < e {
			t.Children[v] = childFlat[s:e:e]
		}
	}
	// One uplink per non-sink node, ordered by node index for determinism.
	t.Links = make([]geom.Link, 0, n-1)
	for v := 0; v < n; v++ {
		if v == sink {
			continue
		}
		p := t.Parent[v]
		t.LinkOf[v] = len(t.Links)
		t.Links = append(t.Links, geom.NewLink(v, p, pts[v], pts[p]))
	}
	return t, nil
}

// NewMSTTree is the one-call constructor used by the public planner: it
// computes the Euclidean MST of pts (grid-accelerated Borůvka, with the
// dense Prim as small-input and degenerate-input fallback) and orients it
// toward sink.
func NewMSTTree(pts []geom.Point, sink int) (*Tree, error) {
	return Build(pts, EMST(pts), sink)
}

// NewMSTTreeCtx is NewMSTTree with cancellation of the Borůvka rounds; see
// EMSTCtx.
func NewMSTTreeCtx(ctx context.Context, pts []geom.Point, sink int) (*Tree, error) {
	edges, err := EMSTCtx(ctx, pts)
	if err != nil {
		return nil, err
	}
	return Build(pts, edges, sink)
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.Points) }

// Height returns the maximum depth over all nodes.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// SubtreeSizes returns, for each node, the number of nodes in its subtree
// (including itself). The sink's entry equals n.
func (t *Tree) SubtreeSizes() []int {
	n := t.N()
	size := make([]int, n)
	// Process nodes in decreasing depth so children are done before parents.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.Depth[order[a]] > t.Depth[order[b]] })
	for _, v := range order {
		size[v] = 1
		for _, c := range t.Children[v] {
			size[v] += size[c]
		}
	}
	return size
}

// PathToSink returns the node sequence from v up to the sink, inclusive.
func (t *Tree) PathToSink(v int) []int {
	path := []int{v}
	for t.Parent[v] != -1 {
		v = t.Parent[v]
		path = append(path, v)
	}
	return path
}

// Validate re-checks the structural invariants (acyclic, spanning, depths
// consistent, one uplink per non-sink node). It is cheap and called by the
// end-to-end plan verifier.
func (t *Tree) Validate() error {
	n := t.N()
	if t.Sink < 0 || t.Sink >= n {
		return fmt.Errorf("mst: invalid sink %d", t.Sink)
	}
	if t.Parent[t.Sink] != -1 {
		return fmt.Errorf("mst: sink has parent %d", t.Parent[t.Sink])
	}
	if len(t.Links) != n-1 {
		return fmt.Errorf("mst: %d links for %d nodes", len(t.Links), n)
	}
	for v := 0; v < n; v++ {
		if v == t.Sink {
			continue
		}
		p := t.Parent[v]
		if p < 0 || p >= n {
			return fmt.Errorf("mst: node %d has invalid parent %d", v, p)
		}
		if t.Depth[v] != t.Depth[p]+1 {
			return fmt.Errorf("mst: depth invariant broken at node %d", v)
		}
		k := t.LinkOf[v]
		if k < 0 || k >= len(t.Links) {
			return fmt.Errorf("mst: node %d has invalid uplink index %d", v, k)
		}
		if l := t.Links[k]; l.Sender != v || l.Receiver != p {
			return fmt.Errorf("mst: uplink of node %d is %v", v, l)
		}
	}
	return nil
}
