package mst

import (
	"context"
	"math/rand"
	"testing"

	"aggrate/internal/geom"
)

func BenchmarkEMSTLarge(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	n := 500000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 1e6, Y: r.Float64() * 1e6}
	}
	var st emstStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := emstCtx(context.Background(), pts, &st)
		if err != nil || len(e) != n-1 {
			b.Fatal("bad edge count")
		}
	}
	// Supercell-skip visibility: a regression that stops whole-cell skipping
	// shows up as skipped_points collapsing toward zero in bench artifacts.
	b.ReportMetric(float64(st.Rounds), "rounds")
	b.ReportMetric(float64(st.Supercells), "supercells")
	b.ReportMetric(float64(st.SkippedPoints), "skipped_points")
}
