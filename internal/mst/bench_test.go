package mst

import (
	"math/rand"
	"testing"

	"aggrate/internal/geom"
)

func BenchmarkEMSTLarge(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	n := 500000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 1e6, Y: r.Float64() * 1e6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e := EMST(pts); len(e) != n-1 {
			b.Fatal("bad edge count")
		}
	}
}
