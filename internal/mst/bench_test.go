package mst

import (
	"context"
	"math/rand"
	"testing"

	"aggrate/internal/geom"
)

func BenchmarkEMSTLarge(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	n := 500000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 1e6, Y: r.Float64() * 1e6}
	}
	var st emstStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := emstCtx(context.Background(), pts, &st)
		if err != nil || len(e) != n-1 {
			b.Fatal("bad edge count")
		}
	}
	// Supercell-skip visibility: a regression that stops whole-cell skipping
	// shows up as skipped_points collapsing toward zero in bench artifacts.
	b.ReportMetric(float64(st.Rounds), "rounds")
	b.ReportMetric(float64(st.Supercells), "supercells")
	b.ReportMetric(float64(st.SkippedPoints), "skipped_points")
	b.ReportMetric(float64(st.CachedPoints), "cached_points")
}

// BenchmarkEMSTCachedEdges isolates the cross-round best-edge cache: a
// clustered instance whose components stay separated for many rounds, so
// frontier points re-offer their cached candidate instead of re-scanning
// rings. cached_points collapsing toward zero flags a cache regression.
func BenchmarkEMSTCachedEdges(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	n := 20000
	pts := make([]geom.Point, n)
	// 16 dense clusters on a loose grid: intra-cluster merges finish early
	// while the inter-cluster frontier stays stable across rounds.
	for i := range pts {
		c := i % 16
		cx := float64(c%4) * 1e6
		cy := float64(c/4) * 1e6
		pts[i] = geom.Point{X: cx + r.Float64()*1e5, Y: cy + r.Float64()*1e5}
	}
	var st emstStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := emstCtx(context.Background(), pts, &st)
		if err != nil || len(e) != n-1 {
			b.Fatal("bad edge count")
		}
	}
	b.ReportMetric(float64(st.Rounds), "rounds")
	b.ReportMetric(float64(st.SkippedPoints), "skipped_points")
	b.ReportMetric(float64(st.CachedPoints), "cached_points")
}
