package mst

import (
	"context"
	"math"
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/rng"
)

func randomPoints(n int, seed uint64, side float64) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	return pts
}

// TestPrimKruskalAgree cross-checks the two MST constructions by total
// weight on random pointsets: distinct algorithms, identical optimum.
func TestPrimKruskalAgree(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, n := range []int{2, 3, 10, 60, 200} {
			pts := randomPoints(n, seed*100+uint64(n), 1000)
			wp := TotalWeight(Prim(pts))
			wk := TotalWeight(Kruskal(pts))
			if math.Abs(wp-wk) > 1e-9*math.Max(1, wp) {
				t.Fatalf("n=%d seed=%d: Prim weight %.12g != Kruskal weight %.12g", n, seed, wp, wk)
			}
		}
	}
}

// TestLineMSTMatchesPrim checks the 1-D specialization against the general
// algorithm on collinear instances.
func TestLineMSTMatchesPrim(t *testing.T) {
	r := rng.New(42)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 500, Y: 0}
	}
	le, err := LineMST(pts)
	if err != nil {
		t.Fatalf("LineMST: %v", err)
	}
	if got, want := TotalWeight(le), TotalWeight(Prim(pts)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("LineMST weight %.12g != Prim weight %.12g", got, want)
	}
	if _, err := LineMST([]geom.Point{{X: 0, Y: 1}}); err == nil {
		t.Fatal("LineMST accepted an off-axis point")
	}
}

// TestTreeStructure builds the convergecast tree and checks its invariants
// plus the per-node uplink bookkeeping.
func TestTreeStructure(t *testing.T) {
	pts := randomPoints(150, 7, 1000)
	tree, err := NewMSTTree(pts, 3)
	if err != nil {
		t.Fatalf("NewMSTTree: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Sink != 3 || tree.N() != 150 || len(tree.Links) != 149 {
		t.Fatalf("tree shape wrong: sink=%d n=%d links=%d", tree.Sink, tree.N(), len(tree.Links))
	}
	sizes := tree.SubtreeSizes()
	if sizes[tree.Sink] != tree.N() {
		t.Fatalf("sink subtree size %d != n %d", sizes[tree.Sink], tree.N())
	}
	for v := 0; v < tree.N(); v++ {
		path := tree.PathToSink(v)
		if path[len(path)-1] != tree.Sink {
			t.Fatalf("PathToSink(%d) does not end at sink", v)
		}
		if len(path)-1 != tree.Depth[v] {
			t.Fatalf("PathToSink(%d) length %d inconsistent with depth %d", v, len(path)-1, tree.Depth[v])
		}
	}
}

// TestBuildRejectsBadEdges exercises the error paths of Build.
func TestBuildRejectsBadEdges(t *testing.T) {
	pts := randomPoints(4, 1, 10)
	if _, err := Build(pts, []Edge{{U: 0, V: 1}}, 0); err == nil {
		t.Fatal("Build accepted too few edges")
	}
	cyc := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}
	if _, err := Build(pts, cyc, 0); err == nil {
		t.Fatal("Build accepted a cycle")
	}
	if _, err := Build(pts, Prim(pts), 99); err == nil {
		t.Fatal("Build accepted an out-of-range sink")
	}
}

// edgeKey normalizes an edge to its sorted endpoint pair.
func edgeKey(e Edge) [2]int {
	if e.U > e.V {
		return [2]int{e.V, e.U}
	}
	return [2]int{e.U, e.V}
}

// sameEdges reports whether two edge lists describe the same undirected
// edge set.
func sameEdges(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[[2]int]bool, len(a))
	for _, e := range a {
		set[edgeKey(e)] = true
	}
	for _, e := range b {
		if !set[edgeKey(e)] {
			return false
		}
	}
	return true
}

// clusteredPoints bunches points into tight far-apart clusters, the
// adversarial layout for the grid ring search (late Borůvka rounds must
// reach across wide empty space).
func clusteredPoints(n int, seed uint64) []geom.Point {
	r := rng.New(seed)
	centers := []geom.Point{{X: 0, Y: 0}, {X: 5000, Y: 100}, {X: 2000, Y: 4000}, {X: 4800, Y: 4900}}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[int(r.Uint64()%uint64(len(centers)))]
		pts[i] = c.Add(geom.Point{X: r.NormFloat64() * 8, Y: r.NormFloat64() * 8})
	}
	return pts
}

// TestEMSTMatchesPrim: the grid Borůvka must reproduce the dense oracle's
// edge set exactly on jittered pointsets (where the MST is unique), uniform
// and clustered, above and below the grid cutoff.
func TestEMSTMatchesPrim(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		for _, n := range []int{2, 50, 300, 1500} {
			pts := randomPoints(n, seed*31+uint64(n), 1000)
			if !sameEdges(EMST(pts), Prim(pts)) {
				t.Fatalf("uniform n=%d seed=%d: EMST edge set differs from Prim", n, seed)
			}
			cl := clusteredPoints(n, seed*37+uint64(n))
			if !sameEdges(EMST(cl), Prim(cl)) {
				t.Fatalf("clustered n=%d seed=%d: EMST edge set differs from Prim", n, seed)
			}
		}
	}
}

// TestEMSTAnnulus exercises strongly non-uniform density (the annulus
// scenario shape: radii spread over decades).
func TestEMSTAnnulus(t *testing.T) {
	r := rng.New(9)
	n := 800
	pts := make([]geom.Point, n)
	for i := range pts {
		rad := math.Pow(10, r.Float64()*4) // 1..1e4
		th := r.Float64() * 2 * math.Pi
		pts[i] = geom.Point{X: rad * math.Cos(th), Y: rad * math.Sin(th)}
	}
	if !sameEdges(EMST(pts), Prim(pts)) {
		t.Fatal("annulus: EMST edge set differs from Prim")
	}
}

// TestEMSTTieHeavy: on an exact integer grid every nearest-neighbor
// distance ties, so this pins the Kruskal-order tie-breaking — the result
// must still be a spanning tree of minimum total weight.
func TestEMSTTieHeavy(t *testing.T) {
	var pts []geom.Point
	for y := 0; y < 30; y++ {
		for x := 0; x < 30; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	got := EMST(pts)
	if len(got) != len(pts)-1 {
		t.Fatalf("EMST returned %d edges for %d points", len(got), len(pts))
	}
	wantW := TotalWeight(Prim(pts))
	if gotW := TotalWeight(got); math.Abs(gotW-wantW) > 1e-9*wantW {
		t.Fatalf("tie-heavy: EMST weight %.12g != optimum %.12g", gotW, wantW)
	}
	if _, err := Build(pts, got, 0); err != nil {
		t.Fatalf("EMST edges do not form a spanning tree: %v", err)
	}
}

// TestEMSTSupercellSkip pins the supercell-skipping round structure at sizes
// where whole coarse cells merge early: the edge set must stay identical to
// the dense Prim oracle on uniform, clustered, and annulus geometry, and on
// the uniform instance — where components' best outgoing candidates sit well
// inside the 2-cell skip radius — the skip must actually engage, so the
// optimization cannot silently regress into dead code.
func TestEMSTSupercellSkip(t *testing.T) {
	annulus := func(n int, seed uint64) []geom.Point {
		r := rng.New(seed)
		pts := make([]geom.Point, n)
		for i := range pts {
			rad := math.Pow(10, r.Float64()*4)
			th := r.Float64() * 2 * math.Pi
			pts[i] = geom.Point{X: rad * math.Cos(th), Y: rad * math.Sin(th)}
		}
		return pts
	}
	cases := []struct {
		name      string
		pts       []geom.Point
		wantSkips bool
	}{
		{"uniform-4000", randomPoints(4000, 51, 1000), true},
		{"cluster-4000", clusteredPoints(4000, 52), false},
		{"annulus-3000", annulus(3000, 53), false},
	}
	for _, tc := range cases {
		var st emstStats
		edges, err := emstCtx(context.Background(), tc.pts, &st)
		if err != nil {
			t.Fatalf("%s: emstCtx: %v", tc.name, err)
		}
		if !sameEdges(edges, Prim(tc.pts)) {
			t.Fatalf("%s: supercell-skipping EMST edge set differs from Prim", tc.name)
		}
		if st.Rounds == 0 {
			t.Fatalf("%s: stats not collected", tc.name)
		}
		if tc.wantSkips && st.SkippedPoints == 0 {
			t.Fatalf("%s: supercell skip never engaged (supercells=%d)", tc.name, st.Supercells)
		}
		t.Logf("%s: rounds=%d supercells=%d skipped_points=%d",
			tc.name, st.Rounds, st.Supercells, st.SkippedPoints)
	}
}

// TestEMSTSupercellTieHeavy re-pins the tie-breaking guarantee on the exact
// integer grid at a size where supercells form: equal-weight candidates must
// not be skipped into a suboptimal (or non-spanning) choice. Edge sets may
// legitimately differ from Prim's under ties, so the assertion is spanning +
// optimal total weight, like TestEMSTTieHeavy.
func TestEMSTSupercellTieHeavy(t *testing.T) {
	var pts []geom.Point
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	var st emstStats
	got, err := emstCtx(context.Background(), pts, &st)
	if err != nil {
		t.Fatalf("emstCtx: %v", err)
	}
	if len(got) != len(pts)-1 {
		t.Fatalf("EMST returned %d edges for %d points", len(got), len(pts))
	}
	wantW := TotalWeight(Prim(pts))
	if gotW := TotalWeight(got); math.Abs(gotW-wantW) > 1e-9*wantW {
		t.Fatalf("tie-heavy: EMST weight %.12g != optimum %.12g", gotW, wantW)
	}
	if _, err := Build(pts, got, 0); err != nil {
		t.Fatalf("EMST edges do not form a spanning tree: %v", err)
	}
	t.Logf("tie-heavy 64x64: rounds=%d supercells=%d skipped_points=%d",
		st.Rounds, st.Supercells, st.SkippedPoints)
}

// TestEMSTDegenerate: coincident points (zero extent) must fall back to the
// dense path and still span.
func TestEMSTDegenerate(t *testing.T) {
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Point{X: 1, Y: 2}
	}
	edges := EMST(pts)
	if len(edges) != len(pts)-1 {
		t.Fatalf("degenerate: %d edges for %d points", len(edges), len(pts))
	}
	if _, err := Build(pts, edges, 0); err != nil {
		t.Fatalf("degenerate edges do not span: %v", err)
	}
}

// BenchmarkMST compares the dense Prim with the grid Borůvka at a
// pipeline-realistic size.
func BenchmarkMST(b *testing.B) {
	pts := randomPoints(10000, 42, 1000)
	b.Run("prim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Prim(pts)
		}
	})
	b.Run("emst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EMST(pts)
		}
	})
}
