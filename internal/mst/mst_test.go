package mst

import (
	"math"
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/rng"
)

func randomPoints(n int, seed uint64, side float64) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	return pts
}

// TestPrimKruskalAgree cross-checks the two MST constructions by total
// weight on random pointsets: distinct algorithms, identical optimum.
func TestPrimKruskalAgree(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, n := range []int{2, 3, 10, 60, 200} {
			pts := randomPoints(n, seed*100+uint64(n), 1000)
			wp := TotalWeight(Prim(pts))
			wk := TotalWeight(Kruskal(pts))
			if math.Abs(wp-wk) > 1e-9*math.Max(1, wp) {
				t.Fatalf("n=%d seed=%d: Prim weight %.12g != Kruskal weight %.12g", n, seed, wp, wk)
			}
		}
	}
}

// TestLineMSTMatchesPrim checks the 1-D specialization against the general
// algorithm on collinear instances.
func TestLineMSTMatchesPrim(t *testing.T) {
	r := rng.New(42)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 500, Y: 0}
	}
	le, err := LineMST(pts)
	if err != nil {
		t.Fatalf("LineMST: %v", err)
	}
	if got, want := TotalWeight(le), TotalWeight(Prim(pts)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("LineMST weight %.12g != Prim weight %.12g", got, want)
	}
	if _, err := LineMST([]geom.Point{{X: 0, Y: 1}}); err == nil {
		t.Fatal("LineMST accepted an off-axis point")
	}
}

// TestTreeStructure builds the convergecast tree and checks its invariants
// plus the per-node uplink bookkeeping.
func TestTreeStructure(t *testing.T) {
	pts := randomPoints(150, 7, 1000)
	tree, err := NewMSTTree(pts, 3)
	if err != nil {
		t.Fatalf("NewMSTTree: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Sink != 3 || tree.N() != 150 || len(tree.Links) != 149 {
		t.Fatalf("tree shape wrong: sink=%d n=%d links=%d", tree.Sink, tree.N(), len(tree.Links))
	}
	sizes := tree.SubtreeSizes()
	if sizes[tree.Sink] != tree.N() {
		t.Fatalf("sink subtree size %d != n %d", sizes[tree.Sink], tree.N())
	}
	for v := 0; v < tree.N(); v++ {
		path := tree.PathToSink(v)
		if path[len(path)-1] != tree.Sink {
			t.Fatalf("PathToSink(%d) does not end at sink", v)
		}
		if len(path)-1 != tree.Depth[v] {
			t.Fatalf("PathToSink(%d) length %d inconsistent with depth %d", v, len(path)-1, tree.Depth[v])
		}
	}
}

// TestBuildRejectsBadEdges exercises the error paths of Build.
func TestBuildRejectsBadEdges(t *testing.T) {
	pts := randomPoints(4, 1, 10)
	if _, err := Build(pts, []Edge{{U: 0, V: 1}}, 0); err == nil {
		t.Fatal("Build accepted too few edges")
	}
	cyc := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}
	if _, err := Build(pts, cyc, 0); err == nil {
		t.Fatal("Build accepted a cycle")
	}
	if _, err := Build(pts, Prim(pts), 99); err == nil {
		t.Fatal("Build accepted an out-of-range sink")
	}
}
