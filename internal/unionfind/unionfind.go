// Package unionfind implements a disjoint-set-union structure with path
// compression and union by rank. It backs Kruskal's MST algorithm and the
// connectivity assertions in the schedule verifier.
package unionfind

// DSU is a disjoint-set-union over the integers [0, n). Construct with New.
type DSU struct {
	parent []int
	rank   []byte
	sets   int
}

// New returns a DSU with n singleton sets {0}, {1}, …, {n-1}.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int, n),
		rank:   make([]byte, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Len returns n, the size of the ground set.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of x and y and reports whether a merge happened
// (false when they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (d *DSU) Connected(x, y int) bool { return d.Find(x) == d.Find(y) }
