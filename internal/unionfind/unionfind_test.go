package unionfind

import "testing"

func TestUnionFind(t *testing.T) {
	d := New(6)
	if d.Len() != 6 || d.Sets() != 6 {
		t.Fatalf("fresh DSU: len=%d sets=%d", d.Len(), d.Sets())
	}
	if !d.Union(0, 1) || !d.Union(1, 2) {
		t.Fatal("Union of disjoint sets returned false")
	}
	if d.Union(0, 2) {
		t.Fatal("Union of joined sets returned true")
	}
	if d.Sets() != 4 {
		t.Fatalf("Sets = %d, want 4", d.Sets())
	}
	if !d.Connected(0, 2) || d.Connected(0, 3) {
		t.Fatal("Connected wrong")
	}
	if d.Find(0) != d.Find(2) {
		t.Fatal("Find roots differ within a set")
	}
	// Merge everything and confirm a single set remains.
	for i := 0; i < 5; i++ {
		d.Union(i, i+1)
	}
	if d.Sets() != 1 {
		t.Fatalf("Sets = %d after full merge, want 1", d.Sets())
	}
}
