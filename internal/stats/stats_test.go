package stats

import (
	"math"
	"testing"
)

// TestLogStarReferences pins the documented reference values.
func TestLogStarReferences(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0},
		{2, 1}, {4, 2}, {16, 3}, {65536, 4},
		{3, 2}, {5, 3},
	}
	for _, c := range cases {
		if got := LogStar(c.x); got != c.want {
			t.Errorf("LogStar(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

// TestLogStarFromLog2 checks the large-value form, including Δ = 2^65536
// which overflows float64 as a plain value.
func TestLogStarFromLog2(t *testing.T) {
	if got := LogStarFromLog2(65536); got != 5 {
		t.Errorf("LogStarFromLog2(65536) = %d, want 5 (log* of 2^65536)", got)
	}
	if got := LogStarFromLog2(0); got != 0 {
		t.Errorf("LogStarFromLog2(0) = %d, want 0", got)
	}
	if got := LogStarFromLog2(-3); got != 0 {
		t.Errorf("LogStarFromLog2(-3) = %d, want 0", got)
	}
	// Consistency with the direct form where both are representable.
	for _, y := range []float64{1, 2, 4, 10, 100} {
		if got, want := LogStarFromLog2(y), LogStar(math.Pow(2, y)); got != want {
			t.Errorf("LogStarFromLog2(%g) = %d, LogStar(2^%g) = %d", y, got, y, want)
		}
	}
}

// TestPercentileEdges covers the edge cases: empty input, clamped p,
// single element, and interpolation.
func TestPercentileEdges(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile(single, 99) = %g, want 7", got)
	}
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	if got := Percentile(xs, -10); got != 1 {
		t.Errorf("Percentile(p<0) = %g, want min 1", got)
	}
	if got := Percentile(xs, 200); got != 4 {
		t.Errorf("Percentile(p>100) = %g, want max 4", got)
	}
	if got, want := Percentile(xs, 50), 2.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Percentile(50) = %g, want %g", got, want)
	}
	if got, want := Percentile(xs, 25), 1.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("Percentile(25) = %g, want %g", got, want)
	}
	if got, want := Median(xs), 2.5; got != want {
		t.Errorf("Median = %g, want %g", got, want)
	}
	// Percentile must not mutate its input.
	if xs[0] != 4 || xs[3] != 2 {
		t.Errorf("Percentile sorted the caller's slice: %v", xs)
	}
}

func TestLogLog(t *testing.T) {
	if got := LogLog(2); got != 0 {
		t.Errorf("LogLog(2) = %g, want 0", got)
	}
	if got := LogLog(0); got != 0 {
		t.Errorf("LogLog(0) = %g, want 0", got)
	}
	if got, want := LogLog(16), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("LogLog(16) = %g, want %g", got, want)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/singleton descriptive stats not zero")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty slice not ±Inf")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("LinearFit = (%g, %g), want (2, 1)", slope, intercept)
	}
	slope, intercept = LinearFit([]float64{5, 5}, []float64{1, 3})
	if slope != 0 || intercept != 2 {
		t.Errorf("degenerate LinearFit = (%g, %g), want (0, 2)", slope, intercept)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{-1, 0.1, 0.5, 0.9, 2}, 0, 1, 2)
	// Bins are [0, 0.5) and [0.5, 1]; -1 clamps low, 2 clamps high.
	if len(counts) != 2 || counts[0] != 2 || counts[1] != 3 {
		t.Errorf("Histogram = %v, want [2 3] (out-of-range clamped)", counts)
	}
	if Histogram(nil, 0, 1, 0) != nil || Histogram(nil, 1, 0, 3) != nil {
		t.Error("invalid Histogram parameters should return nil")
	}
}

// TestLogStarNonFinite is the regression test for the former non-termination:
// LogStar(+Inf) looped forever because math.Log2(+Inf) == +Inf. Non-finite
// input must return the sentinel immediately, in both forms.
func TestLogStarNonFinite(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	if got := LogStar(inf); got != LogStarUndefined {
		t.Errorf("LogStar(+Inf) = %d, want %d", got, LogStarUndefined)
	}
	if got := LogStar(nan); got != LogStarUndefined {
		t.Errorf("LogStar(NaN) = %d, want %d", got, LogStarUndefined)
	}
	if got := LogStar(math.Inf(-1)); got != 0 {
		t.Errorf("LogStar(-Inf) = %d, want 0 (below the x<=1 convention)", got)
	}
	if got := LogStarFromLog2(inf); got != LogStarUndefined {
		t.Errorf("LogStarFromLog2(+Inf) = %d, want %d", got, LogStarUndefined)
	}
	if got := LogStarFromLog2(nan); got != LogStarUndefined {
		t.Errorf("LogStarFromLog2(NaN) = %d, want %d", got, LogStarUndefined)
	}
	// The overflow-range path the experiment layer relies on: a diversity
	// whose float64 value would be +Inf is finite in log2 form.
	if got := LogStarFromLog2(1100); got != 1+LogStar(1100) {
		t.Errorf("LogStarFromLog2(1100) = %d, want %d", got, 1+LogStar(1100))
	}
	if got := LogStar(math.MaxFloat64); got != 5 {
		t.Errorf("LogStar(MaxFloat64) = %d, want 5", got)
	}
}
