// Package stats collects the small numeric helpers shared by the experiment
// harness: the iterated logarithm log*, double logarithm, descriptive
// statistics, and least-squares fits used to report empirical growth rates.
package stats

import (
	"math"
	"sort"
)

// LogStarUndefined is the sentinel LogStar and LogStarFromLog2 return for
// non-finite input (+Inf or NaN), where the iterated logarithm has no
// meaningful value: math.Log2(+Inf) == +Inf, so iterating would never
// terminate. Callers normalizing by log* should clamp the sentinel away
// (e.g. with max(1, ·)).
const LogStarUndefined = -1

// LogStar returns log₂* x: the number of times log₂ must be iterated,
// starting from x, before the result is at most 1. By convention
// LogStar(x) = 0 for x <= 1; LogStar(+Inf) and LogStar(NaN) return
// LogStarUndefined.
//
// Reference values: LogStar(2)=1, LogStar(4)=2, LogStar(16)=3,
// LogStar(65536)=4, LogStar(2^65536)=5.
func LogStar(x float64) int {
	if math.IsInf(x, 1) || math.IsNaN(x) {
		return LogStarUndefined
	}
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
	}
	return n
}

// LogStarFromLog2 returns log₂* of a value given as its base-2 logarithm.
// This lets callers evaluate log* of quantities too large for float64
// (e.g. Δ = 2^65536 is passed as log2Δ = 65536).
// LogStarFromLog2(y) == LogStar(2^y) for finite y > 0; non-finite input
// (+Inf or NaN) returns LogStarUndefined.
func LogStarFromLog2(log2x float64) int {
	if math.IsInf(log2x, 1) || math.IsNaN(log2x) {
		return LogStarUndefined
	}
	if log2x <= 0 {
		return 0 // x = 2^log2x <= 1
	}
	return 1 + LogStar(log2x)
}

// LogLog returns max(0, log₂ log₂ x); 0 for x <= 2.
func LogLog(x float64) float64 {
	if x <= 2 {
		return 0
	}
	return math.Log2(math.Log2(x))
}

// LogLogFromLog2 returns log₂ log₂ of a value given as its base-2
// logarithm: LogLogFromLog2(y) == LogLog(2^y). Like LogLog it clamps to 0
// for x <= 2 (y <= 1), and it stays finite for quantities whose direct
// float64 value would overflow.
func LogLogFromLog2(log2x float64) float64 {
	if log2x <= 1 {
		return 0
	}
	return math.Log2(log2x)
}

// Mean returns the arithmetic mean, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum, -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation, 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// clamps p into range.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// LinearFit returns the least-squares slope and intercept of y against x.
// It is used to report empirical growth exponents, e.g. fitting
// log(schedule length) against log log Δ. Degenerate inputs (fewer than two
// points, or zero variance in x) return slope 0 and intercept Mean(y).
func LinearFit(x, y []float64) (slope, intercept float64) {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0, Mean(y)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped to the first/last bin. It returns nil when
// nbins <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// CountAtMost returns how many values are <= bound.
func CountAtMost(xs []float64, bound float64) int {
	n := 0
	for _, x := range xs {
		if x <= bound {
			n++
		}
	}
	return n
}
