// Package scheduler defines the pluggable strategy layer between the
// conflict-graph machinery and the experiment harness: a Strategy turns a
// link set into a TDMA schedule, and the registry lets the CLI and the batch
// runner fan out over algorithms the same way they fan out over scenarios,
// sizes, seeds and power schemes.
//
// Four strategies implement the interface:
//
//   - greedy      — one conflict graph over all links, first-fit colored in
//     non-increasing length order (Sec. 3 / Theorem 2's coloring half);
//   - lengthclass — the paper's constructive algorithm: partition the links
//     into dyadic length classes, color each class's conflict graph
//     separately (splitting slots by the Theorem-2 refinement on the G_arb
//     graph), and round-robin interleave the per-class schedules
//     (Theorems 1 and 3);
//   - dsatur      — DSATUR over the same global conflict graph, a stronger
//     pure graph-coloring baseline;
//   - jp          — parallel Jones–Plassmann random-priority coloring of
//     the same global conflict graph (the shared-memory analogue of the
//     distributed colorings the paper's line of work builds on);
//     deterministic for its fixed internal seed regardless of GOMAXPROCS;
//   - naive       — protocol-model distance TDMA: links conflict whenever
//     they are within γ times the longer length of each other, colored
//     first-fit in input order with no SINR or length awareness — the
//     Sec. 6 strawman.
//
// Strategies are deterministic in (links, Config), so batch results stay
// reproducible regardless of worker scheduling.
package scheduler

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"aggrate/internal/coloring"
	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/schedule"
	"aggrate/internal/sinr"
)

// Graph kinds selectable in a Config, matching the paper's three conflict
// graphs (see internal/conflict for the threshold functions).
const (
	GraphGamma     = "gamma"
	GraphOblivious = "obl"
	GraphArbitrary = "arb"
)

// Config carries the per-run parameters a strategy needs: which conflict
// graph to schedule against and at what conflict parameter. The experiment
// layer escalates Gamma and re-invokes the strategy until the schedule
// SINR-verifies, so Schedule must be monotone-friendly: larger Gamma may
// only make slots sparser.
type Config struct {
	// Graph selects the conflict-threshold family (gamma, obl, arb).
	Graph string
	// Gamma is the conflict parameter γ. For the naive strategy it doubles
	// as the protocol-model guard-zone multiple.
	Gamma float64
	// Delta is the exponent of G^δ_γ (Graph == "obl").
	Delta float64
	// SINR supplies α for G_arb and the additive operator of the
	// Theorem-2 refinement.
	SINR sinr.Params
	// WS optionally supplies a reusable coloring workspace, so a batch
	// runner's per-worker scratch survives across instances. nil means the
	// strategy allocates a fresh one. A Workspace is not safe for concurrent
	// use; two simultaneous Schedule calls must not share one.
	WS *coloring.Workspace
	// Lookahead, when non-nil, serves conflict-graph construction through a
	// γ-lookahead cache: the first build per link set is strength-annotated
	// at the lookahead ceiling, and later attempts of a γ-escalation ladder
	// (any γ ≤ Lookahead.GammaMax()) are materialized by a linear filter
	// scan instead of a grid rebuild. All strategies route their builds —
	// including lengthclass's per-class graphs — through it. Graphs are
	// bit-identical either way; only Diag's build-timing split changes.
	Lookahead *conflict.Lookahead
}

// ConflictFamily materializes the γ-indexed conflict-threshold family the
// Config selects; ConflictFamily().At(c.Gamma) is the concrete Func. The
// factored (γ, h) form is what lets a lookahead build at an escalated γ
// serve every smaller γ exactly.
func (c Config) ConflictFamily() (conflict.Family, error) {
	switch c.Graph {
	case GraphGamma:
		return conflict.GammaFamily(), nil
	case GraphOblivious:
		return conflict.PowerLawFamily(c.Delta), nil
	case GraphArbitrary:
		return conflict.LogThresholdFamily(c.SINR.Alpha), nil
	default:
		return conflict.Family{}, fmt.Errorf("scheduler: unknown graph kind %q", c.Graph)
	}
}

// ConflictFunc materializes the conflict-threshold function the Config
// selects, at its concrete γ.
func (c Config) ConflictFunc() (conflict.Func, error) {
	fam, err := c.ConflictFamily()
	if err != nil {
		return conflict.Func{}, err
	}
	return fam.At(c.Gamma), nil
}

// Diag reports what a strategy did, for metrics and invariant checks.
type Diag struct {
	// Func is the conflict-threshold function whose graph every slot of the
	// returned schedule is an independent set of. For graph-coloring
	// strategies it is the Config's function; for naive it is the
	// protocol-model threshold.
	Func conflict.Func
	// Graph is the global conflict graph, when the strategy built one
	// (nil for lengthclass, which only builds per-class graphs).
	Graph *conflict.Graph
	// Colors is the per-link coloring when the schedule is a proper
	// coloring (slot k = color k); nil for interleaved schedules.
	Colors []int
	// NumColors is the schedule period (total distinct slots).
	NumColors int
	// Classes is the number of non-empty dyadic length classes
	// (lengthclass only).
	Classes int
	// RefineSets is the largest Theorem-2 refinement partition applied
	// within a class (lengthclass on G_arb only).
	RefineSets int
	// Edges, MaxDegree, AvgDegree describe the conflict graph(s) the
	// strategy colored; for lengthclass they aggregate over the per-class
	// graphs (cross-class edges are never materialized).
	Edges     int
	MaxDegree int
	AvgDegree float64
	// BuildSec, OrderSec and ColorSec split the strategy's wall-clock
	// between graph construction, vertex-order computation (the length sort
	// of greedy/lengthclass; zero for orderless colorings), and the
	// coloring/interleaving itself.
	BuildSec float64
	OrderSec float64
	ColorSec float64
	// BuildFilterSec is the wall-clock of lookahead cache service — link-set
	// hashing plus the γ filter scan — kept out of BuildSec so the
	// full-build vs filter split is visible in metrics. BuildReused reports
	// that at least one conflict graph of this Schedule call was served by
	// filtering a cached strength-annotated build instead of a fresh build.
	BuildFilterSec float64
	BuildReused    bool
	// BuildStats aggregates the bucketed conflict build's pruning counters
	// over every graph this Schedule call constructed (per-class graphs
	// included) — the hardware-independent candidate-efficiency signal the
	// bench regression gate tracks. Lookahead-filtered graphs report the
	// annotated build's counters.
	BuildStats conflict.BuildStats
}

// Strategy is one scheduling algorithm. Schedule must return a schedule over
// exactly the given links (same indices) in which every link transmits at
// least once per period. Schedule must honor ctx: a cancel or deadline stops
// the conflict-graph build at a chunk boundary and returns ctx.Err() instead
// of a schedule. Results are deterministic in (links, cfg) whenever ctx does
// not fire.
//
// Every strategy also honors the stable-slot-order contract: each emitted
// slot lists its members in strictly increasing link-index order. The
// incremental verification cache (schedule.VerifyCache) hashes slot content
// order-insensitively, so correctness never depends on this — but stable
// order keeps schedules byte-comparable across runs and strategies, and the
// invariant is pinned by TestStableSlotOrder.
type Strategy interface {
	Name() string
	Schedule(ctx context.Context, links []geom.Link, cfg Config) (*schedule.Schedule, Diag, error)
}

// Strategy names, as accepted by Lookup and the CLI --algo flag.
const (
	Greedy      = "greedy"
	LengthClass = "lengthclass"
	DSatur      = "dsatur"
	JP          = "jp"
	Naive       = "naive"
)

// Names lists the registered strategies in canonical order.
func Names() []string { return []string{Greedy, LengthClass, DSatur, JP, Naive} }

// Lookup resolves a strategy by name.
func Lookup(name string) (Strategy, error) {
	switch name {
	case Greedy:
		return greedyStrategy{}, nil
	case LengthClass:
		return lengthClassStrategy{}, nil
	case DSatur:
		return dsaturStrategy{}, nil
	case JP:
		return jpStrategy{}, nil
	case Naive:
		return naiveStrategy{}, nil
	default:
		return nil, fmt.Errorf("scheduler: unknown algorithm %q (have %v)", name, Names())
	}
}

// All returns every registered strategy in canonical order.
func All() []Strategy {
	out := make([]Strategy, 0, len(Names()))
	for _, n := range Names() {
		s, _ := Lookup(n)
		out = append(out, s)
	}
	return out
}

// buildGraph constructs the conflict graph of links under fam.At(gamma),
// accumulating timings into d. With cfg.Lookahead set it routes through the
// γ-lookahead cache (full annotated build on first contact with a link set,
// filter scan afterwards); otherwise it is a plain BuildCtx. The resulting
// graph is bit-identical either way.
func buildGraph(ctx context.Context, links []geom.Link, fam conflict.Family, gamma float64,
	cfg Config, d *Diag) (*conflict.Graph, error) {
	if cfg.Lookahead != nil {
		g, st, err := cfg.Lookahead.GraphFor(ctx, links, fam, gamma)
		d.BuildSec += st.BuildSec
		d.BuildFilterSec += st.FilterSec
		if st.Reused {
			d.BuildReused = true
		}
		if g != nil {
			d.BuildStats.Add(g.Stats)
		}
		return g, err
	}
	t0 := time.Now()
	g, err := conflict.BuildCtx(ctx, links, fam.At(gamma))
	d.BuildSec += time.Since(t0).Seconds()
	if g != nil {
		d.BuildStats.Add(g.Stats)
	}
	return g, err
}

// colorWith is the shared body of the single-graph strategies: build the
// conflict graph for fam at cfg.Gamma (through the lookahead cache when the
// Config carries one), color it with the supplied coloring (which gets the
// Config's Workspace — or a fresh one — and a pre-sized palette, and may
// split its time into Diag.OrderSec via the diag pointer), and emit the
// coloring schedule. A ctx cancel surfaces from the graph build.
func colorWith(ctx context.Context, links []geom.Link, fam conflict.Family, cfg Config,
	color func(*conflict.Graph, *coloring.Workspace, []int, *Diag) int) (*schedule.Schedule, Diag, error) {
	f := fam.At(cfg.Gamma)
	d := Diag{Func: f}
	g, err := buildGraph(ctx, links, fam, cfg.Gamma, cfg, &d)
	if err != nil {
		return nil, d, err
	}
	d.Graph = g

	ws := cfg.WS
	t0 := time.Now()
	colors := make([]int, g.N())
	if ws == nil {
		ws = coloring.NewWorkspace()
	}
	numColors := color(g, ws, colors, &d)
	d.ColorSec = time.Since(t0).Seconds() - d.OrderSec
	sched, err := schedule.FromColoring(links, colors)
	if err != nil {
		return nil, d, err
	}
	d.Colors, d.NumColors = colors, numColors
	d.Edges, d.MaxDegree, d.AvgDegree = g.Edges(), g.MaxDegree(), g.AverageDegree()
	return sched, d, nil
}

// greedyStrategy is the existing pipeline: global conflict graph, first-fit
// in non-increasing length order.
type greedyStrategy struct{}

func (greedyStrategy) Name() string { return Greedy }

func (greedyStrategy) Schedule(ctx context.Context, links []geom.Link, cfg Config) (*schedule.Schedule, Diag, error) {
	fam, err := cfg.ConflictFamily()
	if err != nil {
		return nil, Diag{}, err
	}
	return colorWith(ctx, links, fam, cfg, func(g *conflict.Graph, ws *coloring.Workspace, colors []int, d *Diag) int {
		t0 := time.Now()
		order := ws.LengthOrder(g)
		d.OrderSec = time.Since(t0).Seconds()
		return ws.FirstFit(g, order, colors)
	})
}

// dsaturStrategy colors the same conflict graph with DSATUR.
type dsaturStrategy struct{}

func (dsaturStrategy) Name() string { return DSatur }

func (dsaturStrategy) Schedule(ctx context.Context, links []geom.Link, cfg Config) (*schedule.Schedule, Diag, error) {
	fam, err := cfg.ConflictFamily()
	if err != nil {
		return nil, Diag{}, err
	}
	return colorWith(ctx, links, fam, cfg, func(g *conflict.Graph, ws *coloring.Workspace, colors []int, _ *Diag) int {
		return ws.DSatur(g, colors)
	})
}

// jpSeed is the fixed priority seed of the jp strategy: schedules stay
// deterministic in (links, Config) like every other strategy.
const jpSeed = 0x51ce5e11a9b6d7c3

// jpStrategy colors the same conflict graph with the parallel
// Jones–Plassmann random-priority coloring.
type jpStrategy struct{}

func (jpStrategy) Name() string { return JP }

func (jpStrategy) Schedule(ctx context.Context, links []geom.Link, cfg Config) (*schedule.Schedule, Diag, error) {
	fam, err := cfg.ConflictFamily()
	if err != nil {
		return nil, Diag{}, err
	}
	return colorWith(ctx, links, fam, cfg, func(g *conflict.Graph, ws *coloring.Workspace, colors []int, _ *Diag) int {
		return ws.JP(g, jpSeed, colors)
	})
}

// naiveStrategy is the Sec. 6 strawman: a protocol-model TDMA that silences
// everything within γ·l_max of a transmitting pair and colors links first-fit
// in input order, blind to both SINR and the length structure. The threshold
// f(x) = γ·x gives d(i,j) ≤ γ·max(l_i, l_j) as the conflict condition; it is
// monotone (so the bucketed build stays exact) but deliberately not
// sub-linear — this strategy is outside the paper's framework on purpose.
type naiveStrategy struct{}

func (naiveStrategy) Name() string { return Naive }

// NaiveFunc returns the protocol-model threshold f(x) = k·x used by the
// naive strategy with guard-zone multiple k.
func NaiveFunc(k float64) conflict.Func {
	return conflict.Func{
		Name: fmt.Sprintf("protocol(%g)", k),
		Eval: func(x float64) float64 { return k * x },
	}
}

// NaiveFamily is NaiveFunc in factored (γ, h) form — h(x) = x — so the
// protocol-model strawman rides the same γ-lookahead cache as the paper's
// families.
func NaiveFamily() conflict.Family {
	return conflict.Family{
		Name: "protocol",
		H:    func(x float64) float64 { return x },
		At:   NaiveFunc,
	}
}

func (naiveStrategy) Schedule(ctx context.Context, links []geom.Link, cfg Config) (*schedule.Schedule, Diag, error) {
	if _, err := cfg.ConflictFamily(); err != nil {
		return nil, Diag{}, err // reject bogus graph kinds uniformly
	}
	return colorWith(ctx, links, NaiveFamily(), cfg, func(g *conflict.Graph, ws *coloring.Workspace, colors []int, _ *Diag) int {
		return ws.FirstFit(g, coloring.IndexOrder(g.N()), colors)
	})
}

// lengthClassStrategy is the paper's constructive algorithm (Theorems 1
// and 3): partition the links into dyadic length classes — within a class
// lengths differ by less than a factor 2, so the class's conflict graph is
// near-uniform — color each class separately, and round-robin interleave the
// per-class schedules. On G_arb the Theorem-2 refinement additionally splits
// each color class into sets with I(i, S⁺ᵢ) < 1, the feasibility device of
// Theorem 3's global-power schedule.
//
// Cost note: on G_arb the per-class coloring.Refine is quadratic in the
// class size and re-runs on every γ escalation, so low-diversity instances
// (most links in one class, e.g. the grid scenario) pay the same O(m²) the
// --refine flag documents as "slow above ~20k links".
type lengthClassStrategy struct{}

func (lengthClassStrategy) Name() string { return LengthClass }

func (lengthClassStrategy) Schedule(ctx context.Context, links []geom.Link, cfg Config) (*schedule.Schedule, Diag, error) {
	fam, err := cfg.ConflictFamily()
	if err != nil {
		return nil, Diag{}, err
	}
	f := fam.At(cfg.Gamma)
	d := Diag{Func: f}
	if len(links) == 0 {
		return schedule.New(links, nil), d, nil
	}
	classes, err := LengthClasses(links)
	if err != nil {
		return nil, d, err
	}
	d.Classes = len(classes)

	// Per-class schedules, classes in increasing length order. classSlots[c]
	// lists the slots of class c in global link indices. One Workspace and
	// one densify scratch are threaded through all classes.
	ws := cfg.WS
	if ws == nil {
		ws = coloring.NewWorkspace()
	}
	var densifyScratch []int
	classSlots := make([][][]int, len(classes))
	for c, idx := range classes {
		classLinks := make([]geom.Link, len(idx))
		for k, i := range idx {
			classLinks[k] = links[i]
		}
		// Per-class graphs route through the lookahead cache too: the class
		// partition is γ-independent, so on a retry each class's annotated
		// build is found by content hash and filtered down.
		g, err := buildGraph(ctx, classLinks, fam, cfg.Gamma, cfg, &d)
		if err != nil {
			return nil, d, err
		}
		d.Edges += g.Edges()
		if md := g.MaxDegree(); md > d.MaxDegree {
			d.MaxDegree = md
		}

		t0 := time.Now()
		order := ws.LengthOrder(g)
		d.OrderSec += time.Since(t0).Seconds()
		t0 = time.Now()
		colors := make([]int, g.N())
		numColors := ws.FirstFit(g, order, colors)
		// Slot key of class link k: its color, optionally subdivided by the
		// Theorem-2 refinement set on the arbitrary-power graph.
		slotOf := colors
		numSlots := numColors
		if cfg.Graph == GraphArbitrary {
			sets := coloring.Refine(classLinks, cfg.SINR)
			if len(sets) > d.RefineSets {
				d.RefineSets = len(sets)
			}
			setOf := make([]int, len(classLinks))
			for s, set := range sets {
				for _, k := range set {
					setOf[k] = s
				}
			}
			// Dense renumbering of the non-empty (color, set) pairs, ordered
			// by color then set.
			for k := range classLinks {
				slotOf[k] = colors[k]*len(sets) + setOf[k]
			}
			numSlots = densify(slotOf, &densifyScratch)
		}
		slots := make([][]int, numSlots)
		for k, s := range slotOf {
			slots[s] = append(slots[s], idx[k])
		}
		classSlots[c] = slots
		d.ColorSec += time.Since(t0).Seconds()
	}

	// Round-robin interleave: round r takes slot r of every class that still
	// has one, shortest class first — the paper's interleaving of per-class
	// schedules into one period of length Σ_c χ_c.
	var interleaved [][]int
	for r := 0; ; r++ {
		any := false
		for _, slots := range classSlots {
			if r < len(slots) {
				interleaved = append(interleaved, slots[r])
				any = true
			}
		}
		if !any {
			break
		}
	}
	sched := schedule.New(links, interleaved)
	d.NumColors = sched.Period()
	if n := len(links); n > 0 {
		d.AvgDegree = 2 * float64(d.Edges) / float64(n)
	}
	return sched, d, nil
}

// LengthClasses partitions link indices into dyadic length classes
// [l_min·2^c, l_min·2^(c+1)), dropping empty classes. The returned groups
// are ordered by increasing length and preserve input order within a group.
// Links with non-positive or non-finite lengths are rejected, as is a
// diversity too large for float64.
func LengthClasses(links []geom.Link) ([][]int, error) {
	lmin, lmax := 0.0, 0.0
	for i, l := range links {
		le := l.Length()
		if !(le > 0) || math.IsInf(le, 1) {
			return nil, fmt.Errorf("scheduler: link %d has unusable length %g", i, le)
		}
		if i == 0 || le < lmin {
			lmin = le
		}
		if le > lmax {
			lmax = le
		}
	}
	if len(links) == 0 {
		return nil, nil
	}
	ratio := lmax / lmin
	if !(ratio >= 1) || math.IsInf(ratio, 1) {
		return nil, fmt.Errorf("scheduler: length diversity %g not representable", ratio)
	}
	// Boundaries b_c = lmin·2^c, assigned by comparison (not floating log2)
	// so classification is exactly monotone in length — the same device as
	// the bucketed conflict build.
	bounds := []float64{lmin}
	for b := lmin * 2; b <= lmax; b *= 2 {
		bounds = append(bounds, b)
	}
	groups := make([][]int, len(bounds))
	for i, l := range links {
		le := l.Length()
		c := sort.SearchFloat64s(bounds, le)
		if c == len(bounds) || bounds[c] > le {
			c--
		}
		groups[c] = append(groups[c], i)
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out, nil
}

// densify renumbers arbitrary non-negative slot keys into the dense range
// [0, count) in place, preserving key order, and returns the count. It
// ranks by sorting a copy of the keys in *scratch (reused across calls and
// deduplicated in place) and binary-searching each key — no maps, which
// kept this on the lengthclass allocation profile.
func densify(keys []int, scratch *[]int) int {
	s := append((*scratch)[:0], keys...)
	sort.Ints(s)
	u := s[:0]
	for i, k := range s {
		if i == 0 || k != s[i-1] {
			u = append(u, k)
		}
	}
	*scratch = s
	for i, k := range keys {
		keys[i] = sort.SearchInts(u, k)
	}
	return len(u)
}
