package scheduler

import (
	"context"
	"math"
	"testing"

	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/mst"
	"aggrate/internal/scenario"
	"aggrate/internal/sinr"
)

func defaultConfig() Config {
	return Config{Graph: GraphOblivious, Gamma: 2, Delta: 0.5, SINR: sinr.DefaultParams()}
}

// instanceLinks materializes the MST link set of a scenario preset.
func instanceLinks(t *testing.T, preset string, n int, seed uint64) []geom.Link {
	t.Helper()
	sc, err := scenario.Lookup(preset)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := mst.NewMSTTree(sc.Generate(n, seed), 0)
	if err != nil {
		t.Fatal(err)
	}
	return tree.Links
}

func TestLookupAndNames(t *testing.T) {
	for _, name := range Names() {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("Lookup(bogus) did not error")
	}
	if got := len(All()); got != len(Names()) {
		t.Fatalf("All() has %d strategies, Names() %d", got, len(Names()))
	}
}

func TestUnknownGraphKindRejectedByEveryStrategy(t *testing.T) {
	links := instanceLinks(t, "uniform", 50, 1)
	cfg := defaultConfig()
	cfg.Graph = "bogus"
	for _, s := range All() {
		if _, _, err := s.Schedule(context.Background(), links, cfg); err == nil {
			t.Fatalf("%s: bogus graph kind did not error", s.Name())
		}
	}
}

func TestEmptyLinkSet(t *testing.T) {
	for _, s := range All() {
		sched, _, err := s.Schedule(context.Background(), nil, defaultConfig())
		if err != nil {
			t.Fatalf("%s: empty link set errored: %v", s.Name(), err)
		}
		if sched.Period() != 0 {
			t.Fatalf("%s: empty link set gave period %d", s.Name(), sched.Period())
		}
	}
}

func TestLengthClassesDyadic(t *testing.T) {
	// Lengths 1, 1.5, 2, 3.9, 4, 16 → classes [1,2), [2,4), [4,8), [16,32).
	mk := func(l float64) geom.Link {
		return geom.NewLink(0, 1, geom.Point{}, geom.Point{X: l})
	}
	links := []geom.Link{mk(1), mk(1.5), mk(2), mk(3.9), mk(4), mk(16)}
	groups, err := LengthClasses(links)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2, 3}, {4}, {5}}
	if len(groups) != len(want) {
		t.Fatalf("got %d classes %v, want %v", len(groups), groups, want)
	}
	for c := range want {
		if len(groups[c]) != len(want[c]) {
			t.Fatalf("class %d = %v, want %v", c, groups[c], want[c])
		}
		for k := range want[c] {
			if groups[c][k] != want[c][k] {
				t.Fatalf("class %d = %v, want %v", c, groups[c], want[c])
			}
		}
	}
}

func TestLengthClassesRejectsDegenerate(t *testing.T) {
	zero := geom.NewLink(0, 1, geom.Point{}, geom.Point{})
	if _, err := LengthClasses([]geom.Link{zero}); err == nil {
		t.Fatal("zero-length link did not error")
	}
	tiny := geom.NewLink(0, 1, geom.Point{}, geom.Point{X: 5e-324})
	huge := geom.NewLink(2, 3, geom.Point{}, geom.Point{X: 1e308})
	if _, err := LengthClasses([]geom.Link{tiny, huge}); err == nil {
		t.Fatal("overflowing diversity did not error")
	}
}

// TestLengthClassUsesMultipleClasses: on a diverse instance the strategy must
// actually exercise the per-class path.
func TestLengthClassUsesMultipleClasses(t *testing.T) {
	links := instanceLinks(t, "cluster", 300, 3)
	_, diag, err := lengthClassStrategy{}.Schedule(context.Background(), links, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if diag.Classes < 2 {
		t.Fatalf("cluster instance produced %d length classes, want >= 2", diag.Classes)
	}
}

// TestLengthClassRefineOnArb: the arbitrary-power graph triggers the
// Theorem-2 refinement split.
func TestLengthClassRefineOnArb(t *testing.T) {
	links := instanceLinks(t, "uniform", 200, 5)
	cfg := defaultConfig()
	cfg.Graph = GraphArbitrary
	sched, diag, err := lengthClassStrategy{}.Schedule(context.Background(), links, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diag.RefineSets < 1 {
		t.Fatalf("arb graph did not run the refinement (RefineSets=%d)", diag.RefineSets)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNaiveFuncProtocolModel: the strawman's conflict condition is
// d(i,j) <= k·max(l_i, l_j).
func TestNaiveFuncProtocolModel(t *testing.T) {
	f := NaiveFunc(2)
	a := geom.NewLink(0, 1, geom.Point{X: 0}, geom.Point{X: 1})     // length 1
	b := geom.NewLink(2, 3, geom.Point{X: 3.5}, geom.Point{X: 7.5}) // length 4, d(a,b)=2.5
	if !conflict.Conflicting(f, a, b) {
		t.Fatal("links within 2·lmax should conflict under protocol(2)")
	}
	c := geom.NewLink(2, 3, geom.Point{X: 9.5}, geom.Point{X: 13.5}) // d(a,c)=8.5 > 2·4
	if conflict.Conflicting(f, a, c) {
		t.Fatal("links beyond 2·lmax should not conflict under protocol(2)")
	}
}

// TestScheduleInvariants is the cross-cutting contract suite: for every
// strategy over a grid of small instances, (1) every slot is an independent
// set of the strategy's own conflict graph, (2) the schedule is structurally
// valid with every link appearing at least once per period, and (3) the
// reported rate is exactly min-occurrences/period. All four strategies are
// pinned to the same contract.
func TestScheduleInvariants(t *testing.T) {
	type inst struct {
		preset string
		n      int
		seed   uint64
	}
	instances := []inst{
		{"uniform", 40, 1},
		{"uniform", 150, 2},
		{"cluster", 120, 3},
		{"line", 60, 4},
		{"grid", 100, 5},
		{"annulus", 80, 6},
	}
	graphs := []string{GraphGamma, GraphOblivious, GraphArbitrary}
	for _, in := range instances {
		links := instanceLinks(t, in.preset, in.n, in.seed)
		for _, gk := range graphs {
			cfg := defaultConfig()
			cfg.Graph = gk
			for _, s := range All() {
				sched, diag, err := s.Schedule(context.Background(), links, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", in.preset, gk, s.Name(), err)
				}
				// (2) structural validity: in-range indices, no in-slot
				// duplicates, every link scheduled.
				if err := sched.Validate(); err != nil {
					t.Fatalf("%s/%s/%s: %v", in.preset, gk, s.Name(), err)
				}
				if sched.Period() != diag.NumColors {
					t.Fatalf("%s/%s/%s: period %d != Diag.NumColors %d",
						in.preset, gk, s.Name(), sched.Period(), diag.NumColors)
				}
				// (1) slot independence in the strategy's conflict graph,
				// checked against the exact naive construction.
				g := conflict.BuildNaive(links, diag.Func)
				for k, slot := range sched.Slots {
					if !g.IsIndependent(slot) {
						t.Fatalf("%s/%s/%s: slot %d not independent in %s",
							in.preset, gk, s.Name(), k, diag.Func.Name)
					}
				}
				// (3) rate semantics: exactly min-occurrences over period.
				occ := sched.Occurrences()
				minOcc := math.MaxInt
				for _, o := range occ {
					if o < minOcc {
						minOcc = o
					}
				}
				if want := float64(minOcc) / float64(sched.Period()); sched.Rate() != want {
					t.Fatalf("%s/%s/%s: rate %g != minOcc/period %g",
						in.preset, gk, s.Name(), sched.Rate(), want)
				}
			}
		}
	}
}

// TestStableSlotOrder pins the stable-slot-order contract documented on
// Strategy: every strategy, on every graph kind, emits each slot's members
// in strictly increasing link-index order. schedule.VerifyCache hashes slots
// order-insensitively so correctness does not hinge on this, but the
// contract keeps schedules byte-comparable and cheap to diff.
func TestStableSlotOrder(t *testing.T) {
	for _, preset := range []string{"uniform", "cluster", "annulus"} {
		links := instanceLinks(t, preset, 150, 9)
		for _, gk := range []string{GraphGamma, GraphOblivious, GraphArbitrary} {
			cfg := defaultConfig()
			cfg.Graph = gk
			for _, s := range All() {
				sched, _, err := s.Schedule(context.Background(), links, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", preset, gk, s.Name(), err)
				}
				for k, slot := range sched.Slots {
					for j := 1; j < len(slot); j++ {
						if slot[j] <= slot[j-1] {
							t.Fatalf("%s/%s/%s: slot %d not in increasing link order at %d: %v",
								preset, gk, s.Name(), k, j, slot)
						}
					}
				}
			}
		}
	}
}

// TestStrategiesDeterministic: same inputs, same schedule — byte-for-byte.
func TestStrategiesDeterministic(t *testing.T) {
	links := instanceLinks(t, "uniform", 200, 7)
	for _, s := range All() {
		s1, _, err := s.Schedule(context.Background(), links, defaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s2, _, err := s.Schedule(context.Background(), links, defaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(s1.Slots) != len(s2.Slots) {
			t.Fatalf("%s: nondeterministic period", s.Name())
		}
		for k := range s1.Slots {
			if len(s1.Slots[k]) != len(s2.Slots[k]) {
				t.Fatalf("%s: slot %d differs between runs", s.Name(), k)
			}
			for j := range s1.Slots[k] {
				if s1.Slots[k][j] != s2.Slots[k][j] {
					t.Fatalf("%s: slot %d differs between runs", s.Name(), k)
				}
			}
		}
	}
}
