// Package par provides the shared parallel-iteration helpers for the
// CPU-bound build phases. A package-global slot pool bounds the number of
// extra worker goroutines across *all* concurrent callers to GOMAXPROCS,
// so nested parallelism — e.g. the experiment batch runner invoking the
// parallel conflict-graph build — degrades gracefully to roughly one
// active goroutine per core instead of multiplying the two pool widths.
//
// Every call also does work on the calling goroutine, so progress never
// depends on slot availability and exhaustion cannot deadlock.
//
// ForCtx and ForBlocksCtx are the cancellation-aware variants: they check
// ctx.Err() at chunk boundaries, stop handing out further work once the
// context is done, and report the context error. For and ForBlocks remain
// the unconditional entry points for callers with nothing to cancel.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The slot pool is sized once at init. NumCPU (not just the starting
// GOMAXPROCS) is included so callers that raise GOMAXPROCS at runtime —
// e.g. `aggrate bench --procs` sweeping from a pinned GOMAXPROCS=1 env —
// actually gain workers; For/ForBlocks still spawn at most GOMAXPROCS-1
// extras per call, so the current setting remains the effective bound.
var slots = make(chan struct{}, max(runtime.GOMAXPROCS(0), runtime.NumCPU()))

// For runs fn(i) for every i in [0, n), splitting the range into
// contiguous chunks. Chunks beyond the first run on extra goroutines when
// global slots are free and inline otherwise.
func For(n int, fn func(i int)) {
	_ = ForCtx(context.Background(), n, fn)
}

// ForCtx is For with cancellation: ctx.Err() is checked once per chunk, so
// a cancel stops the iteration within one chunk of work per active worker.
// Chunks already dispatched when the context fires still run to their
// boundary; fn is never invoked for a chunk whose check observed the
// cancellation. Returns ctx.Err() — callers must treat the visited set as
// incomplete when it is non-nil.
func ForCtx(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	p := runtime.GOMAXPROCS(0)
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		if ctx.Err() != nil {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func(lo, hi int) {
				defer func() { <-slots; wg.Done() }()
				if ctx.Err() != nil {
					return
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}(lo, hi)
		default:
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	if ctx.Err() == nil {
		for i := 0; i < chunk && i < n; i++ {
			fn(i)
		}
	}
	wg.Wait()
	return ctx.Err()
}

// ForBlocks dispatches the blocks [k·block, min((k+1)·block, n)) of the
// range [0, n) to workers pulling from a shared cursor — the right shape
// when per-item cost is uneven and workers carry per-goroutine state
// (allocate it at the top of worker, before the next loop). The calling
// goroutine always runs one worker; up to GOMAXPROCS-1 extras join when
// global slots are free. worker must loop:
//
//	for lo, hi, ok := next(); ok; lo, hi, ok = next() { ... }
func ForBlocks(n, block int, worker func(next func() (lo, hi int, ok bool))) {
	_ = ForBlocksCtx(context.Background(), n, block, worker)
}

// ForBlocksCtx is ForBlocks with cancellation: the shared cursor stops
// handing out blocks once ctx is done, so every worker returns within one
// block of the cancel. Returns ctx.Err() — a non-nil return means an
// unknown suffix of the range was never dispatched.
func ForBlocksCtx(ctx context.Context, n, block int, worker func(next func() (lo, hi int, ok bool))) error {
	if n <= 0 {
		return ctx.Err()
	}
	if block < 1 {
		block = 1
	}
	var cursor atomic.Int64
	next := func() (int, int, bool) {
		if ctx.Err() != nil {
			return 0, 0, false
		}
		lo := int(cursor.Add(int64(block))) - block
		if lo >= n {
			return 0, 0, false
		}
		hi := lo + block
		if hi > n {
			hi = n
		}
		return lo, hi, true
	}
	var wg sync.WaitGroup
	for w := runtime.GOMAXPROCS(0) - 1; w > 0; w-- {
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-slots; wg.Done() }()
				worker(next)
			}()
		default:
			w = 0 // pool exhausted; no point polling again
		}
	}
	worker(next)
	wg.Wait()
	return ctx.Err()
}
