package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForCoversAllIndices: every index visited exactly once, any n.
func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		visits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestForBlocksCoversAllIndices: the shared cursor hands out every block
// exactly once across workers.
func TestForBlocksCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		visits := make([]int32, n)
		ForBlocks(n, 64, func(next func() (int, int, bool)) {
			for lo, hi, ok := next(); ok; lo, hi, ok = next() {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestNestedDoesNotDeadlock: For inside ForBlocks inside For must complete
// even with the global slot pool fully contended — the calling goroutine
// always makes progress without a slot.
func TestNestedDoesNotDeadlock(t *testing.T) {
	var total atomic.Int64
	For(8, func(i int) {
		ForBlocks(100, 10, func(next func() (int, int, bool)) {
			for lo, hi, ok := next(); ok; lo, hi, ok = next() {
				For(hi-lo, func(int) { total.Add(1) })
			}
		})
	})
	if got := total.Load(); got != 800 {
		t.Fatalf("nested total = %d, want 800", got)
	}
}

// TestForCtxCompletesUncancelled: with a live context the ctx variants are
// exactly For/ForBlocks — every index visited once, nil error.
func TestForCtxCompletesUncancelled(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		visits := make([]int32, n)
		if err := ForCtx(context.Background(), n, func(i int) { atomic.AddInt32(&visits[i], 1) }); err != nil {
			t.Fatalf("n=%d: ForCtx returned %v", n, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
	var count atomic.Int64
	if err := ForBlocksCtx(context.Background(), 100, 7, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			count.Add(int64(hi - lo))
		}
	}); err != nil || count.Load() != 100 {
		t.Fatalf("ForBlocksCtx: err=%v count=%d, want nil and 100", err, count.Load())
	}
}

// TestForCtxPreCancelled: an already-cancelled context runs nothing and
// reports the context error.
func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := ForCtx(ctx, 50, func(int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx on cancelled ctx returned %v", err)
	}
	// The first chunk runs on the calling goroutine after the dispatch loop's
	// check, which observes the cancellation — nothing may run.
	if ran {
		t.Fatal("ForCtx ran work under a pre-cancelled context")
	}
	if err := ForBlocksCtx(ctx, 50, 4, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			ran = true
			_ = lo + hi
		}
	}); !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("ForBlocksCtx on cancelled ctx: err=%v ran=%v", err, ran)
	}
}

// TestForBlocksCtxStopsMidway: cancelling from inside a block stops the
// cursor — the remaining blocks are never handed out.
func TestForBlocksCtxStopsMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var blocks atomic.Int64
	err := ForBlocksCtx(ctx, 1000, 1, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			_ = lo + hi
			if blocks.Add(1) == 3 {
				cancel()
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every active worker may finish the block it holds, but no new blocks
	// are dispatched after the cancel; with the worker pool bounded by
	// GOMAXPROCS this stays far below the full range.
	if got := blocks.Load(); got >= 1000 {
		t.Fatalf("all %d blocks ran despite mid-flight cancel", got)
	}
}

// TestForBlocksBadBlock: non-positive block sizes are clamped, not looped
// on forever.
func TestForBlocksBadBlock(t *testing.T) {
	var count atomic.Int64
	ForBlocks(5, 0, func(next func() (lo, hi int, ok bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			count.Add(int64(hi - lo))
		}
	})
	if got := count.Load(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}
