package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversAllIndices: every index visited exactly once, any n.
func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		visits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestForBlocksCoversAllIndices: the shared cursor hands out every block
// exactly once across workers.
func TestForBlocksCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		visits := make([]int32, n)
		ForBlocks(n, 64, func(next func() (int, int, bool)) {
			for lo, hi, ok := next(); ok; lo, hi, ok = next() {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestNestedDoesNotDeadlock: For inside ForBlocks inside For must complete
// even with the global slot pool fully contended — the calling goroutine
// always makes progress without a slot.
func TestNestedDoesNotDeadlock(t *testing.T) {
	var total atomic.Int64
	For(8, func(i int) {
		ForBlocks(100, 10, func(next func() (int, int, bool)) {
			for lo, hi, ok := next(); ok; lo, hi, ok = next() {
				For(hi-lo, func(int) { total.Add(1) })
			}
		})
	})
	if got := total.Load(); got != 800 {
		t.Fatalf("nested total = %d, want 800", got)
	}
}

// TestForBlocksBadBlock: non-positive block sizes are clamped, not looped
// on forever.
func TestForBlocksBadBlock(t *testing.T) {
	var count atomic.Int64
	ForBlocks(5, 0, func(next func() (lo, hi int, ok bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			count.Add(int64(hi - lo))
		}
	})
	if got := count.Load(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}
