package experiment

import (
	"context"
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aggrate/internal/coloring"
	"aggrate/internal/geom"
	"aggrate/internal/scenario"
	"aggrate/internal/schedule"
	"aggrate/internal/scheduler"
	"aggrate/internal/stats"
)

func uniformScenario(t *testing.T) Scenario {
	t.Helper()
	sc, err := scenario.Lookup("uniform")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestPipelineEndToEnd runs one full instance and checks every artifact
// against its own verifier: tree invariants, proper coloring, schedule
// structure, and the SINR condition.
func TestPipelineEndToEnd(t *testing.T) {
	spec := NewSpec(uniformScenario(t), 500, 1)
	inst, res, err := NewInstance(context.Background(), spec)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if err := inst.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	if err := coloring.Verify(inst.Graph, inst.Colors); err != nil {
		t.Fatalf("coloring invalid: %v", err)
	}
	if err := inst.Schedule.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if !res.Verified || res.Margin < 1 {
		t.Fatalf("schedule not SINR-verified: verified=%v margin=%g", res.Verified, res.Margin)
	}
	if res.Links != 499 || res.Colors == 0 || res.ScheduleLength != res.Colors {
		t.Fatalf("metrics inconsistent: %+v", res)
	}
	if res.Rate <= 0 || res.Rate > 1 {
		t.Fatalf("rate %g outside (0, 1]", res.Rate)
	}
	// A coloring schedule's rate is exactly 1/period.
	if want := 1 / float64(res.ScheduleLength); res.Rate != want {
		t.Fatalf("rate %g != 1/period %g", res.Rate, want)
	}
}

// TestPowerSchemes: all four power modes must produce verified schedules
// on a small instance (escalating γ as needed).
func TestPowerSchemes(t *testing.T) {
	for _, pw := range []string{PowerUniform, PowerMean, PowerLinear, PowerGlobal} {
		spec := NewSpec(uniformScenario(t), 200, 2)
		spec.Power = pw
		if pw == PowerGlobal {
			spec.Graph = GraphArbitrary
		}
		res := Run(context.Background(), spec)
		if res.Err != "" {
			t.Fatalf("power=%s: %s", pw, res.Err)
		}
		if !res.Verified {
			t.Fatalf("power=%s: schedule not verified", pw)
		}
	}
}

// TestRefinePath: the Theorem-2 refinement rides along when requested and
// is verified inside the pipeline.
func TestRefinePath(t *testing.T) {
	spec := NewSpec(uniformScenario(t), 200, 3)
	spec.Refine = true
	inst, res, err := NewInstance(context.Background(), spec)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if res.RefineSets == 0 || len(inst.RefineSets) != res.RefineSets {
		t.Fatalf("refinement missing: res=%d inst=%d", res.RefineSets, len(inst.RefineSets))
	}
}

// TestBatchDeterministicAcrossWorkers: results must not depend on the
// worker count — each instance is seeded independently.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	specs := Expand([]Scenario{sc}, []int{100, 200}, 3, []string{PowerMean, PowerUniform},
		[]string{scheduler.Greedy, scheduler.LengthClass}, base)
	if len(specs) != 24 {
		t.Fatalf("Expand produced %d specs, want 24", len(specs))
	}
	r1 := RunBatch(context.Background(), specs, 1)
	r4 := RunBatch(context.Background(), specs, 4)
	// Wall-clock timings legitimately vary; everything else must not.
	for _, rs := range [][]*Result{r1, r4} {
		for _, r := range rs {
			r.Timings = Timings{}
		}
	}
	j1, _ := json.Marshal(r1)
	j4, _ := json.Marshal(r4)
	if string(j1) != string(j4) {
		t.Fatal("batch results differ between 1 and 4 workers")
	}
}

// TestAggregate groups and reduces a batch, checking group keys, seed
// counts, and error accounting.
func TestAggregate(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	specs := Expand([]Scenario{sc}, []int{100}, 3, []string{PowerMean}, nil, base)
	results := RunBatch(context.Background(), specs, 0)
	results = append(results, &Result{Scenario: "uniform", N: 100, Power: PowerMean,
		Graph: GraphOblivious, Algo: scheduler.Greedy, Err: "boom"})
	sums := Aggregate(results)
	if len(sums) != 1 {
		t.Fatalf("Aggregate produced %d groups, want 1", len(sums))
	}
	s := sums[0]
	if s.Seeds != 4 || s.Errors != 1 {
		t.Fatalf("seeds=%d errors=%d, want 4 and 1", s.Seeds, s.Errors)
	}
	if s.MeanColors <= 0 || s.MinColors > s.MaxColors {
		t.Fatalf("color stats inconsistent: %+v", s)
	}
}

// TestResultJSONEncodable: the +Inf margin of singleton-slot schedules must
// be clamped so batches always marshal.
func TestResultJSONEncodable(t *testing.T) {
	// Two far-apart points: one link, one slot, margin +Inf under zero noise.
	sc := NamedScenario{Name: "pair", Gen: func(n int, seed uint64) []geom.Point {
		return []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}
	}}
	spec := NewSpec(sc, 2, 1)
	res := Run(context.Background(), spec)
	if res.Err != "" {
		t.Fatalf("pair instance failed: %s", res.Err)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("Result not JSON-encodable: %v", err)
	}
	if res.Margin != marginClamp {
		t.Fatalf("infinite margin not clamped: %g", res.Margin)
	}
}

// TestSpecErrors: malformed specs surface as errors, not panics.
func TestSpecErrors(t *testing.T) {
	if res := Run(context.Background(), Spec{}); res.Err == "" {
		t.Fatal("empty spec did not error")
	}
	spec := NewSpec(uniformScenario(t), 100, 1)
	spec.Graph = "bogus"
	if res := Run(context.Background(), spec); res.Err == "" {
		t.Fatal("bogus graph kind did not error")
	}
	spec = NewSpec(uniformScenario(t), 100, 1)
	spec.Power = "bogus"
	if res := Run(context.Background(), spec); res.Err == "" {
		t.Fatal("bogus power scheme did not error")
	}
}

// TestValidateSchedule cross-checks the schedule artifact against the
// standalone schedule verifier on a second instance for good measure.
func TestValidateSchedule(t *testing.T) {
	spec := NewSpec(uniformScenario(t), 300, 9)
	inst, _, err := NewInstance(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	occ := inst.Schedule.Occurrences()
	for i, o := range occ {
		if o != 1 {
			t.Fatalf("coloring schedule has link %d in %d slots, want exactly 1", i, o)
		}
	}
	var _ *schedule.Schedule = inst.Schedule
}

// TestAllAlgosVerify: every registered strategy must reach a SINR-verified
// schedule on the same instance, across the three conflict graphs.
func TestAllAlgosVerify(t *testing.T) {
	sc := uniformScenario(t)
	for _, gk := range []string{GraphGamma, GraphOblivious, GraphArbitrary} {
		for _, algo := range scheduler.Names() {
			spec := NewSpec(sc, 250, 11)
			spec.Graph = gk
			spec.Algo = algo
			res := Run(context.Background(), spec)
			if res.Err != "" {
				t.Fatalf("graph=%s algo=%s: %s", gk, algo, res.Err)
			}
			if !res.Verified {
				t.Fatalf("graph=%s algo=%s: schedule not verified", gk, algo)
			}
			if res.Algo != algo {
				t.Fatalf("result algo %q, want %q", res.Algo, algo)
			}
			if algo == scheduler.LengthClass && res.Classes < 1 {
				t.Fatalf("lengthclass reported %d length classes", res.Classes)
			}
			if algo == scheduler.LengthClass && gk == GraphArbitrary && res.RefineSets < 1 {
				t.Fatalf("lengthclass on arb reported %d refine sets", res.RefineSets)
			}
		}
	}
}

// TestUnknownAlgoErrors: a bogus algorithm name must fail the instance, not
// panic the batch.
func TestUnknownAlgoErrors(t *testing.T) {
	spec := NewSpec(uniformScenario(t), 100, 1)
	spec.Algo = "bogus"
	if res := Run(context.Background(), spec); res.Err == "" {
		t.Fatal("bogus algo did not error")
	}
}

// TestAggregateSplitsByAlgo: two algorithms over the same cell must land in
// separate summary groups.
func TestAggregateSplitsByAlgo(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	specs := Expand([]Scenario{sc}, []int{120}, 2, []string{PowerMean},
		[]string{scheduler.Greedy, scheduler.Naive}, base)
	sums := Aggregate(RunBatch(context.Background(), specs, 0))
	if len(sums) != 2 {
		t.Fatalf("Aggregate produced %d groups, want 2 (one per algo)", len(sums))
	}
	if sums[0].Algo == sums[1].Algo {
		t.Fatalf("summary groups share algo %q", sums[0].Algo)
	}
	for _, s := range sums {
		if s.Seeds != 2 || s.Errors != 0 {
			t.Fatalf("summary %+v inconsistent", s)
		}
	}
}

// TestOverflowDiversityStaysFinite: when the length ratio overflows float64,
// the log-space diversity pipeline must still deliver a finite log* instead
// of the LogStarUndefined sentinel, and Aggregate must not let any sentinel
// corrupt MeanLogStar.
func TestOverflowDiversityStaysFinite(t *testing.T) {
	sc := NamedScenario{Name: "overflow", Gen: func(n int, seed uint64) []geom.Point {
		return []geom.Point{{X: 0, Y: 0}, {X: 1e-308, Y: 0}, {X: 1e30, Y: 0}}
	}}
	spec := NewSpec(sc, 3, 1)
	spec.Verify = false // powers under/overflow at these scales; metrics are the point
	_, res, err := NewInstance(context.Background(), spec)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if math.IsInf(res.Log2Diversity, 0) || res.Log2Diversity < 1000 {
		t.Fatalf("Log2Diversity = %g, want finite and > 1000", res.Log2Diversity)
	}
	if res.LogStar != 5 {
		t.Fatalf("LogStar = %d, want 5 (log* of 2^~1123)", res.LogStar)
	}
	// Diversity and LogLog must be clamped/log-space finite so the record —
	// and hence the whole batch output — stays JSON-encodable.
	if math.IsInf(res.Diversity, 0) || math.IsInf(res.LogLog, 0) {
		t.Fatalf("Diversity=%g LogLog=%g must be finite", res.Diversity, res.LogLog)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("overflow-diversity Result not JSON-encodable: %v", err)
	}
	// A sentinel row must be excluded from both log*-derived reductions.
	rows := []*Result{
		res,
		{Scenario: "overflow", N: 3, Seed: 2, Power: res.Power, Graph: res.Graph,
			Algo: res.Algo, Colors: 1, LogStar: stats.LogStarUndefined,
			ColorsPerLogStar: 15},
	}
	sums := Aggregate(rows)
	if len(sums) != 1 {
		t.Fatalf("Aggregate produced %d groups, want 1", len(sums))
	}
	if sums[0].MeanLogStar != 5 {
		t.Fatalf("MeanLogStar = %g, want 5 (sentinel row excluded)", sums[0].MeanLogStar)
	}
	if sums[0].MeanColorsPerLogStar != res.ColorsPerLogStar {
		t.Fatalf("MeanColorsPerLogStar = %g, want %g (sentinel row excluded)",
			sums[0].MeanColorsPerLogStar, res.ColorsPerLogStar)
	}
	// Multiple clamped-diversity seeds in one cell: the summary reduces
	// diversity by median (no summation), so it must stay JSON-encodable.
	res2 := *res
	res2.Seed = 2
	if sums = Aggregate([]*Result{res, &res2}); len(sums) != 1 {
		t.Fatalf("Aggregate produced %d groups, want 1", len(sums))
	}
	if _, err := json.Marshal(sums); err != nil {
		t.Fatalf("two-seed overflow summary not JSON-encodable: %v", err)
	}
}

// TestSinkValidation: an out-of-range Spec.Sink is a validation error like
// the other spec checks — never silently clamped to 0.
func TestSinkValidation(t *testing.T) {
	sc := uniformScenario(t)
	for _, sink := range []int{-1, 100, 101} {
		spec := NewSpec(sc, 100, 1)
		spec.Sink = sink
		_, _, err := NewInstance(context.Background(), spec)
		if err == nil || !strings.Contains(err.Error(), "sink") {
			t.Fatalf("sink=%d: err=%v, want a sink range error", sink, err)
		}
	}
	// Every in-range sink (not just 0) is accepted and rooted correctly.
	spec := NewSpec(sc, 100, 1)
	spec.Sink = 99
	inst, res, err := NewInstance(context.Background(), spec)
	if err != nil {
		t.Fatalf("sink=99: %v", err)
	}
	if res.Links != 99 || inst.Tree.Sink != 99 {
		t.Fatalf("sink=99: links=%d sink=%d", res.Links, inst.Tree.Sink)
	}
}

// TestRunnerStreamsInCompletionOrder: the sink sees every result exactly
// once, carrying the same pointers the ordered slice returns.
func TestRunnerStreamsInCompletionOrder(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	specs := Expand([]Scenario{sc}, []int{60, 90}, 3, nil, nil, base)
	seen := make(map[int]*Result)
	r := Runner{Workers: 4, Sink: func(i int, res *Result) {
		if _, dup := seen[i]; dup {
			t.Errorf("sink saw index %d twice", i)
		}
		seen[i] = res
	}}
	out, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("Runner.Run: %v", err)
	}
	if len(seen) != len(specs) {
		t.Fatalf("sink saw %d results, want %d", len(seen), len(specs))
	}
	for i, res := range out {
		if res == nil || seen[i] != res {
			t.Fatalf("index %d: ordered result and sink emission diverge", i)
		}
		if res.Err != "" {
			t.Fatalf("index %d failed: %s", i, res.Err)
		}
	}
}

// TestRunnerWorkspaceReuseDeterministic: pooled per-worker workspaces must
// not leak state between instances — a Runner batch matches fresh
// single-instance runs field for field.
func TestRunnerWorkspaceReuseDeterministic(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	// Mixed algos and sizes so one worker's workspace crosses strategies.
	specs := Expand([]Scenario{sc}, []int{80, 140}, 2, []string{PowerMean},
		[]string{scheduler.Greedy, scheduler.LengthClass, scheduler.DSatur}, base)
	pooled, err := (&Runner{Workers: 1}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		fresh := Run(context.Background(), spec)
		fresh.Timings, pooled[i].Timings = Timings{}, Timings{}
		fj, _ := json.Marshal(fresh)
		pj, _ := json.Marshal(pooled[i])
		if string(fj) != string(pj) {
			t.Fatalf("spec %d: pooled result differs from fresh run\npooled: %s\nfresh:  %s", i, pj, fj)
		}
	}
}

// TestBatchCancellation: a mid-batch cancel returns promptly with a
// partial, well-formed result set and no leaked goroutines.
func TestBatchCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	// Enough work that the batch cannot finish before the cancel fires.
	specs := Expand([]Scenario{sc}, []int{4000}, 32, nil, nil, base)
	ctx, cancel := context.WithCancel(context.Background())
	var completed atomic.Int64
	r := Runner{Workers: 2, Sink: func(i int, res *Result) {
		if completed.Add(1) == 1 {
			cancel()
		}
	}}
	start := time.Now()
	out, err := r.Run(ctx, specs)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	// Prompt return: the in-flight instances stop at the next chunk/slot
	// boundary. One 4000-node instance takes ~100ms here; 5s of slack keeps
	// slow CI honest without flakes.
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled batch took %v to return", elapsed)
	}
	got := 0
	for _, res := range out {
		if res == nil {
			continue // never ran — the partial set's well-formed gap marker
		}
		got++
		if res.Err != "" {
			t.Fatalf("completed result carries error %q", res.Err)
		}
	}
	if got == 0 || got >= len(specs) {
		t.Fatalf("partial set has %d/%d results, want strictly between", got, len(specs))
	}
	// No leaked goroutines: workers exit on cancel; par's pool goroutines
	// are per-call and unwind with their callers.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSpecKeyCanonical: keys are stable under normalization (zero-valued
// defaultable fields hash like their defaults) and distinct across every
// cache-relevant axis.
func TestSpecKeyCanonical(t *testing.T) {
	sc := uniformScenario(t)
	full := NewSpec(sc, 500, 3)
	// Verify is a plain bool (false is meaningful, not a defaultable zero),
	// so the sparse spec states it; everything else normalizes.
	sparse := Spec{Scenario: sc, N: 500, Seed: 3, Verify: true}
	if SpecKey(full) != SpecKey(sparse) {
		t.Fatal("normalized and sparse specs hash differently")
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.N = 501 },
		func(s *Spec) { s.Seed = 4 },
		func(s *Spec) { s.Sink = 1 },
		func(s *Spec) { s.Power = PowerGlobal },
		func(s *Spec) { s.Graph = GraphArbitrary },
		func(s *Spec) { s.Algo = scheduler.DSatur },
		func(s *Spec) { s.Gamma = 3 },
		func(s *Spec) { s.SINR.Alpha = 4 },
		func(s *Spec) { s.Verify = false },
		func(s *Spec) { s.VerifyEngine = "naive" },
	}
	base := SpecKey(full)
	for i, mut := range mutations {
		s := full
		mut(&s)
		if SpecKey(s) == base {
			t.Fatalf("mutation %d did not change the spec key", i)
		}
	}
	// Pure performance knobs produce identical results (the parity suites
	// pin this), so they must NOT participate in the cache key.
	perfKnobs := []func(*Spec){
		func(s *Spec) { s.NoIncrementalVerify = true },
		func(s *Spec) { s.NoLookahead = true },
		func(s *Spec) { s.GammaLookahead = 4 },
		func(s *Spec) { s.NoInstanceCache = true },
	}
	for i, mut := range perfKnobs {
		s := full
		mut(&s)
		if SpecKey(s) != base {
			t.Fatalf("performance knob %d changed the spec key", i)
		}
	}
}

// TestStageSeconds: the Timings export hook covers every pipeline stage
// exactly once, in pipeline order, with build folding in the filter time.
func TestStageSeconds(t *testing.T) {
	tm := Timings{
		GenerateSec: 1, MSTSec: 2, BuildSec: 3, BuildFilterSec: 0.5,
		OrderSec: 4, ColorSec: 5, VerifySec: 6,
	}
	got := tm.StageSeconds()
	want := []StageSecond{
		{"gen", 1}, {"mst", 2}, {"build", 3.5}, {"order", 4}, {"color", 5}, {"verify", 6},
	}
	if len(got) != len(want) {
		t.Fatalf("StageSeconds returned %d stages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}
