package experiment

import (
	"context"
	"math"
	"strings"
	"testing"

	"aggrate/internal/scenario"
	"aggrate/internal/schedule"
	"aggrate/internal/scheduler"
)

// verifyBothEngines re-verifies an instance's final schedule with the fast
// engine and the naive oracle and demands identical verdicts (error
// presence and message) and margins within 1e-9 relative.
func verifyBothEngines(t *testing.T, inst *Instance, label string) {
	t.Helper()
	fast, _, ferr := inst.VerifySchedule(schedule.EngineFast)
	naive, _, nerr := inst.VerifySchedule(schedule.EngineNaive)
	if (ferr == nil) != (nerr == nil) {
		t.Fatalf("%s: verdict mismatch: fast err=%v naive err=%v", label, ferr, nerr)
	}
	if ferr != nil && ferr.Error() != nerr.Error() {
		t.Fatalf("%s: error text mismatch:\nfast:  %v\nnaive: %v", label, ferr, nerr)
	}
	if math.IsInf(fast, 1) || math.IsInf(naive, 1) {
		if fast != naive {
			t.Fatalf("%s: margin mismatch: fast=%g naive=%g", label, fast, naive)
		}
		return
	}
	if rel := math.Abs(fast-naive) / math.Max(math.Abs(naive), 1e-300); rel > 1e-9 {
		t.Fatalf("%s: margin mismatch: fast=%.17g naive=%.17g (rel %.3g)", label, fast, naive, rel)
	}
}

// engineScenario resolves one of the parity scenarios, including the
// clustered and annulus layouts whose gamma-escalated schedules sit near
// the β threshold.
var engineScenarios = []string{"uniform", "cluster", "annulus"}

// TestEngineMatchesNaive is the deterministic parity sweep of the fuzz
// property: all four strategies × all four power schemes × α ∈ {2.1, 3, 4}
// on every parity scenario must verify identically under both engines.
// Low initial γ keeps the escalation loop honest, so final margins hug the
// threshold from above — the regime where a sloppy interval bound would
// flip a verdict.
func TestEngineMatchesNaive(t *testing.T) {
	for _, scName := range engineScenarios {
		sc, err := scenario.Lookup(scName)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range scheduler.Names() {
			for _, pw := range []string{PowerUniform, PowerMean, PowerLinear, PowerGlobal} {
				for _, alpha := range []float64{2.1, 3, 4} {
					spec := NewSpec(sc, 220, 7)
					spec.Algo = algo
					spec.Power = pw
					spec.SINR.Alpha = alpha
					spec.Gamma = 1 // near-threshold: escalate from too-low γ
					if pw == PowerGlobal {
						spec.Graph = GraphArbitrary
					}
					label := scName + "/" + algo + "/" + pw
					inst, _, err := NewInstance(context.Background(), spec)
					if err != nil {
						// Some near-threshold cells legitimately exhaust the
						// escalation budget; the parity property still applies
						// to the last (infeasible) schedule when we have one.
						if inst == nil || inst.Schedule == nil {
							continue
						}
					}
					verifyBothEngines(t, inst, label)
				}
			}
		}
	}
}

// TestVerifyEngineSpec: the naive engine is selectable per spec, produces
// the same result record, and unknown engines fail fast.
func TestVerifyEngineSpec(t *testing.T) {
	sc := uniformScenario(t)
	fastSpec := NewSpec(sc, 300, 9)
	naiveSpec := fastSpec
	naiveSpec.VerifyEngine = schedule.EngineNaive
	rf := Run(context.Background(), fastSpec)
	rn := Run(context.Background(), naiveSpec)
	if rf.Err != "" || rn.Err != "" {
		t.Fatalf("runs failed: fast=%q naive=%q", rf.Err, rn.Err)
	}
	if rf.Verified != rn.Verified || rf.Colors != rn.Colors {
		t.Fatalf("engines disagree: fast=%+v naive=%+v", rf, rn)
	}
	if rel := math.Abs(rf.Margin-rn.Margin) / rn.Margin; rel > 1e-9 {
		t.Fatalf("margins diverge: %g vs %g", rf.Margin, rn.Margin)
	}
	// The fast run carries engine diagnostics; the naive run must not. The
	// fraction is a true ratio of distinct-pair work: structurally ≤ 1,
	// including across γ-escalation accumulation.
	if rf.Timings.VerifyExactPairsFrac <= 0 || rf.Timings.VerifyExactPairsFrac > 1 {
		t.Fatalf("fast exact_pairs_frac = %g, want (0, 1]", rf.Timings.VerifyExactPairsFrac)
	}
	if rn.Timings.VerifyExactLinks != 0 {
		t.Fatalf("naive run reports engine stats: %+v", rn.Timings)
	}

	bad := fastSpec
	bad.VerifyEngine = "warp"
	if r := Run(context.Background(), bad); r.Err == "" || !strings.Contains(r.Err, "unknown verify engine") {
		t.Fatalf("bad engine accepted: %q", r.Err)
	}
}

// TestGlobalPowerSolveCache: under global power control, re-verifying the
// same schedule must reuse the cached slot solutions — observable as the
// second pass spending no fresh Solve work and returning identical powers.
func TestGlobalPowerSolveCache(t *testing.T) {
	sc := uniformScenario(t)
	spec := NewSpec(sc, 200, 5)
	spec.Power = PowerGlobal
	spec.Graph = GraphArbitrary
	inst, res, err := NewInstance(context.Background(), spec)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if !res.Verified {
		t.Fatal("instance not verified")
	}
	slot0 := inst.Schedule.Slots[0]
	p1, err := inst.pf(0, slot0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := inst.pf(0, slot0)
	if err != nil {
		t.Fatal(err)
	}
	// Cache hit returns the identical vector, not a re-solved copy.
	if &p1[0] != &p2[0] {
		t.Fatal("per-slot power vector was re-solved instead of cached")
	}
	// And the re-verify path (bench cross-check) agrees across engines.
	verifyBothEngines(t, inst, "global-power")
	if res.Timings.PowerSolveSec <= 0 {
		t.Fatal("PowerSolveSec not measured for global power")
	}
}

// FuzzEngineMatchesNaive fuzzes the parity property over the whole
// pipeline surface: scenario × size × seed × power × strategy × α ×
// initial γ. Whatever schedule the pipeline produces (feasible or not),
// the fast engine must return the naive oracle's verdict and margin.
func FuzzEngineMatchesNaive(f *testing.F) {
	f.Add(uint64(1), uint16(60), uint8(0), uint8(1), uint8(0), uint8(1), false)
	f.Add(uint64(7), uint16(200), uint8(1), uint8(3), uint8(1), uint8(0), true) // cluster, global, lengthclass, α=2.1
	f.Add(uint64(3), uint16(150), uint8(2), uint8(1), uint8(2), uint8(2), true) // annulus near-threshold
	f.Add(uint64(11), uint16(90), uint8(2), uint8(0), uint8(3), uint8(1), true) // annulus, uniform power, naive strategy
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, scPick, pwPick, algoPick, alphaPick uint8, lowGamma bool) {
		names := engineScenarios
		sc, err := scenario.Lookup(names[int(scPick)%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		powers := []string{PowerUniform, PowerMean, PowerLinear, PowerGlobal}
		alphas := []float64{2.1, 3, 4}
		spec := NewSpec(sc, 16+int(n)%240, seed)
		spec.Power = powers[int(pwPick)%len(powers)]
		spec.Algo = scheduler.Names()[int(algoPick)%len(scheduler.Names())]
		spec.SINR.Alpha = alphas[int(alphaPick)%len(alphas)]
		if lowGamma {
			spec.Gamma = 1
			spec.MaxGammaRetries = 2
		}
		if spec.Power == PowerGlobal {
			spec.Graph = GraphArbitrary
		}
		inst, _, err := NewInstance(context.Background(), spec)
		if err != nil && (inst == nil || inst.Schedule == nil) {
			t.Skip() // invalid spec or pipeline failure before scheduling
		}
		verifyBothEngines(t, inst, "fuzz")
	})
}

// BenchmarkPipeline times the full pipeline (generate → MST → schedule →
// fast verify) at the paper's working sizes.
func BenchmarkPipeline(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(map[int]string{1000: "n=1e3", 10000: "n=1e4"}[n], func(b *testing.B) {
			sc, err := scenario.Lookup("uniform")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				spec := NewSpec(sc, n, 1)
				if res := Run(context.Background(), spec); res.Err != "" {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// BenchmarkVerifyEngine isolates the verification stage at n=1e4: one
// prebuilt instance, each engine re-verifying its schedule.
func BenchmarkVerifyEngine(b *testing.B) {
	sc, err := scenario.Lookup("uniform")
	if err != nil {
		b.Fatal(err)
	}
	inst, _, err := NewInstance(context.Background(), NewSpec(sc, 10000, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range schedule.Engines() {
		b.Run(engine, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := inst.VerifySchedule(engine); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
