package experiment

import (
	"context"
	"encoding/json"
	"testing"

	"aggrate/internal/scheduler"
)

// TestDeployCacheSharedBuild: a same-deployment strategy grid (one
// scenario/n/seed, four algorithms) through a shared cache pays generation
// and EMST exactly once, and every result is bit-identical to a cold,
// cache-free run of the same spec.
func TestDeployCacheSharedBuild(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	algos := []string{scheduler.Greedy, scheduler.LengthClass, scheduler.DSatur, scheduler.JP}
	specs := Expand([]Scenario{sc}, []int{400}, 1, nil, algos, base)
	if len(specs) != len(algos) {
		t.Fatalf("grid expanded to %d specs, want %d", len(specs), len(algos))
	}

	dc := NewDeployCache(4)
	out, err := (&Runner{Workers: 4, Deploy: dc}).Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("Runner.Run: %v", err)
	}
	hits, misses, evictions := dc.Stats()
	if misses != 1 || hits != int64(len(specs)-1) || evictions != 0 {
		t.Fatalf("cache stats hits=%d misses=%d evictions=%d, want %d/1/0",
			hits, misses, evictions, len(specs)-1)
	}
	builders := 0
	for i, res := range out {
		if res.Err != "" {
			t.Fatalf("spec %d failed: %s", i, res.Err)
		}
		if res.Timings.DeployReused {
			if res.Timings.GenerateSec != 0 || res.Timings.MSTSec != 0 {
				t.Fatalf("spec %d: reused deployment still reports gen=%g mst=%g",
					i, res.Timings.GenerateSec, res.Timings.MSTSec)
			}
		} else {
			builders++
		}
	}
	if builders != 1 {
		t.Fatalf("%d specs built the deployment, want exactly 1", builders)
	}
	for i, spec := range specs {
		cold := Run(context.Background(), spec)
		cold.Timings, out[i].Timings = Timings{}, Timings{}
		cj, _ := json.Marshal(cold)
		oj, _ := json.Marshal(out[i])
		if string(cj) != string(oj) {
			t.Fatalf("spec %d: shared-deployment result differs from cold run\nshared: %s\ncold:   %s", i, oj, cj)
		}
	}
}

// TestNoInstanceCacheParity: the --no-instance-cache escape hatch rebuilds
// per spec — no reuse reported, no cache traffic — and stays bit-identical
// to the cached batch.
func TestNoInstanceCacheParity(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	algos := []string{scheduler.Greedy, scheduler.DSatur}
	cached := Expand([]Scenario{sc}, []int{300}, 2, nil, algos, base)
	baseNC := base
	baseNC.NoInstanceCache = true
	uncached := Expand([]Scenario{sc}, []int{300}, 2, nil, algos, baseNC)

	outC, err := (&Runner{Workers: 2}).Run(context.Background(), cached)
	if err != nil {
		t.Fatal(err)
	}
	dc := NewDeployCache(0)
	outN, err := (&Runner{Workers: 2, Deploy: dc}).Run(context.Background(), uncached)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := dc.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("NoInstanceCache specs touched the cache: hits=%d misses=%d", hits, misses)
	}
	for i := range outN {
		if outN[i].Timings.DeployReused {
			t.Fatalf("spec %d reused a deployment despite NoInstanceCache", i)
		}
		// The knob is excluded from SpecKey, so the result records must agree
		// field for field once wall-clock timings are zeroed.
		outC[i].Timings, outN[i].Timings = Timings{}, Timings{}
		cj, _ := json.Marshal(outC[i])
		nj, _ := json.Marshal(outN[i])
		if string(cj) != string(nj) {
			t.Fatalf("spec %d: uncached result differs from cached\ncached:   %s\nuncached: %s", i, cj, nj)
		}
	}
}

// TestSchedCacheParity: specs differing only in power scheme share the
// pre-power stage (conflict build + ordering + coloring) through the
// deployment entry's stage map — the stage builds once per (SchedKey, γ)
// rung — and every result stays bit-identical to a cold --no-instance-cache
// run of the same spec.
func TestSchedCacheParity(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	powers := []string{PowerMean, PowerLinear, PowerUniform}
	specs := Expand([]Scenario{sc}, []int{400}, 1, powers, []string{scheduler.Greedy}, base)
	if len(specs) != len(powers) {
		t.Fatalf("grid expanded to %d specs, want %d", len(specs), len(powers))
	}

	dc := NewDeployCache(4)
	out, err := (&Runner{Workers: len(specs), Deploy: dc}).Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("Runner.Run: %v", err)
	}
	attempts := int64(0)
	reusedSpecs := 0
	for i, res := range out {
		if res.Err != "" {
			t.Fatalf("spec %d failed: %s", i, res.Err)
		}
		attempts += int64(res.GammaRetries) + 1
		if res.Timings.SchedReused {
			reusedSpecs++
			if res.GammaRetries == 0 &&
				res.Timings.BuildSec+res.Timings.BuildFilterSec+res.Timings.OrderSec+res.Timings.ColorSec != 0 {
				t.Fatalf("spec %d: fully reused stage still reports build=%g filter=%g order=%g color=%g",
					i, res.Timings.BuildSec, res.Timings.BuildFilterSec,
					res.Timings.OrderSec, res.Timings.ColorSec)
			}
		}
	}
	hits, misses := dc.SchedStats()
	if hits+misses != attempts {
		t.Fatalf("stage cache saw %d attempts (hits=%d misses=%d), pipeline ran %d",
			hits+misses, hits, misses, attempts)
	}
	// All specs share SchedKey, so each γ rung builds at most once; with
	// three power schemes starting at the same γ at least two attempts reuse.
	if hits < int64(len(specs)-1) || reusedSpecs < len(specs)-1 {
		t.Fatalf("stage sharing too low: hits=%d reused_specs=%d, want >= %d", hits, reusedSpecs, len(specs)-1)
	}
	for i, spec := range specs {
		spec.NoInstanceCache = true
		cold := Run(context.Background(), spec)
		if cold.Err != "" {
			t.Fatalf("cold spec %d failed: %s", i, cold.Err)
		}
		cold.Timings, out[i].Timings = Timings{}, Timings{}
		cj, _ := json.Marshal(cold)
		oj, _ := json.Marshal(out[i])
		if string(cj) != string(oj) {
			t.Fatalf("spec %d: stage-cached result differs from cold run\ncached: %s\ncold:   %s", i, oj, cj)
		}
	}
}

// TestSchedCacheGammaSweep: γ is excluded from SchedKey and sub-keyed per
// concrete rung, so a spec starting at γ=3 reuses the rung a γ=2 spec's
// escalation already built whenever the ladders land on the same value
// (2·1.5 = 3), while rungs never reached stay unshared.
func TestSchedCacheGammaSweep(t *testing.T) {
	sc := uniformScenario(t)
	dc := NewDeployCache(4)
	a := NewSpec(sc, 400, 1)
	b := NewSpec(sc, 400, 1)
	b.Gamma = 3
	outA, err := (&Runner{Workers: 1, Deploy: dc}).Run(context.Background(), []Spec{a})
	if err != nil || outA[0].Err != "" {
		t.Fatalf("gamma=2 run failed: %v / %s", err, outA[0].Err)
	}
	_, missesBefore := dc.SchedStats()
	outB, err := (&Runner{Workers: 1, Deploy: dc}).Run(context.Background(), []Spec{b})
	if err != nil || outB[0].Err != "" {
		t.Fatalf("gamma=3 run failed: %v / %s", err, outB[0].Err)
	}
	hits, misses := dc.SchedStats()
	reachedThree := outA[0].GammaRetries >= 1 // 2 → 3 via the 1.5 step
	if reachedThree {
		if hits == 0 || !outB[0].Timings.SchedReused {
			t.Fatalf("gamma=3 spec missed the rung the gamma=2 ladder built: hits=%d reused=%t",
				hits, outB[0].Timings.SchedReused)
		}
	} else if misses == missesBefore {
		t.Fatalf("gamma=3 spec built nothing: misses stuck at %d", misses)
	}
	bCold := b
	bCold.NoInstanceCache = true
	cold := Run(context.Background(), bCold)
	cold.Timings, outB[0].Timings = Timings{}, Timings{}
	cj, _ := json.Marshal(cold)
	oj, _ := json.Marshal(outB[0])
	if string(cj) != string(oj) {
		t.Fatalf("gamma-sweep cached result differs from cold run\ncached: %s\ncold:   %s", oj, cj)
	}
}

// TestDeployCacheEviction: an entry-capped cache evicts least-recently-used
// deployments; correctness is untouched, only reuse is shed.
func TestDeployCacheEviction(t *testing.T) {
	sc := uniformScenario(t)
	base := NewSpec(sc, 0, 0)
	// Three deployments (seeds), sequentially, through a single-entry cache.
	specs := Expand([]Scenario{sc}, []int{200}, 3, nil, []string{scheduler.Greedy}, base)
	dc := NewDeployCache(1)
	out, err := (&Runner{Workers: 1, Deploy: dc}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if res.Err != "" {
			t.Fatalf("spec %d failed: %s", i, res.Err)
		}
		if res.Timings.DeployReused {
			t.Fatalf("spec %d reused across distinct deployments", i)
		}
	}
	_, misses, evictions := dc.Stats()
	if misses != 3 || evictions != 2 || dc.Len() != 1 {
		t.Fatalf("misses=%d evictions=%d len=%d, want 3/2/1", misses, evictions, dc.Len())
	}

	// A second pass over the last deployment hits what the cache retained.
	last := specs[len(specs)-1]
	if _, err := (&Runner{Workers: 1, Deploy: dc}).Run(context.Background(), []Spec{last}); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := dc.Stats(); hits != 1 {
		t.Fatalf("retained deployment not reused: hits=%d", hits)
	}
}
