package experiment

import (
	"context"
	"os"
	"testing"

	"aggrate/internal/scenario"
)

// TestMillionLinkPipeline is the long certified-pipeline check: generate,
// schedule, and SINR-verify n=1e6 uniform links end to end. It is gated on
// AGGRATE_LONG=1 because a full run takes tens of seconds on one core —
// CI's bench-smoke covers the same invariants at n=20k instead.
//
// The hard assertions are correctness (verified schedule, sane stats); the
// stage split is logged so regressions in any one stage are visible. The
// verify stage itself must stay under 15s — the sub-15s *total* pipeline is
// tracked in BENCH_pipeline.json and ROADMAP.md, with conflict-graph
// construction (two γ-escalation builds) the remaining dominant cost.
func TestMillionLinkPipeline(t *testing.T) {
	if os.Getenv("AGGRATE_LONG") == "" {
		t.Skip("set AGGRATE_LONG=1 to run the n=1e6 pipeline test")
	}
	sc, err := scenario.Lookup("uniform")
	if err != nil {
		t.Fatal(err)
	}
	spec := NewSpec(sc, 1_000_000, 1)
	res := Run(context.Background(), spec)
	if res.Err != "" {
		t.Fatalf("pipeline failed: %s", res.Err)
	}
	if !res.Verified {
		t.Fatal("schedule not verified")
	}
	tm := res.Timings
	t.Logf("n=1e6 uniform: total %.2fs (gen %.2f, mst %.2f, build %.2f, filter %.4f, order %.2f, color %.2f, verify %.2f)",
		tm.TotalSec, tm.GenerateSec, tm.MSTSec, tm.BuildSec, tm.BuildFilterSec, tm.OrderSec, tm.ColorSec, tm.VerifySec)
	t.Logf("verify: exact_pairs_frac %.4g, reused_slots %d, refined_cells %d",
		tm.VerifyExactPairsFrac, tm.VerifyReusedSlots, tm.VerifyRefinedCells)
	if tm.VerifySec >= 15 {
		t.Errorf("verify stage took %.2fs, want < 15s", tm.VerifySec)
	}
	if tm.VerifyExactPairsFrac <= 0 || tm.VerifyExactPairsFrac > 1 {
		t.Errorf("exact_pairs_frac = %g, want (0, 1]", tm.VerifyExactPairsFrac)
	}
	// This spec escalates γ once (retries=1 on the pinned seed); the retry's
	// conflict graph must come from the lookahead filter scan, not a second
	// full build — the PR-7 change that removed the duplicated build.
	if res.GammaRetries >= 1 {
		if !tm.BuildReused {
			t.Error("γ-escalation retry was not served by the lookahead filter scan")
		}
		if tm.BuildFilterSec <= 0 || tm.BuildFilterSec >= 0.15*tm.BuildSec {
			t.Errorf("build_filter_sec = %.3fs, want (0, 0.15×build_sec=%.3fs)",
				tm.BuildFilterSec, 0.15*tm.BuildSec)
		}
	}
}
