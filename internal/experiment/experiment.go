// Package experiment wires the algorithmic layers into the paper's
// experiment loop: scenario pointset → MST aggregation tree → scheduling
// strategy (conflict graph + coloring, pluggable via internal/scheduler) →
// TDMA schedule → SINR verification. One Spec describes one instance; the
// batch runner fans a (scenario × size × seed × power scheme × algorithm)
// product out over a worker pool and aggregates the per-instance metrics
// into JSON-ready summaries.
//
// Feasibility handling: the paper's guarantees hold for a large-enough
// conflict parameter γ, but the concrete constant is not pinned down. Run
// therefore verifies every slot against the SINR condition and, on
// failure, escalates γ geometrically and rebuilds — the schedule returned
// with Verified=true always passed (*schedule.Schedule).VerifySINR.
package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aggrate/internal/coloring"
	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/mst"
	"aggrate/internal/power"
	"aggrate/internal/schedule"
	"aggrate/internal/scheduler"
	"aggrate/internal/sinr"
	"aggrate/internal/stats"
)

// Graph kinds selectable in a Spec, matching the paper's three conflict
// graphs.
const (
	// GraphGamma is G_γ (constant threshold) — the structural graph of
	// Theorem 2; its independent sets need not be SINR-feasible on their
	// own, so expect γ escalation when verifying.
	GraphGamma = "gamma"
	// GraphOblivious is G^δ_γ, whose independent sets are feasible under
	// the oblivious scheme P_τ with τ = δ.
	GraphOblivious = "obl"
	// GraphArbitrary is G_{γlog}, whose independent sets are feasible
	// under global power control.
	GraphArbitrary = "arb"
)

// Power scheme names selectable in a Spec.
const (
	PowerUniform = "uniform"
	PowerMean    = "mean"
	PowerLinear  = "linear"
	PowerGlobal  = "global"
)

// Spec fully determines one experiment instance.
type Spec struct {
	Scenario Scenario
	N        int
	Seed     uint64
	Sink     int
	Power    string
	Graph    string
	// Algo selects the scheduling strategy (see internal/scheduler);
	// empty means scheduler.Greedy.
	Algo   string
	Gamma  float64
	Delta  float64
	SINR   sinr.Params
	Refine bool
	Verify bool
	// VerifyEngine selects the SINR verification engine:
	// schedule.EngineFast (the default) or schedule.EngineNaive, the exact
	// O(m²)-per-slot oracle.
	VerifyEngine string
	// MaxGammaRetries bounds the escalation loop (default 8).
	MaxGammaRetries int
	// GammaStep is the escalation factor (default 1.5).
	GammaStep float64
	// NoIncrementalVerify disables the slot-margin cache that carries exact
	// verdicts across γ-escalation attempts (the VerifySINRDelta path), so
	// every attempt recomputes every slot. Purely a performance knob — the
	// cache replays the engine's own exact margins for content-identical
	// slots, so margins, verdicts, and error messages are the same either
	// way — hence it does not participate in SpecKey.
	NoIncrementalVerify bool
	// NoLookahead disables the γ-lookahead conflict build, so every
	// escalation attempt pays a full grid rebuild instead of filtering one
	// strength-annotated build. Like NoIncrementalVerify it is purely a
	// performance knob — lookahead-filtered graphs are bit-identical to
	// direct builds (the conflict package's parity and fuzz suites pin
	// this) — so it does not participate in SpecKey.
	NoLookahead bool
	// GammaLookahead is how many escalation rungs beyond the current γ the
	// lookahead build covers (default 1: each build also serves the next
	// retry; measured builds at γ·step cost only ~1.3× the build at γ, so
	// deeper windows trade more up-front edges for rarely-used coverage).
	// Escalations past the window re-arm a fresh lookahead at the new γ.
	// A performance knob like NoLookahead: excluded from SpecKey.
	GammaLookahead int
	// NoInstanceCache opts this spec out of the batch runner's stage-split
	// instance cache (the DeployCache), so the deployment (pointset, EMST,
	// lookahead builds) is generated cold even when a same-deployment spec
	// already built it. Another pure performance knob: cached deployments
	// are the exact artifacts a cold run builds, results are bit-identical
	// either way — so it does not participate in SpecKey.
	NoInstanceCache bool
}

// Scenario is the deployment-generator dependency of the runner. It is the
// method set of internal/scenario.Spec, stated as an interface so tests can
// inject fixed pointsets without going through a preset.
type Scenario interface {
	Generate(n int, seed uint64) []geom.Point
	PresetName() string
}

// NamedScenario adapts any generator-like Generate function to the runner.
type NamedScenario struct {
	Name string
	Gen  func(n int, seed uint64) []geom.Point
}

// Generate implements Scenario.
func (s NamedScenario) Generate(n int, seed uint64) []geom.Point { return s.Gen(n, seed) }

// PresetName implements Scenario.
func (s NamedScenario) PresetName() string { return s.Name }

// NewSpec returns a Spec with the harness defaults filled in: mean power
// over G^δ_γ with γ=2, δ=1/2, the paper's default SINR constants, and
// verification on.
func NewSpec(sc Scenario, n int, seed uint64) Spec {
	return Spec{
		Scenario:        sc,
		N:               n,
		Seed:            seed,
		Power:           PowerMean,
		Graph:           GraphOblivious,
		Algo:            scheduler.Greedy,
		Gamma:           2,
		Delta:           0.5,
		SINR:            sinr.DefaultParams(),
		Verify:          true,
		MaxGammaRetries: 8,
		GammaStep:       1.5,
	}
}

// Normalized returns the spec with every defaultable field filled in — the
// exact spec the pipeline runs. Two specs with equal Normalized forms
// produce identical results, which is what makes SpecKey a sound cache key.
func (s Spec) Normalized() Spec { return s.normalized() }

// SpecKey returns a canonical content hash of the normalized spec:
// scenario preset, size, seed, sink, power, graph, algo, γ/δ, the SINR
// constants, refine/verify switches, engine, and the escalation knobs.
// Specs that normalize identically share a key, so a result cache keyed by
// SpecKey serves repeated grids without recomputation. Hand-built scenarios
// (NamedScenario) are distinguished only by their name; callers caching
// across processes must use registered presets.
func SpecKey(s Spec) string {
	n := s.normalized()
	// The canonical string factors as DeployKey (the deployment prefix:
	// scenario, n, seed, sink) followed by the scheduling tail, so the
	// instance cache's key is literally a prefix of the result cache's.
	h := sha256.Sum256([]byte(DeployKey(s) + fmt.Sprintf("|%s|%s|%s|%g|%g|%g|%g|%g|%g|%t|%t|%s|%d|%g",
		n.Power, n.Graph, n.Algo, n.Gamma, n.Delta,
		n.SINR.Alpha, n.SINR.Beta, n.SINR.Noise, n.SINR.Epsilon,
		n.Refine, n.Verify, n.VerifyEngine, n.MaxGammaRetries, n.GammaStep)))
	return hex.EncodeToString(h[:16])
}

func (s Spec) normalized() Spec {
	if s.Power == "" {
		s.Power = PowerMean
	}
	if s.Graph == "" {
		s.Graph = GraphOblivious
	}
	if s.Algo == "" {
		s.Algo = scheduler.Greedy
	}
	if s.Gamma <= 0 {
		s.Gamma = 2
	}
	if s.Delta <= 0 || s.Delta >= 1 {
		s.Delta = 0.5
	}
	if s.SINR == (sinr.Params{}) {
		s.SINR = sinr.DefaultParams()
	}
	if s.VerifyEngine == "" {
		s.VerifyEngine = schedule.EngineFast
	}
	if s.MaxGammaRetries <= 0 {
		s.MaxGammaRetries = 8
	}
	if s.GammaStep <= 1 {
		s.GammaStep = 1.5
	}
	if s.GammaLookahead <= 0 {
		s.GammaLookahead = 1
	}
	return s
}

// config materializes the scheduler configuration for the spec at a
// concrete γ.
func (s Spec) config(gamma float64) scheduler.Config {
	return scheduler.Config{Graph: s.Graph, Gamma: gamma, Delta: s.Delta, SINR: s.SINR}
}

// powerFunc returns the slot-power supplier for the spec's scheme over the
// given link set.
func (s Spec) powerFunc(links []geom.Link) (schedule.PowerFunc, error) {
	var sch power.Scheme
	switch s.Power {
	case PowerUniform:
		sch = power.Uniform()
	case PowerMean:
		sch = power.Mean()
	case PowerLinear:
		sch = power.Linear()
	case PowerGlobal:
		// Per-instance memo of solved slot power vectors, keyed by slot
		// content. Jacobi solving dominates global-power verification, and
		// the same slot is verified more than once whenever the final
		// schedule is re-checked — the bench's fast-vs-naive cross-check,
		// the parity suite, Instance.VerifySchedule — so each distinct slot
		// is solved exactly once per instance. Callers must not mutate the
		// returned vector; the function is safe for concurrent use.
		var mu sync.Mutex
		cache := make(map[string][]float64)
		return func(_ int, linkIdx []int) ([]float64, error) {
			raw := make([]byte, 0, 4*len(linkIdx))
			for _, i := range linkIdx {
				raw = append(raw, byte(i), byte(i>>8), byte(i>>16), byte(i>>24))
			}
			key := string(raw)
			mu.Lock()
			v, ok := cache[key]
			mu.Unlock()
			if ok {
				return v, nil
			}
			slot := make([]geom.Link, len(linkIdx))
			for k, i := range linkIdx {
				slot[k] = links[i]
			}
			out, err := power.Solve(slot, s.SINR, power.SolveOptions{})
			if err != nil {
				return nil, err
			}
			mu.Lock()
			cache[key] = out
			mu.Unlock()
			return out, nil
		}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown power scheme %q", s.Power)
	}
	perLink, err := sch.Assign(links, s.SINR)
	if err != nil {
		return nil, err
	}
	return schedule.FixedPower(perLink), nil
}

// Instance is one fully-materialized pipeline run: the artifacts of every
// stage, kept for inspection, plotting, and tests.
type Instance struct {
	Spec   Spec
	Points []geom.Point
	Tree   *mst.Tree
	// Graph is the strategy's global conflict graph; nil for strategies
	// that only build per-class graphs (lengthclass).
	Graph *conflict.Graph
	// Colors is the per-link coloring when the schedule is a proper
	// coloring; nil for interleaved schedules (lengthclass).
	Colors   []int
	Schedule *schedule.Schedule
	// Diag is the strategy's full diagnostic record.
	Diag scheduler.Diag
	// RefineSets is the Theorem-2 partition, nil unless Spec.Refine.
	RefineSets [][]int
	// GammaUsed is the γ the final (verified) build used.
	GammaUsed float64
	// GammaRetries counts escalations before verification succeeded.
	GammaRetries int
	// Margin is the worst slot SINR margin observed by VerifySINR
	// (+Inf when every slot is a singleton under zero noise).
	Margin float64
	// VerifyStats is the fast engine's diagnostic record for the final
	// verification pass; zero when VerifyEngine is naive or Verify is off.
	VerifyStats schedule.VerifyStats
	// pf is the slot-power supplier verification used, retained so
	// VerifySchedule can re-verify without re-deriving powers (and, under
	// global power control, without re-solving cached slots).
	pf schedule.PowerFunc
	// vc is the incremental verification cache the escalation loop used
	// (nil when Spec.NoIncrementalVerify or Verify was off); it holds the
	// exact margin of every slot of the final schedule, so
	// ReverifyIncremental answers from cached verdicts.
	vc *schedule.VerifyCache
}

// VerifySchedule re-verifies the instance's final schedule with the named
// engine (schedule.EngineFast or schedule.EngineNaive; empty means fast),
// returning the worst slot margin and, for the fast engine, its
// diagnostics. It is the cross-check hook of the bench command and the
// fast≡naive parity suite.
func (in *Instance) VerifySchedule(engine string) (float64, schedule.VerifyStats, error) {
	if in.Schedule == nil || in.pf == nil {
		return 0, schedule.VerifyStats{}, fmt.Errorf("experiment: instance has no schedule to verify")
	}
	switch engine {
	case schedule.EngineNaive:
		m, err := in.Schedule.VerifySINRNaive(in.Spec.SINR, in.pf)
		return m, schedule.VerifyStats{}, err
	case schedule.EngineFast, "":
		return in.Schedule.VerifySINRFast(in.Spec.SINR, in.pf)
	default:
		return 0, schedule.VerifyStats{}, fmt.Errorf("experiment: unknown verify engine %q (have %v)",
			engine, schedule.Engines())
	}
}

// ReverifyIncremental re-verifies the final schedule through the run's
// incremental cache: every slot already certified during the escalation loop
// answers from its cached exact margin, so a clean re-check of an unchanged
// schedule does no engine work (VerifyStats.ReusedSlots == VerifyStats.Slots).
// It falls back to a full recompute when the run kept no cache (naive engine,
// Verify off, or Spec.NoIncrementalVerify). This is the warm path the bench
// command reports as verify_warm_sec.
func (in *Instance) ReverifyIncremental() (float64, schedule.VerifyStats, error) {
	if in.Schedule == nil || in.pf == nil {
		return 0, schedule.VerifyStats{}, fmt.Errorf("experiment: instance has no schedule to verify")
	}
	return in.Schedule.VerifySINRDelta(context.Background(), in.Spec.SINR, in.pf, in.vc)
}

// ReverifyGridWarm re-verifies the final schedule with the run's cached
// margins dropped but its built slot grids retained: every margin is
// recomputed, with the grid-build stage answered from the cache
// (VerifyStats.ReusedGrids counts the slots so served). This isolates the
// grid-warm path that escalation retries with changed powers take per slot
// — the bench command's verify_grid_warm_sec column and the regression
// gate's verify_grid_reused assertion come from here. Falls back to a full
// cold recompute when the run kept no cache.
func (in *Instance) ReverifyGridWarm() (float64, schedule.VerifyStats, error) {
	if in.Schedule == nil || in.pf == nil {
		return 0, schedule.VerifyStats{}, fmt.Errorf("experiment: instance has no schedule to verify")
	}
	in.vc.InvalidateMargins()
	return in.Schedule.VerifySINRDelta(context.Background(), in.Spec.SINR, in.pf, in.vc)
}

// Timings records per-stage wall-clock seconds, plus the verification
// engine's work diagnostics (which ride along here so the bench artifact
// and golden outputs carry them next to the times they explain).
type Timings struct {
	GenerateSec float64 `json:"generate_sec"`
	MSTSec      float64 `json:"mst_sec"`
	// DeployReused reports that the deployment (pointset + EMST, and any
	// lookahead builds another spec already paid for) came from the batch
	// runner's instance cache; GenerateSec and MSTSec are then zero — the
	// stages never ran in this instance.
	DeployReused bool `json:"deploy_reused,omitempty"`
	// SchedReused reports that at least one escalation attempt's pre-power
	// stage — conflict build, ordering, coloring, the schedule skeleton —
	// was served by the instance cache's stage map (another spec of the
	// same deployment, differing only in power scheme or initial γ, already
	// built that (SchedKey, γ) rung); the reused attempts contribute
	// nothing to BuildSec/OrderSec/ColorSec, which stayed with the builder.
	SchedReused bool `json:"sched_reused,omitempty"`
	// BuildSec counts full conflict-graph builds only; γ-escalation retries
	// served by the lookahead cache account their (much smaller) filter-scan
	// time under BuildFilterSec instead, and set BuildReused.
	BuildSec       float64 `json:"build_sec"`
	BuildFilterSec float64 `json:"build_filter_sec,omitempty"`
	// BuildReused reports that at least one attempt's conflict graph was
	// materialized by filtering a cached strength-annotated build rather
	// than a fresh grid build.
	BuildReused bool `json:"build_reused,omitempty"`
	// OrderSec is the vertex-order computation time (the length sort of
	// greedy/lengthclass; zero for orderless colorings), split out from
	// ColorSec so the coloring stage's cost is tracked per strategy.
	OrderSec  float64 `json:"order_sec"`
	ColorSec  float64 `json:"color_sec"`
	RefineSec float64 `json:"refine_sec,omitempty"`
	VerifySec float64 `json:"verify_sec"`
	// PowerSolveSec is the CPU time spent computing slot power assignments
	// (global power's per-slot Solve; ≈0 for oblivious schemes), summed
	// over slots. Slots verify in parallel, so this can exceed the
	// wall-clock VerifySec. Only measured by the fast engine.
	PowerSolveSec float64 `json:"power_solve_sec"`
	// VerifyExactLinks counts link-slot pairs the fast engine resolved via
	// its exact pairwise fallback, summed over gamma escalations.
	VerifyExactLinks int64 `json:"verify_exact_links,omitempty"`
	// VerifyExactPairsFrac is the fraction of the naive O(m²) pairwise
	// work the fast engine actually performed (near-field + fallback).
	VerifyExactPairsFrac float64 `json:"verify_exact_pairs_frac,omitempty"`
	// VerifyReusedSlots counts slot verifications answered from the
	// incremental cache (content-identical slot seen on an earlier
	// γ-escalation attempt), summed over attempts. Zero when incremental
	// verification is disabled or no attempt shared a slot.
	VerifyReusedSlots int64 `json:"verify_reused_slots,omitempty"`
	// VerifyGridReused counts slot verifications that recomputed a margin
	// over a cached built sender grid (same membership as an earlier slot,
	// different powers — the grid-refresh path that skips buildGrid), summed
	// over attempts.
	VerifyGridReused int64 `json:"verify_grid_reused,omitempty"`
	// VerifyRefinedCells counts far-field cells the engine re-aggregated at
	// tightened openings during adaptive refinement (its middle tier,
	// between the coarse pyramid pass and the exact fallback).
	VerifyRefinedCells int64 `json:"verify_refined_cells,omitempty"`
	// Conflict-build pruning counters (conflict.BuildStats), summed over
	// every graph built across escalation attempts: cells whose member
	// lists were streamed vs cells rejected whole by the per-cell
	// bbox/min-length screen, and candidates distance-tested vs edges
	// accepted. BuildCandScanned/BuildCandAccepted is the mean number of
	// distance tests per accepted edge — a hardware-independent
	// candidate-efficiency signal the bench regression gate tracks. Zero
	// for attempts served by the stage cache (no build ran here).
	BuildCellsScanned int64   `json:"build_cells_scanned,omitempty"`
	BuildCellsPruned  int64   `json:"build_cells_pruned,omitempty"`
	BuildCandScanned  int64   `json:"build_cand_scanned,omitempty"`
	BuildCandAccepted int64   `json:"build_cand_accepted,omitempty"`
	TotalSec          float64 `json:"total_sec"`
}

// StageSecond is one element of Timings.StageSeconds: a pipeline stage name
// and its accumulated wall-clock seconds.
type StageSecond struct {
	Stage string
	Sec   float64
}

// StageSeconds exports the per-stage wall-clock split in pipeline order —
// gen, mst, build (full builds plus lookahead filter scans), order, color,
// verify — as (stage, seconds) pairs. It is the serving layer's metrics
// hook: latency histograms are fed from it without reaching into the
// individual Timings fields.
func (t Timings) StageSeconds() []StageSecond {
	return []StageSecond{
		{"gen", t.GenerateSec},
		{"mst", t.MSTSec},
		{"build", t.BuildSec + t.BuildFilterSec},
		{"order", t.OrderSec},
		{"color", t.ColorSec},
		{"verify", t.VerifySec},
	}
}

// Result is the JSON-ready metric record of one instance.
type Result struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"`
	Seed     uint64 `json:"seed"`
	Power    string `json:"power"`
	Graph    string `json:"graph"`
	Algo     string `json:"algo"`

	Links         int     `json:"links"`
	Diversity     float64 `json:"diversity"`
	Log2Diversity float64 `json:"log2_diversity"`
	LogStar       int     `json:"logstar_diversity"`
	LogLog        float64 `json:"loglog_diversity"`

	Edges     int     `json:"edges"`
	MaxDegree int     `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`

	Colors         int     `json:"colors"`
	ScheduleLength int     `json:"schedule_length"`
	Rate           float64 `json:"rate"`
	// Classes counts the dyadic length classes the lengthclass strategy
	// scheduled over (0 for single-graph strategies).
	Classes int `json:"length_classes,omitempty"`
	// ColorsPerLogStar normalizes the palette size by log*Δ, the paper's
	// target growth rate for global power control (Theorem 3).
	ColorsPerLogStar float64 `json:"colors_per_logstar"`
	// ColorsPerLogLog normalizes by log log Δ, the oblivious-power rate.
	ColorsPerLogLog float64 `json:"colors_per_loglog"`

	GammaUsed    float64 `json:"gamma_used"`
	GammaRetries int     `json:"gamma_retries"`
	// Margin is clamped to 1e30 so the record stays JSON-encodable when
	// the true margin is +Inf (singleton slots, zero noise).
	Margin     float64 `json:"margin"`
	Verified   bool    `json:"verified"`
	RefineSets int     `json:"refine_sets,omitempty"`

	Timings Timings `json:"timings"`
	Err     string  `json:"error,omitempty"`
}

const marginClamp = 1e30

// Run executes the full pipeline for one spec and reduces it to metrics.
// Failures are reported in Result.Err rather than aborting a batch. A ctx
// cancel or deadline stops the pipeline at the next stage, chunk, or slot
// boundary; the returned Result then carries the context error.
func Run(ctx context.Context, spec Spec) *Result {
	res, _ := runWS(ctx, spec, nil, nil)
	return res
}

// runWS is Run with an optional per-worker workspace and shared instance
// cache, returning the raw pipeline error alongside (so batch runners can
// distinguish a cancelled instance from a failed one).
func runWS(ctx context.Context, spec Spec, ws *Workspace, dc *DeployCache) (*Result, error) {
	_, res, err := newInstance(ctx, spec, ws, dc)
	if err != nil {
		if res == nil {
			name := ""
			if spec.Scenario != nil {
				name = spec.Scenario.PresetName()
			}
			res = &Result{
				Scenario: name,
				N:        spec.N, Seed: spec.Seed,
				Power: spec.Power, Graph: spec.Graph, Algo: spec.Algo,
			}
		}
		res.Err = err.Error()
	}
	return res, err
}

// NewInstance executes the full pipeline for one spec, returning both the
// materialized artifacts and the metric record. On error the partially
// filled Result (if any) is returned alongside. Cancellation: see Run.
func NewInstance(ctx context.Context, spec Spec) (*Instance, *Result, error) {
	return newInstance(ctx, spec, nil, nil)
}

// Workspace owns the per-worker scratch a batch runner reuses across
// instances: the coloring workspace today (conflict edge buffers and verify
// scratch recycle through package-level pools in their own layers). Not
// safe for concurrent use.
type Workspace struct {
	coloring *coloring.Workspace
}

// NewWorkspace returns an empty Workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{coloring: coloring.NewWorkspace()}
}

func newInstance(ctx context.Context, spec Spec, ws *Workspace, dc *DeployCache) (*Instance, *Result, error) {
	spec = spec.normalized()
	if spec.Scenario == nil {
		return nil, nil, fmt.Errorf("experiment: spec has no scenario")
	}
	if spec.N < 2 {
		return nil, nil, fmt.Errorf("experiment: need n >= 2, got %d", spec.N)
	}
	if spec.Sink < 0 || spec.Sink >= spec.N {
		return nil, nil, fmt.Errorf("experiment: sink %d out of range [0, %d)", spec.Sink, spec.N)
	}
	if err := spec.SINR.Validate(); err != nil {
		return nil, nil, err
	}
	strat, err := scheduler.Lookup(spec.Algo)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{
		Scenario: spec.Scenario.PresetName(),
		N:        spec.N, Seed: spec.Seed,
		Power: spec.Power, Graph: spec.Graph, Algo: spec.Algo,
	}
	// Reject unknown graph kinds and verify engines before paying for
	// generation.
	if _, err := spec.config(spec.Gamma).ConflictFunc(); err != nil {
		return nil, res, err
	}
	if spec.VerifyEngine != schedule.EngineFast && spec.VerifyEngine != schedule.EngineNaive {
		return nil, res, fmt.Errorf("experiment: unknown verify engine %q (have %v)",
			spec.VerifyEngine, schedule.Engines())
	}
	// TotalSec is stamped on every exit path, so stage timings of a run
	// that failed mid-pipeline still come with their wall-clock total;
	// the engine work counters ride along the same way.
	var engStats sinr.EngineStats
	start := time.Now()
	defer func() {
		res.Timings.TotalSec = time.Since(start).Seconds()
		res.Timings.VerifyExactLinks = engStats.ExactLinks
		res.Timings.VerifyExactPairsFrac = engStats.ExactPairsFrac()
		res.Timings.VerifyRefinedCells = engStats.RefinedCells
	}()

	// Stage-boundary cancellation points: the stages themselves (conflict
	// build, verification) also check ctx at chunk/slot granularity, so a
	// cancel stops an instance within one chunk of work.
	// Deployment stages (generate, EMST), possibly shared: with an instance
	// cache the deployment comes from (or is published to) the batch-wide
	// DeployCache; cold runs build a private, uncached entry through the
	// exact same path.
	var dep *deployEntry
	if dc != nil && !spec.NoInstanceCache {
		dep, err = deployFor(ctx, spec, dc, &res.Timings)
		if err != nil {
			return nil, res, err
		}
	} else {
		dep = &deployEntry{las: make(map[float64]*conflict.Lookahead)}
		if err := buildDeploy(ctx, spec, dep, &res.Timings); err != nil {
			return nil, res, err
		}
	}
	pts, tree := dep.pts, dep.tree

	links := tree.Links
	res.Links = len(links)
	div, err := geom.LinkDiversity(links)
	if err != nil {
		return nil, res, err
	}
	// Diversity is clamped so the record stays JSON-encodable when the true
	// ratio overflows float64 (subnormal shortest link vs huge longest);
	// Log2Diversity carries the unclamped truth in log space
	// (geom.LinkLog2Diversity), and log*/loglog are evaluated from the log2
	// form so they report the finite answer in exactly that regime.
	res.Diversity = math.Min(div, math.MaxFloat64)
	res.Log2Diversity, err = geom.LinkLog2Diversity(links)
	if err != nil {
		return nil, res, err
	}
	res.LogStar = stats.LogStarFromLog2(res.Log2Diversity)
	res.LogLog = stats.LogLogFromLog2(res.Log2Diversity)

	pf, err := spec.powerFunc(links)
	if err != nil {
		return nil, res, err
	}

	inst := &Instance{Spec: spec, Points: pts, Tree: tree, pf: pf}
	if spec.Verify && !spec.NoIncrementalVerify && spec.VerifyEngine == schedule.EngineFast {
		// One cache across all γ-escalation attempts: any slot the next
		// attempt's schedule shares with a previous one (same membership,
		// same powers) replays its exact margin instead of re-running the
		// engine.
		inst.vc = schedule.NewVerifyCache(spec.SINR)
	}
	gamma := spec.Gamma
	var la *conflict.Lookahead
	// Pre-power stage cache: with a shared deployment entry, the stage
	// product of each attempt (conflict build + ordering + coloring — the
	// schedule skeleton, everything before powers enter) is keyed under
	// (SchedKey, concrete γ) in the entry, so power-scheme-only spec
	// variants and γ-sweeps share one build per rung.
	schedCached := dc != nil && !spec.NoInstanceCache
	var skey string
	if schedCached {
		skey = SchedKey(spec)
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return inst, res, err
		}
		// buildStage is the cold stage body: arm the γ-lookahead and invoke
		// the strategy. The stage cache calls it on a miss; the uncached
		// path calls it directly — one code path either way, so cached
		// products are the exact objects a cold run builds.
		buildStage := func() (*schedule.Schedule, scheduler.Diag, error) {
			cfg := spec.config(gamma)
			if ws != nil {
				cfg.WS = ws.coloring
			}
			if !spec.NoLookahead {
				// γ-lookahead: arm (or re-arm, when escalation left the
				// window) a build ceiling Spec.GammaLookahead rungs above the
				// current γ, clamped to the rungs that can still occur. The
				// ceiling is computed by iterated multiplication — exactly how
				// the loop escalates γ — so every reachable rung compares
				// equal to it.
				if la == nil || gamma > la.GammaMax() {
					depth := spec.GammaLookahead
					if r := spec.MaxGammaRetries - attempt; r < depth {
						depth = r
					}
					top := gamma
					for i := 0; i < depth; i++ {
						top *= spec.GammaStep
					}
					// The deployment entry shares one Lookahead per ceiling,
					// so same-deployment specs pay the annotated build once; a
					// cold (uncached) entry degenerates to a private
					// Lookahead.
					la = dep.lookaheadFor(top)
				}
				cfg.Lookahead = la
			}
			return strat.Schedule(ctx, links, cfg)
		}
		var sched *schedule.Schedule
		var diag scheduler.Diag
		var reused bool
		if schedCached {
			sched, diag, reused, err = dc.schedFor(ctx, dep, schedGammaKey(skey, gamma), buildStage)
		} else {
			sched, diag, err = buildStage()
		}
		if err != nil {
			return nil, res, err
		}
		if reused {
			// The stage never ran in this instance: its build/order/color
			// seconds belong to the builder's Timings, not ours.
			res.Timings.SchedReused = true
		} else {
			// Stage timings accumulate across escalation attempts so that
			// they still sum to TotalSec when verification forces a rebuild.
			res.Timings.BuildSec += diag.BuildSec
			res.Timings.BuildFilterSec += diag.BuildFilterSec
			if diag.BuildReused {
				res.Timings.BuildReused = true
			}
			res.Timings.OrderSec += diag.OrderSec
			res.Timings.ColorSec += diag.ColorSec
			res.Timings.BuildCellsScanned += diag.BuildStats.CellsScanned
			res.Timings.BuildCellsPruned += diag.BuildStats.CellsPruned
			res.Timings.BuildCandScanned += diag.BuildStats.CandScanned
			res.Timings.BuildCandAccepted += diag.BuildStats.CandAccepted
		}

		inst.Graph, inst.Colors, inst.Schedule, inst.Diag = diag.Graph, diag.Colors, sched, diag
		inst.GammaUsed, inst.GammaRetries = gamma, attempt
		res.Edges = diag.Edges
		res.MaxDegree = diag.MaxDegree
		res.AvgDegree = diag.AvgDegree
		res.Colors = diag.NumColors
		res.Classes = diag.Classes
		// The lengthclass strategy's per-class Theorem-2 split; the explicit
		// Spec.Refine diagnostic below overwrites this with the global
		// refinement when requested.
		res.RefineSets = diag.RefineSets
		res.ScheduleLength = sched.Period()
		res.Rate = sched.Rate()
		res.GammaUsed = gamma
		res.GammaRetries = attempt
		res.ColorsPerLogStar = float64(diag.NumColors) / math.Max(1, float64(res.LogStar))
		res.ColorsPerLogLog = float64(diag.NumColors) / math.Max(1, res.LogLog)

		if !spec.Verify {
			break
		}
		t0 := time.Now()
		var margin float64
		var verr error
		if spec.VerifyEngine == schedule.EngineNaive {
			margin, verr = sched.VerifySINRNaive(spec.SINR, pf)
		} else {
			var vst schedule.VerifyStats
			margin, vst, verr = sched.VerifySINRDelta(ctx, spec.SINR, pf, inst.vc)
			engStats.Add(vst.Engine)
			res.Timings.PowerSolveSec += vst.PowerSec
			res.Timings.VerifyReusedSlots += int64(vst.ReusedSlots)
			res.Timings.VerifyGridReused += int64(vst.ReusedGrids)
			inst.VerifyStats = vst
		}
		res.Timings.VerifySec += time.Since(t0).Seconds()
		if verr != nil && ctx.Err() != nil {
			// Cancelled mid-verification: no verdict was reached, so this is
			// not a feasibility failure — surface the context error rather
			// than escalating γ.
			return inst, res, ctx.Err()
		}
		if verr == nil {
			inst.Margin = margin
			res.Margin = math.Min(margin, marginClamp)
			res.Verified = true
			break
		}
		if attempt >= spec.MaxGammaRetries {
			return inst, res, fmt.Errorf("experiment: schedule still infeasible after %d gamma escalations (gamma=%.3g): %w",
				attempt, gamma, verr)
		}
		gamma *= spec.GammaStep
	}

	if spec.Refine {
		t0 := time.Now()
		sets := coloring.Refine(links, spec.SINR)
		res.Timings.RefineSec = time.Since(t0).Seconds()
		if err := coloring.VerifyRefinement(links, sets, spec.SINR); err != nil {
			return inst, res, err
		}
		inst.RefineSets = sets
		res.RefineSets = len(sets)
	}
	return inst, res, nil
}

// Runner executes spec batches over a worker pool, emitting each Result to
// the Sink as it completes. Each worker owns one reusable Workspace that
// survives across the instances it runs, so batch throughput stops paying
// the per-instance scratch allocation (coloring buffers here; conflict edge
// buffers and verification scratch recycle through their packages' pools).
type Runner struct {
	// Workers is the pool width (<= 0 means GOMAXPROCS, clamped to the
	// batch size).
	Workers int
	// Sink, when non-nil, receives (spec index, result) for every instance
	// that ran to completion — success or failure, but never an instance
	// aborted by the batch context. Calls are serialized (no internal
	// locking needed) but arrive in completion order, not spec order;
	// callers needing deterministic output must reorder by index.
	Sink func(i int, r *Result)
	// Drain, when non-nil, is a soft-stop signal: once it is cancelled,
	// workers stop claiming new specs but in-flight instances run to
	// completion (and still reach the Sink). This is the graceful-shutdown
	// hook of the serving layer — the batch stops at the next spec boundary
	// instead of discarding partially computed instances the way a ctx
	// cancel does.
	Drain context.Context
	// Deploy is the stage-split instance cache shared by the batch: specs
	// with equal DeployKeys (same scenario, n, seed, sink) share one
	// generation + EMST + lookahead build. Nil means Run creates a private
	// cache per batch — the compare-grid case — so sharing is on by
	// default; individual specs opt out via Spec.NoInstanceCache. The
	// serving layer installs a server-wide cache here instead.
	Deploy *DeployCache
}

// Run executes the specs and returns results in spec order — deterministic
// in the specs regardless of worker count or scheduling, since every
// instance is seeded independently. On cancellation it stops claiming new
// specs, lets in-flight instances unwind at their next chunk boundary, and
// returns ctx.Err() with the partial result set: entries for instances that
// never ran (or were aborted mid-flight) are nil.
func (r *Runner) Run(ctx context.Context, specs []Spec) ([]*Result, error) {
	workers := Workers(r.Workers, len(specs))
	dc := r.Deploy
	if dc == nil {
		dc = NewDeployCache(0)
	}
	out := make([]*Result, len(specs))
	var cursor atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := NewWorkspace()
			for ctx.Err() == nil {
				if r.Drain != nil && r.Drain.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				res, err := runWS(ctx, specs[i], ws, dc)
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					// Aborted mid-instance: not a completed result.
					return
				}
				mu.Lock()
				out[i] = res
				if r.Sink != nil {
					r.Sink(i, res)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// RunBatch executes the specs over a pool of workers goroutines (GOMAXPROCS
// when workers <= 0) and returns results in spec order. On cancellation the
// returned slice is partial — nil entries mark instances that never
// completed. Streaming consumers should use Runner directly.
func RunBatch(ctx context.Context, specs []Spec, workers int) []*Result {
	out, _ := (&Runner{Workers: workers}).Run(ctx, specs)
	return out
}

// Workers resolves a requested worker count to the one RunBatch will
// actually use: GOMAXPROCS when workers <= 0, clamped to the job count.
func Workers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	return workers
}

// Expand builds the (scenario × n × seed × power × algo) cross product of
// specs, using base for every non-product field. Seeds are base.Seed,
// base.Seed+1, …, base.Seed+seeds-1, so the algorithms of one cell run on
// identical instances.
func Expand(scenarios []Scenario, ns []int, seeds int, powers, algos []string, base Spec) []Spec {
	if seeds < 1 {
		seeds = 1
	}
	if len(powers) == 0 {
		powers = []string{base.normalized().Power}
	}
	if len(algos) == 0 {
		algos = []string{base.normalized().Algo}
	}
	specs := make([]Spec, 0, len(scenarios)*len(ns)*seeds*len(powers)*len(algos))
	for _, sc := range scenarios {
		for _, n := range ns {
			for _, pw := range powers {
				for _, al := range algos {
					for s := 0; s < seeds; s++ {
						sp := base
						sp.Scenario = sc
						sp.N = n
						sp.Power = pw
						sp.Algo = al
						sp.Seed = base.Seed + uint64(s)
						specs = append(specs, sp)
					}
				}
			}
		}
	}
	return specs
}

// Summary aggregates the results of one (scenario, n, power, graph, algo)
// cell across seeds.
type Summary struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"`
	Power    string `json:"power"`
	Graph    string `json:"graph"`
	Algo     string `json:"algo"`
	Seeds    int    `json:"seeds"`
	Errors   int    `json:"errors"`

	MeanColors   float64 `json:"mean_colors"`
	MinColors    float64 `json:"min_colors"`
	MaxColors    float64 `json:"max_colors"`
	StdColors    float64 `json:"std_colors"`
	MeanLength   float64 `json:"mean_schedule_length"`
	MeanRate     float64 `json:"mean_rate"`
	MeanEdges    float64 `json:"mean_edges"`
	MeanMargin   float64 `json:"mean_margin"`
	MeanGamma    float64 `json:"mean_gamma_used"`
	MedDiversity float64 `json:"median_diversity"`
	MeanLogStar  float64 `json:"mean_logstar"`
	// MeanColorsPerLogStar is the paper's headline normalized rate.
	MeanColorsPerLogStar float64 `json:"mean_colors_per_logstar"`
	MeanTotalSec         float64 `json:"mean_total_sec"`
}

// Aggregate groups results by (scenario, n, power, graph, algo) and reduces
// each group with internal/stats. Failed results count toward Errors and are
// excluded from the numeric reductions. Groups come back in deterministic
// sorted order.
func Aggregate(results []*Result) []Summary {
	type key struct {
		Scenario string
		N        int
		Power    string
		Graph    string
		Algo     string
	}
	groups := make(map[key][]*Result)
	for _, r := range results {
		if r == nil {
			continue
		}
		k := key{r.Scenario, r.N, r.Power, r.Graph, r.Algo}
		groups[k] = append(groups[k], r)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.Scenario != kb.Scenario {
			return ka.Scenario < kb.Scenario
		}
		if ka.N != kb.N {
			return ka.N < kb.N
		}
		if ka.Power != kb.Power {
			return ka.Power < kb.Power
		}
		if ka.Graph != kb.Graph {
			return ka.Graph < kb.Graph
		}
		return ka.Algo < kb.Algo
	})
	out := make([]Summary, 0, len(keys))
	for _, k := range keys {
		rs := groups[k]
		s := Summary{Scenario: k.Scenario, N: k.N, Power: k.Power, Graph: k.Graph, Algo: k.Algo, Seeds: len(rs)}
		var colors, lengths, rates, edges, margins, gammas, divs, logstars, cpls, totals []float64
		for _, r := range rs {
			if r.Err != "" {
				s.Errors++
				continue
			}
			colors = append(colors, float64(r.Colors))
			lengths = append(lengths, float64(r.ScheduleLength))
			rates = append(rates, r.Rate)
			edges = append(edges, float64(r.Edges))
			// Margins are only measured when verification ran. Clamped
			// margins stand in for +Inf (singleton slots under zero noise);
			// averaging the 1e30 sentinel would drown real margins.
			if r.Verified && r.Margin < marginClamp {
				margins = append(margins, r.Margin)
			}
			gammas = append(gammas, r.GammaUsed)
			divs = append(divs, r.Diversity)
			// LogStarUndefined (-1) marks a non-finite diversity; averaging
			// the sentinel (or a normalization clamped against it) into the
			// summary would corrupt it, so such rows are left out of both
			// log*-derived reductions.
			if r.LogStar != stats.LogStarUndefined {
				logstars = append(logstars, float64(r.LogStar))
				cpls = append(cpls, r.ColorsPerLogStar)
			}
			totals = append(totals, r.Timings.TotalSec)
		}
		if len(colors) > 0 {
			s.MeanColors = stats.Mean(colors)
			s.MinColors = stats.Min(colors)
			s.MaxColors = stats.Max(colors)
			s.StdColors = stats.StdDev(colors)
			s.MeanLength = stats.Mean(lengths)
			s.MeanRate = stats.Mean(rates)
			s.MeanEdges = stats.Mean(edges)
			s.MeanMargin = stats.Mean(margins)
			s.MeanGamma = stats.Mean(gammas)
			s.MedDiversity = stats.Median(divs)
			s.MeanLogStar = stats.Mean(logstars)
			s.MeanColorsPerLogStar = stats.Mean(cpls)
			s.MeanTotalSec = stats.Mean(totals)
		}
		out = append(out, s)
	}
	return out
}
