package experiment

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// escalatingSpec is the deterministic near-threshold fixture: G_γ at
// γ₀ = 0.5 on uniform n=400 escalates 6 times before mean-power
// verification succeeds (pinned by the retries assertion below), so the
// retry path — the whole point of the γ-lookahead — is exercised for real.
// GammaLookahead is opened to the full retry budget so every attempt after
// the first is served by the filter scan.
func escalatingSpec(t *testing.T) Spec {
	spec := NewSpec(uniformScenario(t), 400, 7)
	spec.Graph = GraphGamma
	spec.Gamma = 0.5
	spec.GammaLookahead = spec.MaxGammaRetries
	return spec
}

// TestEscalationLookaheadReuse: on a γ-escalating instance, attempt 2+ must
// be served by the lookahead filter scan — build_reused set, filter time
// accounted separately — and the final attempt's own Diag must report reuse
// (it ran at an escalated γ inside the window).
func TestEscalationLookaheadReuse(t *testing.T) {
	inst, res, err := NewInstance(context.Background(), escalatingSpec(t))
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if res.GammaRetries < 2 {
		t.Fatalf("fixture regressed: %d escalations, need >= 2", res.GammaRetries)
	}
	if !res.Verified {
		t.Fatal("fixture schedule not verified")
	}
	if !res.Timings.BuildReused {
		t.Fatal("escalating run never reused the lookahead build")
	}
	if res.Timings.BuildFilterSec <= 0 {
		t.Fatalf("build_filter_sec = %g, want > 0 on a reusing run", res.Timings.BuildFilterSec)
	}
	if res.Timings.BuildSec <= 0 {
		t.Fatal("build_sec empty: the first attempt's full build must still be accounted")
	}
	// The final attempt ran at an escalated γ within the lookahead window,
	// so its conflict graph came from the filter scan.
	if !inst.Diag.BuildReused {
		t.Fatal("final attempt's Diag does not report lookahead reuse")
	}
	if inst.GammaRetries != res.GammaRetries || inst.GammaUsed != res.GammaUsed {
		t.Fatalf("instance/result escalation records disagree: %+v vs %+v",
			inst.GammaRetries, res.GammaRetries)
	}
}

// TestLookaheadMatchesDirectRun is the end-to-end parity half: the lookahead
// run and a --no-lookahead run must land on the identical schedule — same
// escalation count, same final γ, same palette, same conflict-graph size,
// same worst margin — because filtered graphs are bit-identical to direct
// builds.
func TestLookaheadMatchesDirectRun(t *testing.T) {
	withLA, resLA, err := NewInstance(context.Background(), escalatingSpec(t))
	if err != nil {
		t.Fatalf("lookahead run: %v", err)
	}
	specDirect := escalatingSpec(t)
	specDirect.NoLookahead = true
	withoutLA, resDirect, err := NewInstance(context.Background(), specDirect)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if resDirect.Timings.BuildReused || resDirect.Timings.BuildFilterSec != 0 {
		t.Fatalf("--no-lookahead run reports lookahead activity: %+v", resDirect.Timings)
	}
	if resLA.GammaUsed != resDirect.GammaUsed || resLA.GammaRetries != resDirect.GammaRetries {
		t.Fatalf("escalation differs: lookahead (γ=%g, %d retries) vs direct (γ=%g, %d retries)",
			resLA.GammaUsed, resLA.GammaRetries, resDirect.GammaUsed, resDirect.GammaRetries)
	}
	if resLA.Colors != resDirect.Colors || resLA.ScheduleLength != resDirect.ScheduleLength {
		t.Fatalf("palette differs: lookahead %d/%d vs direct %d/%d",
			resLA.Colors, resLA.ScheduleLength, resDirect.Colors, resDirect.ScheduleLength)
	}
	if resLA.Edges != resDirect.Edges || resLA.MaxDegree != resDirect.MaxDegree {
		t.Fatalf("conflict graph differs: lookahead %d edges vs direct %d edges",
			resLA.Edges, resDirect.Edges)
	}
	if resLA.Margin != resDirect.Margin {
		t.Fatalf("margin differs: lookahead %g vs direct %g", resLA.Margin, resDirect.Margin)
	}
	if len(withLA.Colors) != len(withoutLA.Colors) {
		t.Fatal("coloring lengths differ")
	}
	for i := range withLA.Colors {
		if withLA.Colors[i] != withoutLA.Colors[i] {
			t.Fatalf("coloring differs at link %d: %d vs %d", i, withLA.Colors[i], withoutLA.Colors[i])
		}
	}
}

// countdownCtx cancels after its Err method has been consulted a fixed
// number of times: a deterministic way to land a cancellation at every
// internal check site in turn, without goroutines or timing.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(k int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(k)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestLookaheadCancelMidPipeline sweeps a countdown cancellation across the
// escalating fixture, so the context fires at every successive check site —
// including mid-filter-scan inside the lookahead path — and asserts each
// aborted run surfaces as a well-formed partial result: the context error,
// a non-nil Result with its wall-clock stamped, and never a phantom
// verified schedule.
func TestLookaheadCancelMidPipeline(t *testing.T) {
	spec := escalatingSpec(t)
	for k := int64(1); ; k *= 2 {
		ctx := newCountdownCtx(k)
		inst, res, err := NewInstance(ctx, spec)
		if err == nil {
			if res == nil || !res.Verified {
				t.Fatalf("k=%d: completed run is not verified", k)
			}
			if inst == nil || !inst.Diag.BuildReused {
				t.Fatalf("k=%d: completed run lost the lookahead path", k)
			}
			return // countdown outlasted the pipeline: sweep complete
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: unexpected error %v", k, err)
		}
		if res == nil {
			t.Fatalf("k=%d: cancelled run returned no partial result", k)
		}
		if res.Verified {
			t.Fatalf("k=%d: cancelled run claims verification", k)
		}
		if res.Timings.TotalSec <= 0 {
			t.Fatalf("k=%d: partial result missing wall-clock stamp", k)
		}
		if k > 1<<40 {
			t.Fatal("countdown sweep did not terminate")
		}
	}
}

// TestLookaheadTimingSplit: a non-escalating run (γ generous enough to
// verify first try) must not report reuse, and its filter time stays zero —
// the lookahead only pays off (and only reports) when retries happen.
func TestLookaheadTimingSplit(t *testing.T) {
	spec := NewSpec(uniformScenario(t), 400, 7)
	spec.Gamma = 8 // far above threshold: first attempt verifies
	start := time.Now()
	_, res, err := NewInstance(context.Background(), spec)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if res.GammaRetries != 0 {
		t.Fatalf("generous-γ fixture escalated %d times", res.GammaRetries)
	}
	if res.Timings.BuildReused {
		t.Fatal("single-attempt run reports build reuse")
	}
	if res.Timings.TotalSec > time.Since(start).Seconds() {
		t.Fatal("timings exceed wall clock")
	}
}
