// Stage-split instance cache: a Spec factors into a deployment prefix
// (scenario, size, seed, sink — the fields that determine the pointset, the
// aggregation tree, and hence every conflict build over its links) and a
// scheduling tail (power, graph, algo, γ/δ, SINR, verify knobs). Specs that
// share the prefix — a 4-algo compare grid, near-key service jobs differing
// only in algo or power — share one generation, one EMST, and one
// strength-annotated lookahead build per γ ceiling, instead of recomputing
// the deployment per spec. Results are bit-identical to cold runs: the
// cached artifacts are the exact objects a cold run would have built
// (generation and EMST are deterministic in the prefix, and the shared
// conflict.Lookahead serves bit-identical graphs by its own parity
// contract), and every cached object is treated as immutable downstream.
package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aggrate/internal/conflict"
	"aggrate/internal/geom"
	"aggrate/internal/mst"
	"aggrate/internal/schedule"
	"aggrate/internal/scheduler"
)

// DeployKey returns the deployment prefix of the spec's canonical form:
// the fields that fully determine the generated pointset and its EMST
// (scenario preset, size, seed, sink). Specs with equal DeployKeys run the
// scheduling pipeline over the same deployment, which is what makes the
// instance cache sound. It is also the exact prefix of the canonical string
// SpecKey hashes.
func DeployKey(s Spec) string {
	n := s.normalized()
	name := ""
	if n.Scenario != nil {
		name = n.Scenario.PresetName()
	}
	return fmt.Sprintf("%s|%d|%d|%d", name, n.N, n.Seed, n.Sink)
}

// SchedKey returns a canonical content hash of the spec's pre-power
// scheduling prefix: the deployment (DeployKey) plus every field the
// ordering+coloring+schedule stage reads — graph kind, algorithm, δ, and the
// SINR constants. It is SpecKey minus the power scheme and the
// verification/escalation knobs. γ is deliberately absent too: the stage
// runs at a concrete (possibly escalated) γ, so the stage cache sub-keys
// each build by the attempt's γ — power-scheme-only spec variants and
// γ-sweeps that reach the same rung then share one ordering+coloring build.
func SchedKey(s Spec) string {
	n := s.normalized()
	h := sha256.Sum256([]byte(DeployKey(s) + fmt.Sprintf("|sched|%s|%s|%g|%g|%g|%g|%g",
		n.Graph, n.Algo, n.Delta,
		n.SINR.Alpha, n.SINR.Beta, n.SINR.Noise, n.SINR.Epsilon)))
	return hex.EncodeToString(h[:16])
}

// schedGammaKey is the stage cache's sub-key: the SchedKey prefix plus the
// attempt's concrete γ, printed exactly (hex float) so distinct rungs never
// collide through decimal rounding.
func schedGammaKey(schedKey string, gamma float64) string {
	return schedKey + "|" + strconv.FormatFloat(gamma, 'x', -1, 64)
}

// deployEntry holds the deployment-determined artifacts of one DeployKey.
// ready is closed when the builder finishes (err says how); after that the
// artifact fields are immutable and safe to share across instances.
type deployEntry struct {
	ready chan struct{}
	err   error

	pts  []geom.Point
	tree *mst.Tree

	// las shares one conflict.Lookahead per γ ceiling across the specs of
	// this deployment. A Lookahead is internally keyed by (family, link-set
	// content) and safe for concurrent use, so specs with different graph
	// kinds or deltas coexist in one; the ceiling must match exactly
	// because the annotated build's strengths only cover γ ≤ ceiling.
	laMu sync.Mutex
	las  map[float64]*conflict.Lookahead

	// scheds shares the pre-power stage product — the schedule skeleton and
	// its strategy diagnostics — across the specs of this deployment, keyed
	// by schedGammaKey (SchedKey + the attempt's concrete γ). Strategies are
	// deterministic in (links, Config) and the cached *schedule.Schedule and
	// Diag are immutable after publish, so a reused stage is bit-identical
	// to the build a cold run would have done. Same singleflight protocol as
	// the deployment itself: the first requester builds, the rest wait.
	schedMu sync.Mutex
	scheds  map[string]*schedEntry

	// LRU linkage (guarded by the owning cache's mutex).
	key        string
	prev, next *deployEntry
}

// schedEntry is one cached pre-power stage product: the schedule skeleton
// (ordering+coloring) of one (SchedKey, γ) under this deployment. ready is
// closed when the builder finishes; after that sched/diag are immutable.
type schedEntry struct {
	ready chan struct{}
	err   error

	sched *schedule.Schedule
	diag  scheduler.Diag
}

// schedAcquire returns the stage entry for key and whether the caller is its
// builder. Builders must fill the entry and call schedFinish exactly once;
// non-builders wait on ready.
func (e *deployEntry) schedAcquire(key string) (*schedEntry, bool) {
	e.schedMu.Lock()
	defer e.schedMu.Unlock()
	if se, ok := e.scheds[key]; ok {
		return se, false
	}
	if e.scheds == nil {
		e.scheds = make(map[string]*schedEntry)
	}
	se := &schedEntry{ready: make(chan struct{})}
	e.scheds[key] = se
	return se, true
}

// schedFinish publishes the builder's outcome. A failed build is removed so
// the next attempt retries instead of replaying the error.
func (e *deployEntry) schedFinish(key string, se *schedEntry, err error) {
	se.err = err
	close(se.ready)
	if err != nil {
		e.schedMu.Lock()
		if cur, ok := e.scheds[key]; ok && cur == se {
			delete(e.scheds, key)
		}
		e.schedMu.Unlock()
	}
}

// lookaheadFor returns the entry's shared Lookahead armed at the given γ
// ceiling, creating it on first request.
func (e *deployEntry) lookaheadFor(top float64) *conflict.Lookahead {
	e.laMu.Lock()
	defer e.laMu.Unlock()
	la := e.las[top]
	if la == nil {
		la = conflict.NewLookahead(top)
		e.las[top] = la
	}
	return la
}

// DeployCache is an LRU cache of deployment artifacts keyed by DeployKey,
// shared across the specs of a batch (and, in the serving layer, across
// jobs). Concurrent requests for the same missing key collapse into one
// build: the first caller generates the deployment while the rest wait on
// it. Safe for concurrent use.
type DeployCache struct {
	mu         sync.Mutex
	max        int
	entries    map[string]*deployEntry
	head, tail *deployEntry

	hits, misses, evictions int64

	// Pre-power stage cache counters, across every deployment entry: a hit
	// is an escalation attempt served by a cached ordering+coloring build
	// (possibly after waiting for its builder), a miss is an attempt that
	// built the stage. Atomics so the hot per-attempt path never takes the
	// cache's LRU lock.
	schedHits, schedMisses atomic.Int64
}

// DefaultDeployCacheEntries is the entry budget NewDeployCache installs for
// batch runners: deployments are large (points, tree, annotated conflict
// builds), and a compare grid only ever needs the deployments of one
// (scenario, n, seed) cell at a time per worker.
const DefaultDeployCacheEntries = 4

// NewDeployCache returns an empty cache holding at most maxEntries
// deployments (≤ 0 means DefaultDeployCacheEntries).
func NewDeployCache(maxEntries int) *DeployCache {
	if maxEntries <= 0 {
		maxEntries = DefaultDeployCacheEntries
	}
	return &DeployCache{max: maxEntries, entries: make(map[string]*deployEntry)}
}

// Len reports the number of cached deployments (including in-flight builds).
func (dc *DeployCache) Len() int {
	if dc == nil {
		return 0
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return len(dc.entries)
}

// Stats reports the cache's lifetime hit/miss/eviction counters. A hit is a
// request served by an existing entry (possibly waiting for its builder);
// a miss is a request that had to build.
func (dc *DeployCache) Stats() (hits, misses, evictions int64) {
	if dc == nil {
		return 0, 0, 0
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.hits, dc.misses, dc.evictions
}

// SchedStats reports the pre-power stage cache's lifetime hit/miss counters:
// hits are escalation attempts whose ordering+coloring+schedule skeleton was
// served by a cached build (power-scheme-only spec variants and γ-sweep
// rungs landing on a stage another spec already built), misses are attempts
// that built the stage.
func (dc *DeployCache) SchedStats() (hits, misses int64) {
	if dc == nil {
		return 0, 0
	}
	return dc.schedHits.Load(), dc.schedMisses.Load()
}

// schedFor resolves one escalation attempt's pre-power stage product through
// dep's stage cache: a hit shares the cached schedule skeleton and strategy
// diagnostics, a miss runs build (the strategy invocation, exactly as the
// cold path would) and publishes the product for the attempts that follow.
// A waiter whose builder failed falls back to a private build under its own
// context — the cache can delay an attempt but never fail one on another's
// behalf. reused reports a hit, so the caller can skip stamping stage
// timings for work that never ran in this instance.
func (dc *DeployCache) schedFor(ctx context.Context, dep *deployEntry, key string,
	build func() (*schedule.Schedule, scheduler.Diag, error)) (sched *schedule.Schedule, diag scheduler.Diag, reused bool, err error) {
	se, builder := dep.schedAcquire(key)
	if builder {
		dc.schedMisses.Add(1)
		sched, diag, err = build()
		se.sched, se.diag = sched, diag
		dep.schedFinish(key, se, err)
		return sched, diag, false, err
	}
	dc.schedHits.Add(1)
	select {
	case <-ctx.Done():
		return nil, scheduler.Diag{}, false, ctx.Err()
	case <-se.ready:
	}
	if se.err != nil {
		// Builder failed under its own context; retry cold under ours.
		sched, diag, err = build()
		return sched, diag, false, err
	}
	return se.sched, se.diag, true, nil
}

// acquire returns the entry for key and whether the caller is its builder.
// Builders must fill the entry and call finish exactly once; non-builders
// wait on ready.
func (dc *DeployCache) acquire(key string) (*deployEntry, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if e, ok := dc.entries[key]; ok {
		dc.hits++
		dc.moveFront(e)
		return e, false
	}
	dc.misses++
	e := &deployEntry{
		ready: make(chan struct{}),
		las:   make(map[float64]*conflict.Lookahead),
		key:   key,
	}
	dc.entries[key] = e
	dc.pushFront(e)
	// Evict least-recently-used completed entries past the budget. In-flight
	// builds are never evicted — their waiters hold the entry pointer.
	for n := len(dc.entries); n > dc.max; n-- {
		victim := dc.tail
		for victim != nil && !victim.done() {
			victim = victim.prev
		}
		if victim == nil || victim == e {
			break
		}
		dc.unlink(victim)
		delete(dc.entries, victim.key)
		dc.evictions++
	}
	return e, true
}

// finish publishes the builder's outcome. A failed build is removed from
// the cache so the next request retries instead of replaying the error.
func (dc *DeployCache) finish(e *deployEntry, err error) {
	e.err = err
	close(e.ready)
	if err != nil {
		dc.mu.Lock()
		if cur, ok := dc.entries[e.key]; ok && cur == e {
			dc.unlink(e)
			delete(dc.entries, e.key)
		}
		dc.mu.Unlock()
	}
}

func (e *deployEntry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

func (dc *DeployCache) unlink(e *deployEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		dc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		dc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (dc *DeployCache) pushFront(e *deployEntry) {
	e.prev, e.next = nil, dc.head
	if dc.head != nil {
		dc.head.prev = e
	}
	dc.head = e
	if dc.tail == nil {
		dc.tail = e
	}
}

func (dc *DeployCache) moveFront(e *deployEntry) {
	if dc.head == e {
		return
	}
	dc.unlink(e)
	dc.pushFront(e)
}

// deployFor resolves the deployment artifacts for spec through the cache:
// a hit shares the cached pointset/tree (stamping Timings.DeployReused), a
// miss builds them exactly as the cold path would, stamping the same stage
// timings, and publishes the entry for the specs that follow. A waiter
// whose builder failed (or whose wait was cut by ctx while the builder's
// own context died) falls back to a cold build under its own context —
// the cache can delay an instance but never fail one on another's behalf.
func deployFor(ctx context.Context, spec Spec, dc *DeployCache, t *Timings) (*deployEntry, error) {
	e, builder := dc.acquire(DeployKey(spec))
	if builder {
		err := buildDeploy(ctx, spec, e, t)
		dc.finish(e, err)
		return e, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.ready:
	}
	if e.err != nil {
		// Builder failed under its own context; retry cold under ours.
		cold := &deployEntry{
			ready: make(chan struct{}),
			las:   make(map[float64]*conflict.Lookahead),
		}
		if err := buildDeploy(ctx, spec, cold, t); err != nil {
			return nil, err
		}
		close(cold.ready)
		return cold, nil
	}
	t.DeployReused = true
	return e, nil
}

// buildDeploy runs the deployment stages (generate, EMST) into e, stamping
// the same per-stage timings the cold pipeline records.
func buildDeploy(ctx context.Context, spec Spec, e *deployEntry, t *Timings) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t0 := time.Now()
	e.pts = spec.Scenario.Generate(spec.N, spec.Seed)
	t.GenerateSec = time.Since(t0).Seconds()

	if err := ctx.Err(); err != nil {
		return err
	}
	t0 = time.Now()
	tree, err := mst.NewMSTTreeCtx(ctx, e.pts, spec.Sink)
	if err != nil {
		return fmt.Errorf("experiment: mst: %w", err)
	}
	e.tree = tree
	t.MSTSec = time.Since(t0).Seconds()
	return nil
}
