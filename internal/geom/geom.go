// Package geom provides the planar geometry substrate for the aggregation
// scheduler: points, directed communication links, the distance functions
// used by the SINR model and the conflict-graph framework, and the length
// diversity Δ of pointsets and link sets.
//
// Conventions follow Sec. 2 of Halldórsson & Tonoyan, "Wireless Aggregation
// at Nearly Constant Rate" (ICDCS 2018):
//
//   - d_ij = d(s_i, r_j) is the sender-to-receiver distance used in SINR
//     interference terms,
//   - l_i = d(s_i, r_i) is the length of link i,
//   - d(i, j) is the minimum distance between the endpoints of links i and j,
//   - Δ(L) is the ratio of the longest to the shortest link length in L, and
//   - Δ(R) for a pointset R is the ratio between the furthest and the
//     closest pair distances.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison key in inner loops.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the translate p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by the factor s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Link is a directed communication request from a sender node to a
// receiver node. Links are the vertices of every conflict graph and the
// unit of scheduling: one link transmits one packet per time slot.
type Link struct {
	// Sender and Receiver are indices into the owning instance's pointset.
	Sender, Receiver int
	// S and R are the sender and receiver coordinates.
	S, R Point
}

// NewLink constructs a link between two indexed points.
func NewLink(sender, receiver int, s, r Point) Link {
	return Link{Sender: sender, Receiver: receiver, S: s, R: r}
}

// Length returns l_i, the sender-receiver distance of the link.
func (l Link) Length() float64 { return l.S.Dist(l.R) }

// String implements fmt.Stringer.
func (l Link) String() string {
	return fmt.Sprintf("link %d->%d len=%g", l.Sender, l.Receiver, l.Length())
}

// SenderToReceiver returns d_ij = d(s_i, r_j), the distance from the sender
// of link i to the receiver of link j. This is the distance that governs the
// interference link i imposes on link j in the physical model.
func SenderToReceiver(i, j Link) float64 { return i.S.Dist(j.R) }

// LinkDist returns d(i, j), the minimum distance between the endpoints
// (nodes) of the two links, per the paper's Sec. 2 definition. It is
// symmetric: LinkDist(i, j) == LinkDist(j, i).
func LinkDist(i, j Link) float64 {
	return math.Sqrt(LinkDist2(i, j))
}

// LinkDist2 returns the square of LinkDist. Inner loops that only compare
// distances against thresholds should square the threshold and use this.
func LinkDist2(i, j Link) float64 {
	d := i.S.Dist2(j.S)
	if v := i.S.Dist2(j.R); v < d {
		d = v
	}
	if v := i.R.Dist2(j.S); v < d {
		d = v
	}
	if v := i.R.Dist2(j.R); v < d {
		d = v
	}
	return d
}

// MinMaxLen returns (l_min, l_max) of the pair of links.
func MinMaxLen(i, j Link) (lmin, lmax float64) {
	li, lj := i.Length(), j.Length()
	if li < lj {
		return li, lj
	}
	return lj, li
}

// Lengths returns the slice of link lengths of L, in order.
func Lengths(links []Link) []float64 {
	out := make([]float64, len(links))
	for i, l := range links {
		out[i] = l.Length()
	}
	return out
}

// minMaxLinkLength scans the link lengths once, rejecting non-positive
// values (a zero-length link has no meaningful SINR semantics). It is the
// shared kernel of the diversity functions; callers handle the empty set.
func minMaxLinkLength(links []Link) (lo, hi float64, err error) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, l := range links {
		le := l.Length()
		if le <= 0 {
			return 0, 0, fmt.Errorf("geom: link %d->%d has non-positive length %g", l.Sender, l.Receiver, le)
		}
		if le < lo {
			lo = le
		}
		if le > hi {
			hi = le
		}
	}
	return lo, hi, nil
}

// LinkDiversity returns Δ(L), the ratio between the longest and the
// shortest link length in L. It returns 1 for empty or single-link sets and
// an error if any link has non-positive length. Note the ratio can overflow
// to +Inf for extreme length ranges; LinkLog2Diversity stays finite there.
func LinkDiversity(links []Link) (float64, error) {
	if len(links) == 0 {
		return 1, nil
	}
	lo, hi, err := minMaxLinkLength(links)
	if err != nil {
		return 0, err
	}
	return hi / lo, nil
}

// LinkLog2Diversity returns log₂ Δ(L) computed in log space
// (log₂ l_max − log₂ l_min), so it stays finite even when the ratio Δ(L)
// itself overflows float64 (e.g. subnormal shortest link, huge longest).
// Like LinkDiversity it returns 0 (= log₂ 1) for empty or single-link sets
// and an error on non-positive lengths.
func LinkLog2Diversity(links []Link) (float64, error) {
	if len(links) == 0 {
		return 0, nil
	}
	lo, hi, err := minMaxLinkLength(links)
	if err != nil {
		return 0, err
	}
	return math.Log2(hi) - math.Log2(lo), nil
}

// PointDiversity returns Δ(R) for the pointset: the ratio between the
// maximum and the minimum pairwise distance. It is quadratic in |R| and
// returns an error when two points coincide (Δ would be infinite) or when
// fewer than two points are given.
func PointDiversity(pts []Point) (float64, error) {
	if len(pts) < 2 {
		return 0, fmt.Errorf("geom: need at least 2 points, got %d", len(pts))
	}
	lo := math.Inf(1)
	hi := 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].Dist2(pts[j])
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
	}
	if lo == 0 {
		return 0, fmt.Errorf("geom: duplicate points (zero minimum distance)")
	}
	return math.Sqrt(hi / lo), nil
}

// ClosestPair returns the indices (i, j), i<j, of the closest pair of
// points and their distance, by exhaustive search. It panics if fewer than
// two points are supplied; callers generate the pointsets and control this.
func ClosestPair(pts []Point) (int, int, float64) {
	if len(pts) < 2 {
		panic("geom: ClosestPair needs at least 2 points")
	}
	bi, bj := 0, 1
	best := pts[0].Dist2(pts[1])
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist2(pts[j]); d < best {
				best, bi, bj = d, i, j
			}
		}
	}
	return bi, bj, math.Sqrt(best)
}

// Diameter returns the maximum pairwise distance of the pointset, 0 for
// fewer than two points.
func Diameter(pts []Point) float64 {
	hi := 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist2(pts[j]); d > hi {
				hi = d
			}
		}
	}
	return math.Sqrt(hi)
}

// BoundingBox returns the axis-aligned bounding box (min corner, max
// corner) of the pointset. For an empty set it returns two zero points.
func BoundingBox(pts []Point) (lo, hi Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	lo, hi = pts[0], pts[0]
	for _, p := range pts[1:] {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	return lo, hi
}

// Translate returns a copy of pts with every point shifted by off.
func Translate(pts []Point, off Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = p.Add(off)
	}
	return out
}

// ScalePoints returns a copy of pts with every point scaled by s about the
// origin.
func ScalePoints(pts []Point, s float64) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = p.Scale(s)
	}
	return out
}

// OnLine reports whether all points are collinear with the x-axis
// (Y == 0), which is how line instances are embedded in the plane.
func OnLine(pts []Point) bool {
	for _, p := range pts {
		if p.Y != 0 {
			return false
		}
	}
	return true
}
