package geom

import (
	"math"
	"testing"
)

func TestLinkDistances(t *testing.T) {
	// i: (0,0)→(2,0), j: (5,0)→(5,3).
	i := NewLink(0, 1, Point{X: 0}, Point{X: 2})
	j := NewLink(2, 3, Point{X: 5}, Point{X: 5, Y: 3})
	if got := i.Length(); got != 2 {
		t.Fatalf("Length = %g, want 2", got)
	}
	// min endpoint distance: r_i=(2,0) to s_j=(5,0) → 3.
	if got := LinkDist(i, j); got != 3 {
		t.Fatalf("LinkDist = %g, want 3", got)
	}
	if LinkDist(i, j) != LinkDist(j, i) {
		t.Fatal("LinkDist not symmetric")
	}
	// sender-to-receiver: s_i=(0,0) to r_j=(5,3) → sqrt(34).
	if got, want := SenderToReceiver(i, j), math.Sqrt(34); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SenderToReceiver = %g, want %g", got, want)
	}
	lmin, lmax := MinMaxLen(i, j)
	if lmin != 2 || lmax != 3 {
		t.Fatalf("MinMaxLen = (%g, %g), want (2, 3)", lmin, lmax)
	}
}

func TestLinkDiversity(t *testing.T) {
	links := []Link{
		NewLink(0, 1, Point{}, Point{X: 1}),
		NewLink(2, 3, Point{}, Point{X: 8}),
	}
	d, err := LinkDiversity(links)
	if err != nil || d != 8 {
		t.Fatalf("LinkDiversity = %g, %v; want 8, nil", d, err)
	}
	if d, err := LinkDiversity(nil); err != nil || d != 1 {
		t.Fatalf("LinkDiversity(nil) = %g, %v; want 1, nil", d, err)
	}
	bad := []Link{NewLink(0, 1, Point{X: 1}, Point{X: 1})}
	if _, err := LinkDiversity(bad); err == nil {
		t.Fatal("LinkDiversity accepted a zero-length link")
	}
}

func TestPointDiversityAndClosestPair(t *testing.T) {
	pts := []Point{{X: 0}, {X: 1}, {X: 9}}
	d, err := PointDiversity(pts)
	if err != nil || d != 9 {
		t.Fatalf("PointDiversity = %g, %v; want 9, nil", d, err)
	}
	bi, bj, dist := ClosestPair(pts)
	if bi != 0 || bj != 1 || dist != 1 {
		t.Fatalf("ClosestPair = (%d, %d, %g), want (0, 1, 1)", bi, bj, dist)
	}
	if _, err := PointDiversity([]Point{{X: 1}, {X: 1}}); err == nil {
		t.Fatal("PointDiversity accepted duplicate points")
	}
	if got := Diameter(pts); got != 9 {
		t.Fatalf("Diameter = %g, want 9", got)
	}
}

func TestBoundingBoxTransforms(t *testing.T) {
	pts := []Point{{X: 1, Y: 2}, {X: -3, Y: 5}}
	lo, hi := BoundingBox(pts)
	if lo != (Point{X: -3, Y: 2}) || hi != (Point{X: 1, Y: 5}) {
		t.Fatalf("BoundingBox = %v, %v", lo, hi)
	}
	moved := Translate(pts, Point{X: 10, Y: 10})
	if moved[0] != (Point{X: 11, Y: 12}) {
		t.Fatalf("Translate wrong: %v", moved[0])
	}
	scaled := ScalePoints(pts, 2)
	if scaled[1] != (Point{X: -6, Y: 10}) {
		t.Fatalf("ScalePoints wrong: %v", scaled[1])
	}
	if !OnLine([]Point{{X: 1}, {X: 2}}) || OnLine(pts) {
		t.Fatal("OnLine misclassifies")
	}
}

// TestLinkLog2DiversityOverflow: the log-space form must stay finite when
// the ratio Δ(L) itself overflows float64.
func TestLinkLog2DiversityOverflow(t *testing.T) {
	links := []Link{
		NewLink(0, 1, Point{0, 0}, Point{1e-308, 0}),
		NewLink(2, 3, Point{0, 0}, Point{1e30, 0}),
	}
	got, err := LinkLog2Diversity(links)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log2(1e30) - math.Log2(1e-308)
	if math.IsInf(got, 0) || math.Abs(got-want) > 1e-9 {
		t.Fatalf("LinkLog2Diversity = %g, want %g (finite)", got, want)
	}
	if div, _ := LinkDiversity(links); !math.IsInf(div, 1) {
		t.Fatalf("test premise broken: ratio %g should overflow to +Inf", div)
	}
	// Consistency with the direct form in the normal range.
	norm := []Link{
		NewLink(0, 1, Point{0, 0}, Point{2, 0}),
		NewLink(2, 3, Point{0, 0}, Point{64, 0}),
	}
	got, err = LinkLog2Diversity(norm)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("LinkLog2Diversity(2,64) = %g, want 5", got)
	}
	if v, err := LinkLog2Diversity(nil); err != nil || v != 0 {
		t.Fatalf("LinkLog2Diversity(nil) = %g, %v; want 0, nil", v, err)
	}
	if _, err := LinkLog2Diversity([]Link{NewLink(0, 1, Point{}, Point{})}); err == nil {
		t.Fatal("zero-length link did not error")
	}
}
