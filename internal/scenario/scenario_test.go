package scenario

import (
	"math"
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/rng"
)

// TestPresetsGenerate: every preset must produce exactly n pairwise
// distinct points, deterministically in the seed.
func TestPresetsGenerate(t *testing.T) {
	const n = 400
	for name, spec := range Presets() {
		pts := spec.Generate(n, 7)
		if len(pts) != n {
			t.Fatalf("%s: got %d points, want %d", name, len(pts), n)
		}
		seen := make(map[geom.Point]bool, n)
		for _, p := range pts {
			if seen[p] {
				t.Fatalf("%s: duplicate point %v", name, p)
			}
			seen[p] = true
		}
		again := spec.Generate(n, 7)
		for i := range pts {
			if pts[i] != again[i] {
				t.Fatalf("%s: not deterministic at index %d: %v vs %v", name, i, pts[i], again[i])
			}
		}
		other := spec.Generate(n, 8)
		same := true
		for i := range pts {
			if pts[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 7 and 8 produced identical pointsets", name)
		}
		if spec.PresetName() != name {
			t.Fatalf("preset %q reports name %q", name, spec.PresetName())
		}
	}
}

// TestLineIsCollinear: the line preset must satisfy geom.OnLine so that
// mst.LineMST applies.
func TestLineIsCollinear(t *testing.T) {
	spec, err := Lookup("line")
	if err != nil {
		t.Fatal(err)
	}
	if pts := spec.Generate(200, 1); !geom.OnLine(pts) {
		t.Fatal("line preset produced an off-axis point")
	}
}

// TestDiversityOrdering sanity-checks that the presets stress the length
// scales they claim to: the jittered grid has near-unit diversity while
// the annulus spreads scales by orders of magnitude.
func TestDiversityOrdering(t *testing.T) {
	div := func(name string) float64 {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		pts := spec.Generate(500, 3)
		d, err := geom.PointDiversity(pts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return d
	}
	grid := div("grid-exact")
	ann := div("annulus-wide")
	if ann < 100*grid {
		t.Fatalf("annulus-wide diversity %g not far above grid-exact diversity %g", ann, grid)
	}
}

// TestLookupError: unknown names must fail with the preset list.
func TestLookupError(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted an unknown preset")
	}
	if got, want := len(PresetNames()), len(Presets()); got != want {
		t.Fatalf("PresetNames returned %d names for %d presets", got, want)
	}
}

// TestDedupeRejittersCollisions exercises the duplicate-point guard
// directly: exact coincidences must be re-jittered into distinct points
// close to the originals.
func TestDedupeRejittersCollisions(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 2}}
	out := dedupe(pts, rng.New(1), 1)
	seen := make(map[geom.Point]bool)
	for i, p := range out {
		if seen[p] {
			t.Fatalf("duplicate survived dedupe: %v", p)
		}
		seen[p] = true
		if p.Dist(geom.Point{X: 1, Y: 1}) > 1e-6 && i < 3 {
			t.Fatalf("dedupe moved point %d too far: %v", i, p)
		}
	}
}

// TestHotspotDistribution: the Gaussian hotspot must concentrate mass in
// the core while the fringe still reaches the far corners of the square —
// the density-gradient property the preset claims.
func TestHotspotDistribution(t *testing.T) {
	const n = 2000
	spec, err := Lookup("hotspot")
	if err != nil {
		t.Fatal(err)
	}
	h := spec.Gen.(Hotspot)
	pts := spec.Generate(n, 11)
	ctr := geom.Point{X: h.Side / 2, Y: h.Side / 2}
	core, far := 0, 0
	for _, p := range pts {
		d := p.Dist(ctr)
		if d <= 3*h.Sigma {
			core++
		}
		if d > 10*h.Sigma {
			far++
		}
	}
	// 1-Fringe = 90% of points are N(ctr, σ²I): ≳99% of those land within
	// 3σ, so the core must hold well over 80% of the mass.
	if float64(core) < 0.8*n {
		t.Fatalf("core (3σ) holds %d/%d points, want >= %d", core, n, int(0.8*n))
	}
	// The uniform fringe is ~10%: most of the square lies beyond 10σ = 250
	// of the center, so a visible share of points must be out there.
	if float64(far) < 0.02*n {
		t.Fatalf("fringe beyond 10σ holds %d/%d points, want >= %d", far, n, int(0.02*n))
	}
}

// TestMultiHotspotConcentration: the mixture must be far more concentrated
// than a uniform scatter of the same size — measured by mean
// nearest-neighbor distance — while its fringe keeps the full extent
// populated.
func TestMultiHotspotConcentration(t *testing.T) {
	const n = 800
	nnMean := func(pts []geom.Point) float64 {
		sum := 0.0
		for i, p := range pts {
			best := math.Inf(1)
			for j, q := range pts {
				if i == j {
					continue
				}
				if d := p.Dist(q); d < best {
					best = d
				}
			}
			sum += best
		}
		return sum / float64(len(pts))
	}
	multi, err := Lookup("hotspot-multi")
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Lookup("uniform")
	if err != nil {
		t.Fatal(err)
	}
	m := nnMean(multi.Generate(n, 13))
	u := nnMean(uni.Generate(n, 13))
	if m*1.4 >= u {
		t.Fatalf("multi-hotspot not concentrated: nn mean %g vs uniform %g", m, u)
	}
	// Extent: the fringe must keep points spread across the square, not
	// collapse everything into the hotspots.
	var minX, maxX, minY, maxY = math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)
	for _, p := range multi.Generate(n, 13) {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	side := multi.Gen.(MultiHotspot).Side
	if maxX-minX < side/2 || maxY-minY < side/2 {
		t.Fatalf("multi-hotspot extent collapsed: [%g,%g]x[%g,%g]", minX, maxX, minY, maxY)
	}
}

// TestHotspotWidthSpread: the mixture's geometric width ladder must
// actually produce MST links across multiple dyadic length classes (more
// than the near-flat grid preset).
func TestHotspotWidthSpread(t *testing.T) {
	spec, err := Lookup("hotspot-multi")
	if err != nil {
		t.Fatal(err)
	}
	pts := spec.Generate(600, 17)
	d, err := geom.PointDiversity(pts)
	if err != nil {
		t.Fatal(err)
	}
	if d < 100 {
		t.Fatalf("hotspot-multi diversity %g, want >= 100 (multi-scale cores)", d)
	}
}
