package scenario

import (
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/rng"
)

// TestPresetsGenerate: every preset must produce exactly n pairwise
// distinct points, deterministically in the seed.
func TestPresetsGenerate(t *testing.T) {
	const n = 400
	for name, spec := range Presets() {
		pts := spec.Generate(n, 7)
		if len(pts) != n {
			t.Fatalf("%s: got %d points, want %d", name, len(pts), n)
		}
		seen := make(map[geom.Point]bool, n)
		for _, p := range pts {
			if seen[p] {
				t.Fatalf("%s: duplicate point %v", name, p)
			}
			seen[p] = true
		}
		again := spec.Generate(n, 7)
		for i := range pts {
			if pts[i] != again[i] {
				t.Fatalf("%s: not deterministic at index %d: %v vs %v", name, i, pts[i], again[i])
			}
		}
		other := spec.Generate(n, 8)
		same := true
		for i := range pts {
			if pts[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 7 and 8 produced identical pointsets", name)
		}
		if spec.PresetName() != name {
			t.Fatalf("preset %q reports name %q", name, spec.PresetName())
		}
	}
}

// TestLineIsCollinear: the line preset must satisfy geom.OnLine so that
// mst.LineMST applies.
func TestLineIsCollinear(t *testing.T) {
	spec, err := Lookup("line")
	if err != nil {
		t.Fatal(err)
	}
	if pts := spec.Generate(200, 1); !geom.OnLine(pts) {
		t.Fatal("line preset produced an off-axis point")
	}
}

// TestDiversityOrdering sanity-checks that the presets stress the length
// scales they claim to: the jittered grid has near-unit diversity while
// the annulus spreads scales by orders of magnitude.
func TestDiversityOrdering(t *testing.T) {
	div := func(name string) float64 {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		pts := spec.Generate(500, 3)
		d, err := geom.PointDiversity(pts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return d
	}
	grid := div("grid-exact")
	ann := div("annulus-wide")
	if ann < 100*grid {
		t.Fatalf("annulus-wide diversity %g not far above grid-exact diversity %g", ann, grid)
	}
}

// TestLookupError: unknown names must fail with the preset list.
func TestLookupError(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted an unknown preset")
	}
	if got, want := len(PresetNames()), len(Presets()); got != want {
		t.Fatalf("PresetNames returned %d names for %d presets", got, want)
	}
}

// TestDedupeRejittersCollisions exercises the duplicate-point guard
// directly: exact coincidences must be re-jittered into distinct points
// close to the originals.
func TestDedupeRejittersCollisions(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 2}}
	out := dedupe(pts, rng.New(1), 1)
	seen := make(map[geom.Point]bool)
	for i, p := range out {
		if seen[p] {
			t.Fatalf("duplicate survived dedupe: %v", p)
		}
		seen[p] = true
		if p.Dist(geom.Point{X: 1, Y: 1}) > 1e-6 && i < 3 {
			t.Fatalf("dedupe moved point %d too far: %v", i, p)
		}
	}
}
