// Package scenario generates the deployment pointsets the experiment
// harness schedules over. Every generator is a pure function of (n, RNG),
// so instances are reproducible across platforms from a single seed, and
// each stresses a different regime of the paper's bounds:
//
//   - Uniform:  homogeneous density, the baseline of the ICDCS tables;
//   - Cluster:  a Matérn-style cluster process — short intra-cluster MST
//     links next to long bridges, pushing length diversity Δ;
//   - Line:     collinear deployments, the 1-D worst case of Sec. 5;
//   - Grid:     a jittered lattice — near-equal link lengths, the
//     low-diversity extreme where χ(G_γ) alone governs;
//   - Annulus:  a ring with log-uniform radial density, producing
//     exponentially spread scales (large log Δ at moderate n);
//   - Hotspot:  one Gaussian hotspot — dense core, sparse uniform fringe —
//     the single-cell-tower density gradient;
//   - MultiHotspot: a mixture of hotspots at geometrically spread widths
//     plus a fringe, the multi-scale urban deployment.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"aggrate/internal/geom"
	"aggrate/internal/rng"
)

// Generator produces a deployment of n distinct points.
type Generator interface {
	// Name identifies the generator family, e.g. "uniform".
	Name() string
	// Generate returns n points drawn from r. Implementations must be
	// deterministic in (n, r-state) and must not return duplicate points.
	Generate(n int, r *rng.RNG) []geom.Point
}

// Uniform scatters points independently and uniformly in the square
// [0, Side]².
type Uniform struct {
	Side float64
}

// Name implements Generator.
func (u Uniform) Name() string { return "uniform" }

// Generate implements Generator.
func (u Uniform) Generate(n int, r *rng.RNG) []geom.Point {
	side := u.Side
	if side <= 0 {
		side = 1000
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	return dedupe(pts, r, side)
}

// Cluster is a Matérn-style cluster process: Clusters parent centers are
// scattered uniformly in [0, Side]², and each point picks a uniform parent
// and a Gaussian offset with standard deviation Sigma. Intra-cluster links
// are O(Sigma) long while the MST bridges between clusters are O(Side),
// giving high length diversity.
type Cluster struct {
	Side     float64
	Clusters int
	Sigma    float64
}

// Name implements Generator.
func (c Cluster) Name() string { return "cluster" }

// Generate implements Generator.
func (c Cluster) Generate(n int, r *rng.RNG) []geom.Point {
	side := c.Side
	if side <= 0 {
		side = 1000
	}
	k := c.Clusters
	if k <= 0 {
		k = 10
	}
	if k > n {
		k = n
	}
	sigma := c.Sigma
	if sigma <= 0 {
		sigma = side / 100
	}
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		ctr := centers[r.Intn(k)]
		pts[i] = geom.Point{
			X: ctr.X + sigma*r.NormFloat64(),
			Y: ctr.Y + sigma*r.NormFloat64(),
		}
	}
	return dedupe(pts, r, sigma)
}

// Line places points uniformly on a segment of the x-axis (Y ≡ 0), the
// paper's one-dimensional setting. geom.OnLine holds for the output, so
// mst.LineMST applies.
type Line struct {
	Length float64
}

// Name implements Generator.
func (l Line) Name() string { return "line" }

// Generate implements Generator.
func (l Line) Generate(n int, r *rng.RNG) []geom.Point {
	length := l.Length
	if length <= 0 {
		length = 1000
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * length, Y: 0}
	}
	return dedupe(pts, r, length)
}

// Grid places points on a ⌈√n⌉×⌈√n⌉ lattice with spacing Spacing, each
// jittered uniformly by ±Jitter·Spacing/2 in both coordinates. With small
// jitter every MST link has nearly the same length (Δ ≈ 1), isolating the
// constant χ(G_γ) from the diversity-dependent factors.
type Grid struct {
	Spacing float64
	// Jitter ∈ [0, 1) is the fraction of the spacing used as jitter
	// amplitude.
	Jitter float64
}

// Name implements Generator.
func (g Grid) Name() string { return "grid" }

// Generate implements Generator.
func (g Grid) Generate(n int, r *rng.RNG) []geom.Point {
	sp := g.Spacing
	if sp <= 0 {
		sp = 10
	}
	jit := g.Jitter
	if jit < 0 {
		jit = 0
	}
	if jit >= 1 {
		jit = 0.99
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]geom.Point, 0, n)
	for i := 0; len(pts) < n; i++ {
		row, col := i/cols, i%cols
		dx := (r.Float64() - 0.5) * jit * sp
		dy := (r.Float64() - 0.5) * jit * sp
		pts = append(pts, geom.Point{X: float64(col)*sp + dx, Y: float64(row)*sp + dy})
	}
	return dedupe(pts, r, sp)
}

// Annulus draws points in a ring around the origin with log-uniform radii
// in [RMin, RMax] and uniform angle. Log-uniform radius means every length
// scale between RMin and RMax is equally represented, so Δ grows to
// RMax/RMin even at small n — the stress case for the log*Δ and log log Δ
// factors.
type Annulus struct {
	RMin, RMax float64
}

// Name implements Generator.
func (a Annulus) Name() string { return "annulus" }

// Generate implements Generator.
func (a Annulus) Generate(n int, r *rng.RNG) []geom.Point {
	rmin, rmax := a.RMin, a.RMax
	if rmin <= 0 {
		rmin = 1
	}
	if rmax <= rmin {
		rmax = rmin * 1e4
	}
	logRatio := math.Log(rmax / rmin)
	pts := make([]geom.Point, n)
	for i := range pts {
		rad := rmin * math.Exp(r.Float64()*logRatio)
		ang := r.Float64() * 2 * math.Pi
		pts[i] = geom.Point{X: rad * math.Cos(ang), Y: rad * math.Sin(ang)}
	}
	return dedupe(pts, r, rmin)
}

// Hotspot is a single Gaussian hotspot in the square [0, Side]²: a fraction
// 1-Fringe of the points form a dense Gaussian core of standard deviation
// Sigma around the center, and the remaining Fringe fraction scatters
// uniformly over the whole square. The density falls off smoothly from the
// core, so MST links grow from O(Sigma/√n) inside the core to O(Side) at
// the fringe — a realistic traffic-gradient deployment that neither uniform
// (flat) nor cluster (many equal cores) covers.
type Hotspot struct {
	Side  float64
	Sigma float64
	// Fringe ∈ [0, 1) is the fraction of points drawn uniformly over the
	// square instead of from the core.
	Fringe float64
}

// Name implements Generator.
func (h Hotspot) Name() string { return "hotspot" }

// Generate implements Generator.
func (h Hotspot) Generate(n int, r *rng.RNG) []geom.Point {
	side, sigma, fringe := hotspotParams(h.Side, h.Sigma, h.Fringe)
	ctr := geom.Point{X: side / 2, Y: side / 2}
	pts := make([]geom.Point, n)
	for i := range pts {
		if r.Float64() < fringe {
			pts[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
		} else {
			pts[i] = geom.Point{
				X: ctr.X + sigma*r.NormFloat64(),
				Y: ctr.Y + sigma*r.NormFloat64(),
			}
		}
	}
	return dedupe(pts, r, sigma)
}

// hotspotParams fills the shared Hotspot/MultiHotspot defaults.
func hotspotParams(side, sigma, fringe float64) (float64, float64, float64) {
	if side <= 0 {
		side = 1000
	}
	if sigma <= 0 {
		sigma = side / 40
	}
	if fringe < 0 || fringe >= 1 {
		fringe = 0.1
	}
	return side, sigma, fringe
}

// MultiHotspot is a mixture of Hotspots Gaussian hotspots with uniformly
// scattered centers and geometrically spread widths — hotspot k has
// standard deviation Sigma·2^k — plus a uniform fringe. Unlike Cluster
// (equal-width cores, no background), the width spread populates several
// length scales at once, stressing the dyadic length-class machinery with
// unequal class sizes.
type MultiHotspot struct {
	Side     float64
	Hotspots int
	// Sigma is the width of the narrowest hotspot; hotspot k uses Sigma·2^k.
	Sigma  float64
	Fringe float64
}

// Name implements Generator.
func (m MultiHotspot) Name() string { return "hotspot-multi" }

// Generate implements Generator.
func (m MultiHotspot) Generate(n int, r *rng.RNG) []geom.Point {
	side, sigma, fringe := hotspotParams(m.Side, m.Sigma, m.Fringe)
	k := m.Hotspots
	if k <= 0 {
		k = 4
	}
	if k > n {
		k = n
	}
	centers := make([]geom.Point, k)
	widths := make([]float64, k)
	for i := range centers {
		centers[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
		widths[i] = sigma * math.Pow(2, float64(i))
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		if r.Float64() < fringe {
			pts[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
			continue
		}
		h := r.Intn(k)
		pts[i] = geom.Point{
			X: centers[h].X + widths[h]*r.NormFloat64(),
			Y: centers[h].Y + widths[h]*r.NormFloat64(),
		}
	}
	return dedupe(pts, r, sigma)
}

// dedupe guarantees pairwise-distinct points: exact coincidences (which
// would create zero-length MST links with no SINR semantics) are re-jittered
// by a tiny fraction of scale. Only X is perturbed — distinct X already
// makes the point distinct, and leaving Y untouched preserves Line's
// geom.OnLine contract. Collisions are measure-zero for the continuous
// generators, so this almost never fires, but determinism requires
// handling it deterministically rather than assuming.
func dedupe(pts []geom.Point, r *rng.RNG, scale float64) []geom.Point {
	eps := scale * 1e-9
	if eps <= 0 {
		eps = 1e-9
	}
	// Open-addressed exact-coordinate set: a generic map spends a third of
	// the generation stage on hashed Point keys at n=10⁶. Membership is the
	// map's (==), so the jitter stream — and with it every generated
	// instance — is unchanged; ±0 coordinates are normalized in the hash
	// only (x+0 maps -0 to +0), matching map equality of the two zeros.
	size := 1
	for size < 2*len(pts) {
		size <<= 1
	}
	mask := uint64(size - 1)
	keys := make([]geom.Point, size)
	full := make([]bool, size)
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	hash := func(p geom.Point) uint64 {
		h := uint64(fnvOffset)
		h = (h ^ math.Float64bits(p.X+0)) * fnvPrime
		h = (h ^ math.Float64bits(p.Y+0)) * fnvPrime
		return h
	}
	for i, p := range pts {
		for {
			h := hash(p) & mask
			for full[h] && keys[h] != p {
				h = (h + 1) & mask
			}
			if !full[h] {
				keys[h], full[h] = p, true
				break
			}
			p = geom.Point{X: p.X + (r.Float64()-0.5)*eps, Y: p.Y}
		}
		pts[i] = p
	}
	return pts
}

// Spec names a generator with concrete parameters; it is the unit the
// experiment runner and CLI traffic in.
type Spec struct {
	Preset string
	Gen    Generator
}

// Generate draws n points from a fresh generator stream seeded with seed.
func (s Spec) Generate(n int, seed uint64) []geom.Point {
	return s.Gen.Generate(n, rng.New(seed))
}

// PresetName returns the preset this spec was resolved from (or the
// generator family name for hand-built specs), satisfying the experiment
// runner's Scenario dependency.
func (s Spec) PresetName() string {
	if s.Preset != "" {
		return s.Preset
	}
	if s.Gen != nil {
		return s.Gen.Name()
	}
	return ""
}

// Presets returns the named parameter presets, keyed by preset name. Each
// maps to a fully-parameterized generator; preset names are what the CLI's
// --scenario flag accepts.
func Presets() map[string]Spec {
	m := map[string]Spec{
		"uniform":       {Gen: Uniform{Side: 1000}},
		"uniform-dense": {Gen: Uniform{Side: 100}},
		"cluster":       {Gen: Cluster{Side: 1000, Clusters: 10, Sigma: 10}},
		"cluster-many":  {Gen: Cluster{Side: 1000, Clusters: 50, Sigma: 5}},
		"line":          {Gen: Line{Length: 1000}},
		"grid":          {Gen: Grid{Spacing: 10, Jitter: 0.3}},
		"grid-exact":    {Gen: Grid{Spacing: 10, Jitter: 0.001}},
		"annulus":       {Gen: Annulus{RMin: 1, RMax: 1e4}},
		"annulus-wide":  {Gen: Annulus{RMin: 1, RMax: 1e6}},
		"hotspot":       {Gen: Hotspot{Side: 1000, Sigma: 25, Fringe: 0.1}},
		"hotspot-multi": {Gen: MultiHotspot{Side: 1000, Hotspots: 5, Sigma: 5, Fringe: 0.1}},
	}
	for name, spec := range m {
		spec.Preset = name
		m[name] = spec
	}
	return m
}

// PresetNames returns the preset names in sorted order, for usage strings.
func PresetNames() []string {
	m := Presets()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup resolves a preset name, with a helpful error listing valid names.
func Lookup(name string) (Spec, error) {
	if s, ok := Presets()[name]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, PresetNames())
}
