// γ-lookahead conflict builds: every threshold family of the paper factors
// as f_γ(x) = γ·h(x) (Gamma: h ≡ 1; PowerLaw: h = x^δ; LogThreshold:
// h = max{1, log₂^{2/(α-2)} x}; the protocol model: h = x), so the conflict
// predicate d(i,j)² ≤ (l_min·f_γ(l_max/l_min))² is monotone in γ and every
// pair has a well-defined conflict *strength* — the smallest γ at which it
// conflicts. One strength-annotated build at an escalated γ therefore serves
// every smaller γ of an escalation ladder as a linear filter scan over the
// CSR arrays, instead of a full grid rebuild per attempt.
//
// Exactness is preserved bit-for-bit: strengthOf computes the smallest
// float64 γ at which the build's own floating-point predicate flips to
// true (the predicate is weakly monotone in γ because every operation in
// l_min·(γ·h(x)) and its square is), so filtering by Strengths[k] ≤ γ
// reproduces the direct build's pair test exactly — not approximately —
// at every γ up to the build γ. The parity suite and the lookahead fuzz
// target pin this against Build and BuildNaive.
package conflict

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"aggrate/internal/geom"
	"aggrate/internal/par"
)

// Family is a γ-indexed conflict-threshold family f_γ(x) = γ·h(x).
//
// Contract (what makes lookahead filtering bit-exact): At(γ) must return a
// Func whose Eval(x) computes the floating-point expression γ*H(x) — one
// multiplication of γ against the exact value H returns, rounding included —
// and whose Const, when set, equals γ (only legal when H ≡ 1). H must be
// positive and non-decreasing on [1, ∞), like Func.Eval. The constructors
// below pair each Func constructor with its factored form and keep the two
// in lockstep.
type Family struct {
	Name string
	// H is the γ-free factor h(x).
	H func(x float64) float64
	// At materializes f_γ.
	At func(gamma float64) Func
}

// GammaFamily is the factored form of Gamma: f_γ ≡ γ, h ≡ 1.
func GammaFamily() Family {
	return Family{
		Name: "G_gamma",
		H:    func(float64) float64 { return 1 },
		At:   Gamma,
	}
}

// PowerLawFamily is the factored form of PowerLaw: f_γ(x) = γ·x^δ. H shares
// PowerLaw's δ = ½ Sqrt fast path (see powFunc), keeping the two bit-equal.
func PowerLawFamily(delta float64) Family {
	return Family{
		Name: fmt.Sprintf("G_obl(%g)", delta),
		H:    powFunc(delta),
		At:   func(gamma float64) Func { return PowerLaw(gamma, delta) },
	}
}

// LogThresholdFamily is the factored form of LogThreshold:
// f_γ(x) = γ·max{1, log₂^{2/(α-2)} x}.
func LogThresholdFamily(alpha float64) Family {
	exp := 2 / (alpha - 2)
	return Family{
		Name: fmt.Sprintf("G_arb(alpha=%g)", alpha),
		H: func(x float64) float64 {
			if x <= 2 {
				return 1
			}
			return math.Max(1, math.Pow(math.Log2(x), exp))
		},
		At: func(gamma float64) Func { return LogThreshold(gamma, alpha) },
	}
}

// strengthOf returns the conflict strength of a pair: the smallest float64
// q for which the build predicate d² ≤ (l_min·(q·h))² holds. Filtering an
// annotated graph by strength ≤ γ is then exactly the direct build's pair
// test at γ: the predicate is weakly monotone in q (each floating-point
// operation is weakly monotone, and squaring a non-negative threshold
// preserves that), so it is false strictly below the returned value and
// true from it upward.
//
// The algebraic estimate √d²/(l_min·h) lands within a few ulps of the
// boundary, so when it is usable the boundary is reached by a straight-line
// walk over adjacent floats — 1–4 predicate tests, no bisection over the
// full bit range. If the walk does not terminate within strengthWalkMax
// steps (a degenerate estimate), or the estimate falls outside (0,
// buildGamma), the boundary is located by binary search on the float64 bit
// pattern (ordered like the values for non-negative floats) over [0,
// buildGamma]. buildGamma must satisfy the predicate (the pair was accepted
// at the build γ). Either search returns the same unique boundary float.
const strengthWalkMax = 8

func strengthOf(d2, lmin, h, buildGamma float64) float64 {
	pred := func(q float64) bool {
		t := lmin * (q * h)
		return d2 <= t*t
	}
	if pred(0) {
		return 0
	}
	lo, hi := 0.0, buildGamma
	if q := math.Sqrt(d2) / (lmin * h); q > lo && q < hi {
		b := math.Float64bits(q)
		if pred(q) {
			hi = q
			for step := 0; step < strengthWalkMax; step++ {
				if !pred(math.Float64frombits(b - 1)) {
					return math.Float64frombits(b)
				}
				b--
			}
			hi = math.Float64frombits(b)
		} else {
			lo = q
			for step := 0; step < strengthWalkMax; step++ {
				b++
				if pred(math.Float64frombits(b)) {
					return math.Float64frombits(b)
				}
			}
			lo = math.Float64frombits(b)
		}
	}
	lb, hb := math.Float64bits(lo), math.Float64bits(hi)
	for lb+1 < hb {
		mid := lb + (hb-lb)/2
		if pred(math.Float64frombits(mid)) {
			hb = mid
		} else {
			lb = mid
		}
	}
	return math.Float64frombits(hb)
}

// BuildLookahead is BuildLookaheadCtx with a background context.
func BuildLookahead(links []geom.Link, fam Family, gamma float64) *Graph {
	g, _ := BuildLookaheadCtx(context.Background(), links, fam, gamma)
	return g
}

// BuildLookaheadCtx constructs G_{f_γ}(links) for f = fam.At(gamma) with
// Graph.Strengths populated: the same CSR arrays (same edge set, same sorted
// row order) as BuildCtx(ctx, links, fam.At(gamma)), plus one conflict
// strength per directed entry. FilterCtx then materializes the graph at any
// smaller γ without another build. Cancellation matches BuildCtx.
func BuildLookaheadCtx(ctx context.Context, links []geom.Link, fam Family, gamma float64) (*Graph, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f := fam.At(gamma)
	if len(links) <= naiveCutoff {
		return buildNaiveLookahead(links, fam, gamma), nil
	}
	g, err := buildBucketed(ctx, links, f, fam.H, gamma)
	if err != nil {
		return nil, err
	}
	if g != nil {
		return g, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return buildNaiveLookahead(links, fam, gamma), nil
}

// buildNaiveLookahead is the strength-annotated analogue of BuildNaive: the
// exact O(n²) pairwise scan, with the pair test phrased through the family
// factor (bit-identical to Conflicting at fam.At(gamma) by Family.At's
// contract) and a strength per accepted edge. Degenerate pairs with
// l_min ≤ 0 conflict at every γ and get strength 0.
func buildNaiveLookahead(links []geom.Link, fam Family, gamma float64) *Graph {
	n := len(links)
	f := fam.At(gamma)
	var edges []edge
	qs := []float64{} // non-nil even when edgeless: marks the graph filterable
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			lmin, lmax := geom.MinMaxLen(links[i], links[j])
			if lmin <= 0 {
				edges = append(edges, edge{int32(i), int32(j)})
				qs = append(qs, 0)
				continue
			}
			hx := fam.H(lmax / lmin)
			thr := lmin * (gamma * hx)
			d2 := geom.LinkDist2(links[i], links[j])
			if d2 <= thr*thr {
				edges = append(edges, edge{int32(i), int32(j)})
				qs = append(qs, strengthOf(d2, lmin, hx, gamma))
			}
		}
	}
	return fromEdges(links, f, edges, qs, false)
}

// FilterCtx materializes the conflict graph at a smaller γ from a
// strength-annotated graph: one linear scan over the CSR arrays keeping the
// directed entries with strength ≤ gamma. Row order is preserved (a
// subsequence of sorted rows stays sorted), so the result is bit-identical —
// edges, CSR row order, Strengths annotation — to a strength-annotated
// build at gamma, and its RowPtr/Neighbors match a plain Build at f. f
// should be the family's Func at gamma; it becomes the result's F.
//
// Cancellation: ctx is checked at row-block boundaries during both the
// counting and the scatter pass; on cancellation FilterCtx returns
// (nil, ctx.Err()) and never a partially-filtered graph.
func (g *Graph) FilterCtx(ctx context.Context, f Func, gamma float64) (*Graph, error) {
	if g.Strengths == nil {
		return nil, fmt.Errorf("conflict: FilterCtx on a graph without strengths (not a lookahead build)")
	}
	n := g.N()
	out := &Graph{
		Links:  g.Links, // shared: both graphs treat Links as immutable
		F:      f,
		RowPtr: make([]int32, n+1),
		Stats:  g.Stats, // the annotated build's pruning counters carry over
	}
	// Counting pass: per-row surviving-entry counts, written into
	// RowPtr[i+1] so the prefix sum below finalizes the offsets.
	err := par.ForBlocksCtx(ctx, n, 1024, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				cnt := int32(0)
				for _, q := range g.Strengths[g.RowPtr[i]:g.RowPtr[i+1]] {
					if q <= gamma {
						cnt++
					}
				}
				out.RowPtr[i+1] = cnt
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	out.Neighbors = make([]int32, out.RowPtr[n])
	out.Strengths = make([]float64, out.RowPtr[n])
	err = par.ForBlocksCtx(ctx, n, 1024, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				w := out.RowPtr[i]
				s, e := g.RowPtr[i], g.RowPtr[i+1]
				for k := s; k < e; k++ {
					if q := g.Strengths[k]; q <= gamma {
						out.Neighbors[w] = g.Neighbors[k]
						out.Strengths[w] = q
						w++
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Lookahead amortizes conflict-graph construction across a γ-escalation
// ladder: the first request for a link set pays one strength-annotated build
// at the lookahead γ (GammaMax), and every request at a γ at or below it —
// including later escalation attempts on the same links — is served by a
// linear filter scan (or, at GammaMax itself, by the annotated build
// directly). Builds are cached per link-set content, so the lengthclass
// strategy's per-class graphs each get their own annotated build and reuse
// it across attempts even though the class slices are reallocated per call.
//
// A Lookahead is safe for concurrent use; builds and filters run under an
// internal lock, so concurrent callers serialize (the intended use is one
// Lookahead per pipeline instance, which is single-threaded).
type Lookahead struct {
	gammaMax float64
	mu       sync.Mutex
	entries  map[lookaheadKey]*Graph
}

type lookaheadKey struct {
	family string
	links  uint64 // content hash; collisions are re-verified element-wise
}

// NewLookahead returns a Lookahead whose builds cover every γ ≤ gammaMax.
func NewLookahead(gammaMax float64) *Lookahead {
	return &Lookahead{gammaMax: gammaMax, entries: make(map[lookaheadKey]*Graph)}
}

// GammaMax returns the γ ceiling the cached builds cover. Requests above it
// fall back to a direct build (the escalation loop re-arms a fresh Lookahead
// instead of ever hitting that path).
func (la *Lookahead) GammaMax() float64 { return la.gammaMax }

// LookaheadStats reports how one GraphFor call split its work, for the
// build_sec/build_filter_sec/build_reused diagnostics.
type LookaheadStats struct {
	// BuildSec is the wall-clock of a full annotated (or fallback direct)
	// build; zero when the call was served from the cache.
	BuildSec float64
	// FilterSec is everything else: link-set hashing, cache lookup, and the
	// filter scan.
	FilterSec float64
	// Reused reports that the conflict graph came from a filter scan over a
	// previously built strength-annotated graph.
	Reused bool
}

// GraphFor returns the conflict graph of links under fam.At(gamma),
// bit-identical to conflict.BuildCtx(ctx, links, fam.At(gamma)). The first
// call per link set builds once at GammaMax with strengths; subsequent
// calls (any γ ≤ GammaMax) filter.
func (la *Lookahead) GraphFor(ctx context.Context, links []geom.Link, fam Family, gamma float64) (*Graph, LookaheadStats, error) {
	var st LookaheadStats
	t0 := time.Now()
	if gamma > la.gammaMax {
		// Out of coverage: a direct build is always correct.
		g, err := BuildCtx(ctx, links, fam.At(gamma))
		st.BuildSec = time.Since(t0).Seconds()
		return g, st, err
	}
	la.mu.Lock()
	defer la.mu.Unlock()
	key := lookaheadKey{family: fam.Name, links: linksHash(links)}
	full := la.entries[key]
	if full != nil && !linksEqual(full.Links, links) {
		full = nil // hash collision: rebuild rather than serve the wrong graph
	}
	if full == nil {
		tb := time.Now()
		var err error
		full, err = BuildLookaheadCtx(ctx, links, fam, la.gammaMax)
		st.BuildSec = time.Since(tb).Seconds()
		if err != nil {
			return nil, st, err
		}
		la.entries[key] = full
	} else {
		st.Reused = true
	}
	var g *Graph
	if gamma == la.gammaMax {
		g = full // the annotated build is the direct build at the top rung
	} else {
		var err error
		g, err = full.FilterCtx(ctx, fam.At(gamma), gamma)
		if err != nil {
			st.FilterSec = time.Since(t0).Seconds() - st.BuildSec
			return nil, st, err
		}
	}
	st.FilterSec = time.Since(t0).Seconds() - st.BuildSec
	return g, st, nil
}

// linksHash is an FNV-1a content hash of a link set (coordinates only —
// lengths and distances, hence conflict structure, are functions of the
// endpoints). Used as the Lookahead cache key, with an element-wise
// re-verification on every hit so a collision can never alias two link sets.
func linksHash(links []geom.Link) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(len(links)))
	for _, l := range links {
		mix(math.Float64bits(l.S.X))
		mix(math.Float64bits(l.S.Y))
		mix(math.Float64bits(l.R.X))
		mix(math.Float64bits(l.R.Y))
	}
	return h
}

// linksEqual reports element-wise equality of two link sets.
func linksEqual(a, b []geom.Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
