// Package conflict implements the conflict-graph framework of Appendix A
// (originating in Halldórsson & Tonoyan, STOC 2015).
//
// For a positive non-decreasing sub-linear function f: [1,∞) → R⁺, two links
// i, j are f-independent when
//
//	d(i,j)/l_min > f(l_max/l_min),
//
// where l_min = min(l_i, l_j), l_max = max(l_i, l_j), and d(i,j) is the
// minimum endpoint distance; otherwise they are f-conflicting. The conflict
// graph G_f(L) has the links as vertices and f-conflicting pairs as edges.
//
// Three instantiations carry the paper's results:
//
//   - G_γ     (f ≡ γ):            χ(G_γ(MST)) = O(1)   — Theorem 2;
//   - G_{γlog} (f = γ·max{1, log^{2/(α-2)} x}): independent sets are
//     feasible under global power control, χ = O(log*Δ)·χ(G_γ) — "G_arb";
//   - G^δ_γ   (f = γ·x^δ, δ∈(0,1)): independent sets are feasible under an
//     oblivious scheme P_τ, χ = O(log log Δ)·χ(G_γ) — "G_obl".
package conflict

import (
	"fmt"
	"math"
	"sort"

	"aggrate/internal/geom"
)

// Func is a conflict-threshold function f together with a display name.
// Eval must be positive, non-decreasing, and sub-linear on [1, ∞).
type Func struct {
	Name string
	Eval func(x float64) float64
}

// Gamma returns the constant function f ≡ γ defining G_γ. The paper's G₁ is
// Gamma(1).
func Gamma(gamma float64) Func {
	return Func{
		Name: fmt.Sprintf("G_gamma(%g)", gamma),
		Eval: func(x float64) float64 { return gamma },
	}
}

// PowerLaw returns f(x) = γ·x^δ defining G^δ_γ, the conflict graph whose
// independent sets are feasible under an oblivious power scheme.
func PowerLaw(gamma, delta float64) Func {
	return Func{
		Name: fmt.Sprintf("G_obl(%g,%g)", gamma, delta),
		Eval: func(x float64) float64 { return gamma * math.Pow(x, delta) },
	}
}

// LogThreshold returns f(x) = γ·max{1, log₂^{2/(α-2)} x} defining G_{γlog},
// the conflict graph whose independent sets are feasible under global power
// control. The exponent 2/(α-2) comes from [12, Cor. 1].
func LogThreshold(gamma, alpha float64) Func {
	exp := 2 / (alpha - 2)
	return Func{
		Name: fmt.Sprintf("G_arb(%g,alpha=%g)", gamma, alpha),
		Eval: func(x float64) float64 {
			if x <= 2 {
				return gamma
			}
			return gamma * math.Max(1, math.Pow(math.Log2(x), exp))
		},
	}
}

// Conflicting reports whether links i and j are f-conflicting.
func Conflicting(f Func, i, j geom.Link) bool {
	lmin, lmax := geom.MinMaxLen(i, j)
	if lmin <= 0 {
		return true
	}
	thr := lmin * f.Eval(lmax/lmin)
	return geom.LinkDist2(i, j) <= thr*thr
}

// Graph is a concrete conflict graph over an indexed link set.
type Graph struct {
	Links []geom.Link
	F     Func
	// Adj[i] lists the neighbors of link i, sorted ascending.
	Adj [][]int32
	// edges counts undirected edges.
	edges int
}

// Build constructs G_f(links) by pairwise testing (O(n²); the experiment
// sizes top out at ~16k links, well within budget).
func Build(links []geom.Link, f Func) *Graph {
	n := len(links)
	g := &Graph{
		Links: append([]geom.Link(nil), links...),
		F:     f,
		Adj:   make([][]int32, n),
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Conflicting(f, links[i], links[j]) {
				g.Adj[i] = append(g.Adj[i], int32(j))
				g.Adj[j] = append(g.Adj[j], int32(i))
				g.edges++
			}
		}
	}
	for i := range g.Adj {
		sort.Slice(g.Adj[i], func(a, b int) bool { return g.Adj[i][a] < g.Adj[i][b] })
	}
	return g
}

// N returns the number of vertices (links).
func (g *Graph) N() int { return len(g.Links) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int { return g.edges }

// Degree returns the degree of vertex i.
func (g *Graph) Degree(i int) int { return len(g.Adj[i]) }

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for i := range g.Adj {
		if len(g.Adj[i]) > d {
			d = len(g.Adj[i])
		}
	}
	return d
}

// HasEdge reports whether i and j are adjacent, by binary search.
func (g *Graph) HasEdge(i, j int) bool {
	adj := g.Adj[i]
	k := sort.Search(len(adj), func(k int) bool { return adj[k] >= int32(j) })
	return k < len(adj) && adj[k] == int32(j)
}

// IsIndependent reports whether the given vertex subset is pairwise
// non-adjacent.
func (g *Graph) IsIndependent(set []int) bool {
	mark := make(map[int]bool, len(set))
	for _, v := range set {
		mark[v] = true
	}
	for _, v := range set {
		for _, w := range g.Adj[v] {
			if mark[int(w)] {
				return false
			}
		}
	}
	return true
}

// LongerNeighbors returns N⁺_i: the neighbors of i whose links are at least
// as long as link i (ties included, self excluded).
func (g *Graph) LongerNeighbors(i int) []int {
	li := g.Links[i].Length()
	var out []int
	for _, w := range g.Adj[i] {
		if g.Links[w].Length() >= li {
			out = append(out, int(w))
		}
	}
	return out
}

// InductiveIndependence returns an estimate of the graph's inductive
// independence number: the maximum, over vertices i, of the size of a
// greedily-built independent subset of N⁺_i. Appendix A shows this is O(1)
// for all G_f with sub-linear f, which is what makes first-fit coloring a
// constant-factor approximation; this probe lets experiments verify the
// constant empirically. Greedy gives a lower bound on each ind. set,
// so the returned value is a lower bound on the true number.
func (g *Graph) InductiveIndependence() int {
	best := 0
	for i := range g.Links {
		cand := g.LongerNeighbors(i)
		// Greedy max independent subset: repeatedly take the candidate with
		// fewest conflicts among remaining candidates.
		taken := independentGreedy(g, cand)
		if taken > best {
			best = taken
		}
	}
	return best
}

func independentGreedy(g *Graph, cand []int) int {
	chosen := []int{}
	for _, v := range cand {
		ok := true
		for _, c := range chosen {
			if g.HasEdge(v, c) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, v)
		}
	}
	return len(chosen)
}

// AverageDegree returns 2·|E|/|V| (0 for an empty graph).
func (g *Graph) AverageDegree() float64 {
	if len(g.Links) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.Links))
}
