// Package conflict implements the conflict-graph framework of Appendix A
// (originating in Halldórsson & Tonoyan, STOC 2015).
//
// For a positive non-decreasing sub-linear function f: [1,∞) → R⁺, two links
// i, j are f-independent when
//
//	d(i,j)/l_min > f(l_max/l_min),
//
// where l_min = min(l_i, l_j), l_max = max(l_i, l_j), and d(i,j) is the
// minimum endpoint distance; otherwise they are f-conflicting. The conflict
// graph G_f(L) has the links as vertices and f-conflicting pairs as edges.
//
// Three instantiations carry the paper's results:
//
//   - G_γ     (f ≡ γ):            χ(G_γ(MST)) = O(1)   — Theorem 2;
//   - G_{γlog} (f = γ·max{1, log^{2/(α-2)} x}): independent sets are
//     feasible under global power control, χ = O(log*Δ)·χ(G_γ) — "G_arb";
//   - G^δ_γ   (f = γ·x^δ, δ∈(0,1)): independent sets are feasible under an
//     oblivious scheme P_τ, χ = O(log log Δ)·χ(G_γ) — "G_obl".
//
// The adjacency is stored in CSR (compressed sparse row) form — one flat
// RowPtr offset array plus one flat Neighbors array — so the coloring hot
// loops walk contiguous memory and the build allocates O(1) slices instead
// of one per vertex.
//
// Build is the production constructor: it buckets links into dyadic length
// classes, indexes endpoints in one uniform hash grid per class, and detects
// edges with a goroutine pool, so 10⁵-link instances build in seconds.
// BuildNaive keeps the exact O(n²) pairwise scan as a cross-check oracle.
package conflict

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"

	"aggrate/internal/geom"
	"aggrate/internal/par"
)

// Func is a conflict-threshold function f together with a display name.
// Eval must be positive and non-decreasing on [1, ∞): the bucketed Build
// relies on monotonicity to bound candidate-search radii, and a decreasing
// Eval silently breaks its exactness guarantee. Sub-linearity is the
// paper's additional requirement for constant inductive independence
// (Appendix A) — it bounds coloring quality, not build correctness, so
// super-linear thresholds (e.g. the protocol-model f(x) = k·x of the naive
// scheduling strategy) still build exactly.
type Func struct {
	Name string
	Eval func(x float64) float64
	// Const, when positive, asserts that Eval is the constant function
	// x ↦ Const. The bucketed build's innermost pair test then computes the
	// threshold directly instead of calling the Eval closure per pair — the
	// dominant per-candidate cost for G_γ builds. Constructors that set it
	// (Gamma) guarantee agreement with Eval; leave it zero otherwise.
	Const float64
}

// Gamma returns the constant function f ≡ γ defining G_γ. The paper's G₁ is
// Gamma(1).
func Gamma(gamma float64) Func {
	return Func{
		Name:  fmt.Sprintf("G_gamma(%g)", gamma),
		Eval:  func(x float64) float64 { return gamma },
		Const: gamma,
	}
}

// PowerLaw returns f(x) = γ·x^δ defining G^δ_γ, the conflict graph whose
// independent sets are feasible under an oblivious power scheme.
func PowerLaw(gamma, delta float64) Func {
	pw := powFunc(delta)
	return Func{
		Name: fmt.Sprintf("G_obl(%g,%g)", gamma, delta),
		Eval: func(x float64) float64 { return gamma * pw(x) },
	}
}

// powFunc returns x ↦ x^δ, routed through math.Sqrt for δ = ½ — the default
// oblivious-power exponent, evaluated once per candidate pair in the build's
// innermost loop. math.Pow special-cases y == 0.5 to Sqrt(x), so the direct
// call is bit-for-bit identical and only skips Pow's dispatch overhead.
func powFunc(delta float64) func(float64) float64 {
	if delta == 0.5 {
		return math.Sqrt
	}
	return func(x float64) float64 { return math.Pow(x, delta) }
}

// LogThreshold returns f(x) = γ·max{1, log₂^{2/(α-2)} x} defining G_{γlog},
// the conflict graph whose independent sets are feasible under global power
// control. The exponent 2/(α-2) comes from [12, Cor. 1].
func LogThreshold(gamma, alpha float64) Func {
	exp := 2 / (alpha - 2)
	return Func{
		Name: fmt.Sprintf("G_arb(%g,alpha=%g)", gamma, alpha),
		Eval: func(x float64) float64 {
			if x <= 2 {
				return gamma
			}
			return gamma * math.Max(1, math.Pow(math.Log2(x), exp))
		},
	}
}

// Conflicting reports whether links i and j are f-conflicting.
func Conflicting(f Func, i, j geom.Link) bool {
	lmin, lmax := geom.MinMaxLen(i, j)
	return conflictingLens(f, i, j, lmin, lmax)
}

// conflictingLens is Conflicting with the two link lengths already known
// (ordered lmin ≤ lmax). The bucketed build precomputes every length once,
// so its pair tests skip the two hypot calls that dominate Conflicting.
func conflictingLens(f Func, i, j geom.Link, lmin, lmax float64) bool {
	if lmin <= 0 {
		return true
	}
	thr := lmin * f.Eval(lmax/lmin)
	return geom.LinkDist2(i, j) <= thr*thr
}

// Graph is a concrete conflict graph over an indexed link set, with the
// adjacency in CSR form: the neighbors of vertex i are
// Neighbors[RowPtr[i]:RowPtr[i+1]], sorted ascending. Row(i) returns that
// slice. The layout is two flat allocations regardless of the vertex count,
// and a row walk is one contiguous scan.
type Graph struct {
	Links []geom.Link
	F     Func
	// RowPtr has length N()+1; RowPtr[0] == 0.
	RowPtr []int32
	// Neighbors holds all adjacency rows back to back (2·Edges entries).
	Neighbors []int32
	// Strengths, when non-nil, parallels Neighbors: Strengths[k] is the
	// conflict strength of the pair (i, Neighbors[k]) — the smallest γ at
	// which the two links f_γ-conflict under the threshold family the graph
	// was built for (see Family and BuildLookaheadCtx). Only strength-
	// annotated builds populate it; plain Build leaves it nil.
	Strengths []float64
	// Stats counts the candidate-pruning work of the bucketed build that
	// produced the graph; zero for naive or test-constructed graphs.
	// FilterCtx propagates it, so filtered lookahead graphs report the
	// annotated build's counters.
	Stats BuildStats
}

// BuildStats counts the bucketed candidate search's pruning effectiveness.
// The counters are deterministic in the input (scan order does not change
// which cells are pruned or which candidates are tested), so they double as
// a hardware-independent regression signal: CandScanned/CandAccepted is the
// distance-tested candidates the build paid per accepted edge.
type BuildStats struct {
	// CellsScanned counts candidate cells whose member lists were streamed.
	CellsScanned int64
	// CellsPruned counts candidate cells rejected whole by the per-cell
	// endpoint-bbox rect-distance prune before any member was loaded.
	CellsPruned int64
	// CandScanned counts member candidates distance-tested across all
	// scanned cells (duplicates via a second cell included, as tested).
	CandScanned int64
	// CandAccepted counts accepted undirected edges (== Edges()).
	CandAccepted int64
}

// Add accumulates another build's counters into s — strategies that build
// several graphs (per-class builds, escalation attempts) aggregate with it.
func (s *BuildStats) Add(o BuildStats) {
	s.CellsScanned += o.CellsScanned
	s.CellsPruned += o.CellsPruned
	s.CandScanned += o.CandScanned
	s.CandAccepted += o.CandAccepted
}

// CandRatio returns CandScanned/CandAccepted — the mean number of
// distance-tested candidates per accepted edge (0 for an edgeless or
// naive-built graph). Lower is tighter pruning.
func (s BuildStats) CandRatio() float64 {
	if s.CandAccepted == 0 {
		return 0
	}
	return float64(s.CandScanned) / float64(s.CandAccepted)
}

// edge is one undirected edge, owned by the discovering endpoint.
type edge struct{ i, j int32 }

// fromEdges assembles the CSR adjacency from an undirected edge list in one
// counting pass: count both endpoint degrees, prefix-sum into RowPtr, then
// scatter each edge in both directions. Rows come out in edge-list order;
// sortRows reports whether a per-row sort pass is still required (the naive
// builder's lexicographic discovery order needs none). qs, when non-nil,
// parallels edges with per-edge conflict strengths, scattered (and co-sorted)
// into Graph.Strengths alongside the neighbor entries.
func fromEdges(links []geom.Link, f Func, edges []edge, qs []float64, sortRows bool) *Graph {
	n := len(links)
	g := &Graph{
		Links:  append([]geom.Link(nil), links...),
		F:      f,
		RowPtr: make([]int32, n+1),
	}
	if 2*len(edges) > math.MaxInt32 {
		// RowPtr/Neighbors are int32-indexed; 2³¹ directed edges is far
		// beyond every supported workload (MST-derived graphs have constant
		// average degree), so treat overflow as a programming error.
		panic(fmt.Sprintf("conflict: %d edges overflow the int32 CSR index", len(edges)))
	}
	for _, e := range edges {
		g.RowPtr[e.i+1]++
		g.RowPtr[e.j+1]++
	}
	for i := 0; i < n; i++ {
		g.RowPtr[i+1] += g.RowPtr[i]
	}
	g.Neighbors = make([]int32, 2*len(edges))
	if qs != nil {
		g.Strengths = make([]float64, 2*len(edges))
	}
	fill := make([]int32, n)
	copy(fill, g.RowPtr[:n])
	for k, e := range edges {
		g.Neighbors[fill[e.i]] = e.j
		g.Neighbors[fill[e.j]] = e.i
		if qs != nil {
			g.Strengths[fill[e.i]] = qs[k]
			g.Strengths[fill[e.j]] = qs[k]
		}
		fill[e.i]++
		fill[e.j]++
	}
	if sortRows {
		if qs == nil {
			par.For(n, func(i int) {
				slices.Sort(g.Row(i))
			})
		} else {
			sortRowsWithStrengths(g)
		}
	}
	return g
}

// sortRowsWithStrengths sorts every adjacency row ascending, permuting the
// parallel Strengths entries in lockstep, so annotated rows keep the same
// neighbor order as plain builds.
func sortRowsWithStrengths(g *Graph) {
	n := g.N()
	par.ForBlocks(n, 256, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				row := g.Row(i)
				if len(row) < 2 {
					continue
				}
				qrow := g.Strengths[g.RowPtr[i]:g.RowPtr[i+1]]
				// Rows are short (mean degree ≈ 2f(1)²+o(1) in the paper's
				// regimes): an in-place lockstep insertion sort beats the
				// generic sort's closure dispatch and scratch copies.
				for k := 1; k < len(row); k++ {
					j, q := row[k], qrow[k]
					t := k - 1
					for t >= 0 && row[t] > j {
						row[t+1], qrow[t+1] = row[t], qrow[t]
						t--
					}
					row[t+1], qrow[t+1] = j, q
				}
			}
		}
	})
}

// FromAdj assembles a Graph from explicit adjacency lists — the test-side
// constructor for synthetic graphs and slice-form oracles. adj must be
// symmetric (j in adj[i] ⟺ i in adj[j]); rows are copied, deduplicated,
// and sorted into CSR form.
func FromAdj(links []geom.Link, f Func, adj [][]int32) *Graph {
	var edges []edge
	for i, row := range adj {
		for _, j := range row {
			if int32(i) < j {
				edges = append(edges, edge{int32(i), j})
			}
		}
	}
	slices.SortFunc(edges, func(a, b edge) int {
		if a.i != b.i {
			return cmp.Compare(a.i, b.i)
		}
		return cmp.Compare(a.j, b.j)
	})
	edges = slices.Compact(edges)
	return fromEdges(links, f, edges, nil, true)
}

// naiveCutoff is the instance size below which the bucketed build is not
// worth its setup cost and Build falls back to the pairwise scan.
const naiveCutoff = 128

// Build constructs G_f(links). Instances above naiveCutoff links with all
// lengths positive go through the grid-bucketed parallel search; the result
// is bit-identical (same edge set, same sorted adjacency) to BuildNaive,
// which remains the oracle for small or degenerate inputs.
func Build(links []geom.Link, f Func) *Graph {
	g, _ := BuildCtx(context.Background(), links, f) // Background never cancels
	return g
}

// BuildCtx is Build with cancellation: the parallel candidate search checks
// ctx at block boundaries, so a cancel or deadline stops a large build
// mid-flight. On cancellation it returns (nil, ctx.Err()) — a partial edge
// set is never assembled into a Graph.
func BuildCtx(ctx context.Context, links []geom.Link, f Func) (*Graph, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(links) <= naiveCutoff {
		return BuildNaive(links, f), nil
	}
	g, err := buildBucketed(ctx, links, f, nil, 0)
	if err != nil {
		return nil, err
	}
	if g != nil {
		return g, nil
	}
	// Degenerate-input fallback: the O(n²) scan is not chunk-cancellable,
	// so at least refuse to start it once the context is done.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return BuildNaive(links, f), nil
}

// BuildNaive constructs G_f(links) by exact pairwise testing (O(n²)). The
// double loop discovers edges in lexicographic (i, j) order, so the CSR
// scatter emits both directions of every row already ascending with no
// sorting pass.
func BuildNaive(links []geom.Link, f Func) *Graph {
	n := len(links)
	var edges []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Conflicting(f, links[i], links[j]) {
				edges = append(edges, edge{int32(i), int32(j)})
			}
		}
	}
	return fromEdges(links, f, edges, nil, false)
}

// classGrid indexes the link endpoints of one dyadic length class, in a
// flat open-addressed hash table of cells (linear probing, power-of-two
// capacity, load factor ≤ ½) with the per-cell member lists packed into one
// CSR members array. Integer cell coordinates keep addressing collision-free
// for any instance extent; replacing the former map[cellKey][]int32 removes
// the runtime map's hashing, bucket-probe, and per-cell slice overhead from
// the build's innermost lookup.
type classGrid struct {
	size float64 // cell side length
	maxL float64 // actual maximum link length in the class
	minL float64 // actual minimum link length in the class
	// Bounding box of the occupied cells. Scan rectangles are clamped to
	// it, so a search radius far larger than the class extent (possible for
	// LogThreshold with α near 2) costs no more than the extent itself.
	minCX, maxCX, minCY, maxCY int64
	// Open-addressed table: slot s holds cell (keyX[s], keyY[s]) iff full[s].
	mask       uint64
	keyX, keyY []int64
	full       []bool
	slots      int // occupied slots
	// CSR member storage: the links with an endpoint in the cell at slot s
	// are members[start[s]:start[s+1]], in increasing link order.
	start   []int32
	members []int32
	// Cell-local SoA mirror, aligned with members: the endpoints and length
	// of link members[k] at msx[k]/msy[k]/mrx[k]/mry[k]/mlen[k], so scanCell
	// streams one contiguous block per cell instead of gather-loading five
	// arrays through members.
	msx, msy, mrx, mry, mlen []float64
	// cellIdx maps an occupied slot to its compact cell index in [0, slots).
	cellIdx []int32
	// Per-cell pruning metadata, compact-indexed by cellIdx: the bounding
	// box of the endpoints stored in the cell (tighter than the cell
	// rectangle) and the min/max member length (tightens the search radius
	// below the class-wide bound).
	bbMinX, bbMaxX, bbMinY, bbMaxY []float64
	cMinL, cMaxL                   []float64
	// fillTmp is the scatter cursor used only while buildBucketed packs
	// members; nil afterwards.
	fillTmp []int32
}

// cellHash mixes a cell coordinate pair to a table index distribution
// (splitmix64 finalizer over independently multiplied coordinates).
func cellHash(x, y int64) uint64 {
	h := uint64(x)*0x9e3779b97f4a7c15 ^ uint64(y)*0xc2b2ae3d27d4eb4f
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (cg *classGrid) cellCoordXY(x, y float64) (int64, int64) {
	return int64(math.Floor(x / cg.size)), int64(math.Floor(y / cg.size))
}

// insertSlot returns the table slot of cell (x, y), claiming an empty slot
// on first use. The capacity chosen in buildBucketed bounds the load factor
// by ½, so probe chains stay short and the loop always terminates.
func (cg *classGrid) insertSlot(x, y int64) int {
	h := cellHash(x, y) & cg.mask
	for {
		if !cg.full[h] {
			cg.full[h] = true
			cg.keyX[h], cg.keyY[h] = x, y
			cg.cellIdx[h] = int32(cg.slots)
			cg.slots++
			return int(h)
		}
		if cg.keyX[h] == x && cg.keyY[h] == y {
			return int(h)
		}
		h = (h + 1) & cg.mask
	}
}

// slotAt returns the table slot of cell (x, y), -1 when the cell is empty.
func (cg *classGrid) slotAt(x, y int64) int {
	h := cellHash(x, y) & cg.mask
	for cg.full[h] {
		if cg.keyX[h] == x && cg.keyY[h] == y {
			return int(h)
		}
		h = (h + 1) & cg.mask
	}
	return -1
}

func (cg *classGrid) extend(x, y int64) {
	cg.minCX = min(cg.minCX, x)
	cg.maxCX = max(cg.maxCX, x)
	cg.minCY = min(cg.minCY, y)
	cg.maxCY = max(cg.maxCY, y)
}

// clampCell converts a floored cell coordinate to int64, clamped to
// [lo, hi]. The comparison-first form keeps out-of-int64-range values
// (possible when the search radius dwarfs the cell size) away from the
// implementation-defined float→int conversion; NaN clamps to lo.
func clampCell(v float64, lo, hi int64) int64 {
	if !(v > float64(lo)) {
		return lo
	}
	if v > float64(hi) {
		return hi
	}
	return int64(v)
}

// edgeBufPool recycles the per-worker flat edge buffers (and the merged
// buffer) across builds, so a batch of same-scale instances stops paying
// the edge-list allocation per conflict graph. Buffers are returned after
// fromEdges has consumed them.
var edgeBufPool sync.Pool

func getEdgeBuf() *[]edge {
	if p, ok := edgeBufPool.Get().(*[]edge); ok {
		*p = (*p)[:0]
		return p
	}
	return new([]edge)
}

// strengthBufPool recycles the per-worker strength buffers of annotated
// builds, mirroring edgeBufPool entry for entry.
var strengthBufPool sync.Pool

func getStrengthBuf() *[]float64 {
	if p, ok := strengthBufPool.Get().(*[]float64); ok {
		*p = (*p)[:0]
		return p
	}
	return new([]float64)
}

// mortonOrder returns the link indices sorted by the Morton (Z-order) code
// of each link midpoint over the instance bounding box, ties broken by
// original index. The build relabels links into this order so that spatially
// close links — the only ones that ever test each other — also sit close in
// index space. The order affects discovery order only: edges are emitted
// under original indices and rows are sorted afterwards, so the resulting
// CSR is bit-identical to an unrelabeled build. Degenerate extents (all
// midpoints equal, or a non-finite spread) collapse to the identity order.
func mortonOrder(links []geom.Link) []int32 {
	n := len(links)
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, l := range links {
		x := (l.S.X + l.R.X) / 2
		y := (l.S.Y + l.R.Y) / 2
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	const side = 1 << 16 // 16 bits per axis; the code fills the key's top 32 bits
	sx := (side - 1) / (maxX - minX)
	sy := (side - 1) / (maxY - minY)
	if math.IsInf(sx, 0) || math.IsNaN(sx) {
		sx = 0
	}
	if math.IsInf(sy, 0) || math.IsNaN(sy) {
		sy = 0
	}
	// Pack (code, index) into one uint64 per link so the sort runs on a flat
	// integer slice — no comparator indirection, and ties resolve by index.
	keys := make([]uint64, n)
	for i, l := range links {
		qx := ((l.S.X+l.R.X)/2 - minX) * sx
		qy := ((l.S.Y+l.R.Y)/2 - minY) * sy
		if !(qx > 0) {
			qx = 0
		} else if qx > side-1 {
			qx = side - 1
		}
		if !(qy > 0) {
			qy = 0
		} else if qy > side-1 {
			qy = side - 1
		}
		code := interleave16(uint64(qx)) | interleave16(uint64(qy))<<1
		keys[i] = code<<32 | uint64(uint32(i))
	}
	slices.Sort(keys)
	ord := make([]int32, n)
	for k, key := range keys {
		ord[k] = int32(uint32(key))
	}
	return ord
}

// interleave16 spreads the low 16 bits of v to the even bit positions.
func interleave16(v uint64) uint64 {
	v &= 0xffff
	v = (v | v<<8) & 0x00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// buildBucketed is the grid-bucketed parallel construction. It returns
// (nil, nil) when the instance is degenerate (non-positive or non-finite
// lengths, or a non-positive threshold function value), signalling BuildCtx
// to fall back, and (nil, ctx.Err()) when the search was cancelled.
//
// When h is non-nil the build is strength-annotated: f must be fam.At(gm)
// for a Family with factor h, the pair test computes the threshold as
// lmin·(gm·h(x)) — the exact expression Family.At's contract makes f.Eval
// compute — and every accepted edge additionally gets its conflict strength
// (see strengthOf), emitted into Graph.Strengths.
//
// Correctness sketch: links are partitioned into dyadic length classes
// [b_c, b_{c+1}) by comparison against precomputed boundaries, so class
// order respects length order. A pair (i, j) with class(j) ≥ class(i)
// conflicts only if d(i,j) ≤ l_min·f(l_max/l_min); monotone f bounds that
// threshold by l_i·f(m_c/n_c) within i's own class and by l_i·f(m_c/l_i)
// for higher classes, where m_c, n_c are the actual max/min lengths stored
// per class. Scanning every grid cell intersecting the disks of that radius
// around both endpoints of i therefore yields a candidate superset; the
// exact Conflicting test then reproduces the naive edge set. Each edge is
// discovered exactly once, owned by the lower-class (ties: lower-index)
// endpoint, collected into per-worker flat edge buffers, and scattered into
// the CSR arrays in one counting pass — no per-vertex slices anywhere.
func buildBucketed(ctx context.Context, links []geom.Link, f Func, h func(float64) float64, gm float64) (*Graph, error) {
	n := len(links)
	lens := make([]float64, n)
	lmin, lmax := math.Inf(1), 0.0
	for i, l := range links {
		le := l.Length()
		if !(le > 0) || math.IsInf(le, 1) {
			return nil, nil
		}
		lens[i] = le
		lmin = math.Min(lmin, le)
		lmax = math.Max(lmax, le)
	}
	f2 := f.Eval(2)
	if !(f2 > 0) || math.IsInf(f2, 1) {
		return nil, nil
	}
	// Guard the radius computation: if the extreme length ratio or the
	// largest possible search radius overflows, the cell loops below would
	// effectively never terminate. Fall back to the exact quadratic scan.
	ratio := lmax / lmin
	if math.IsInf(ratio, 1) || math.IsNaN(ratio) {
		return nil, nil
	}
	if rmax := lmax * f.Eval(ratio); math.IsInf(rmax, 1) || math.IsNaN(rmax) {
		return nil, nil
	}

	// Spatial relabeling: the build works in Morton (Z-order) indices of the
	// link midpoints, so every structure the candidate scan touches per
	// probe — the coordinate SoA, the length table, the stamp array, and the
	// cell member lists — is clustered in index space. At 10⁶ links the
	// original (generation-order) indices make nearly every candidate load a
	// cache miss; the relabeled build emits each edge under the original
	// indices (orig) and the CSR rows are sorted afterwards, so the output is
	// bit-identical to an unrelabeled build.
	orig := mortonOrder(links)
	plens := make([]float64, n)
	sxs := make([]float64, n)
	sys := make([]float64, n)
	rxs := make([]float64, n)
	rys := make([]float64, n)
	maxAbs := 0.0
	for k, o := range orig {
		l := links[o]
		plens[k] = lens[o]
		sxs[k], sys[k] = l.S.X, l.S.Y
		rxs[k], rys[k] = l.R.X, l.R.Y
		maxAbs = math.Max(maxAbs, math.Max(
			math.Max(math.Abs(l.S.X), math.Abs(l.S.Y)),
			math.Max(math.Abs(l.R.X), math.Abs(l.R.Y))))
	}
	lens = plens

	// Dyadic class boundaries b_c = lmin·2^c, assigned by comparison (not
	// floating log2) so that classification is exactly monotone in length.
	bounds := []float64{lmin}
	for b := lmin * 2; b <= lmax; b *= 2 {
		bounds = append(bounds, b)
	}
	nc := len(bounds)
	class := make([]int, n)
	grids := make([]*classGrid, nc)
	cnt := make([]int, nc)
	for i := 0; i < n; i++ {
		c := sort.SearchFloat64s(bounds, lens[i])
		if c == nc || bounds[c] > lens[i] {
			c--
		}
		class[i] = c
		cnt[c]++
		if grids[c] == nil {
			grids[c] = &classGrid{
				maxL: lens[i], minL: lens[i],
				minCX: math.MaxInt64, maxCX: math.MinInt64,
				minCY: math.MaxInt64, maxCY: math.MinInt64,
			}
		} else {
			g := grids[c]
			g.maxL = math.Max(g.maxL, lens[i])
			g.minL = math.Min(g.minL, lens[i])
		}
	}
	for c, cg := range grids {
		if cg == nil {
			continue
		}
		cg.size = cg.maxL * f2
		if !(cg.size > 0) || math.IsInf(cg.size, 1) {
			return nil, nil
		}
		// A class of k links occupies at most 2k cells, so capacity 4k keeps
		// the open-addressed load factor at or below ½.
		capSlots := 8
		for capSlots < 4*cnt[c] {
			capSlots <<= 1
		}
		cg.mask = uint64(capSlots - 1)
		cg.keyX = make([]int64, capSlots)
		cg.keyY = make([]int64, capSlots)
		cg.full = make([]bool, capSlots)
		cg.start = make([]int32, capSlots+1)
		cg.cellIdx = make([]int32, capSlots)
	}
	// Insert pass: claim slots and count per-cell members (into start[s+1],
	// ready for the prefix sum), then scatter link indices. A link whose two
	// endpoints share a cell is stored once.
	slotS := make([]int32, n)
	slotR := make([]int32, n)
	for i := 0; i < n; i++ {
		cg := grids[class[i]]
		sx, sy := cg.cellCoordXY(sxs[i], sys[i])
		rx, ry := cg.cellCoordXY(rxs[i], rys[i])
		s := cg.insertSlot(sx, sy)
		cg.start[s+1]++
		cg.extend(sx, sy)
		slotS[i] = int32(s)
		slotR[i] = -1
		if rx != sx || ry != sy {
			s = cg.insertSlot(rx, ry)
			cg.start[s+1]++
			cg.extend(rx, ry)
			slotR[i] = int32(s)
		}
	}
	for _, cg := range grids {
		if cg == nil {
			continue
		}
		for s := 0; s < len(cg.full); s++ {
			cg.start[s+1] += cg.start[s]
		}
		nm := int(cg.start[len(cg.full)])
		cg.members = make([]int32, nm)
		cg.msx = make([]float64, nm)
		cg.msy = make([]float64, nm)
		cg.mrx = make([]float64, nm)
		cg.mry = make([]float64, nm)
		cg.mlen = make([]float64, nm)
		cg.bbMinX = make([]float64, cg.slots)
		cg.bbMaxX = make([]float64, cg.slots)
		cg.bbMinY = make([]float64, cg.slots)
		cg.bbMaxY = make([]float64, cg.slots)
		cg.cMinL = make([]float64, cg.slots)
		cg.cMaxL = make([]float64, cg.slots)
		for c := 0; c < cg.slots; c++ {
			cg.bbMinX[c], cg.bbMaxX[c] = math.Inf(1), math.Inf(-1)
			cg.bbMinY[c], cg.bbMaxY[c] = math.Inf(1), math.Inf(-1)
			cg.cMinL[c], cg.cMaxL[c] = math.Inf(1), 0
		}
	}
	// Scatter, each class advancing its own copy of the start offsets. The
	// same pass fills the cell-local SoA mirrors and folds each stored
	// occurrence into its cell's pruning metadata: the endpoint bbox grows by
	// the endpoint(s) that actually lie in the cell (the other endpoint is
	// indexed — and found — through its own cell), and the member-length
	// extremes grow by the link length.
	for _, cg := range grids {
		if cg == nil {
			continue
		}
		cg.fillTmp = append([]int32(nil), cg.start[:len(cg.full)]...)
	}
	extendCell := func(cg *classGrid, ci int32, x, y, le float64) {
		cg.bbMinX[ci] = math.Min(cg.bbMinX[ci], x)
		cg.bbMaxX[ci] = math.Max(cg.bbMaxX[ci], x)
		cg.bbMinY[ci] = math.Min(cg.bbMinY[ci], y)
		cg.bbMaxY[ci] = math.Max(cg.bbMaxY[ci], y)
		cg.cMinL[ci] = math.Min(cg.cMinL[ci], le)
		cg.cMaxL[ci] = math.Max(cg.cMaxL[ci], le)
	}
	for i := 0; i < n; i++ {
		cg := grids[class[i]]
		s := slotS[i]
		p := cg.fillTmp[s]
		cg.fillTmp[s]++
		cg.members[p] = int32(i)
		cg.msx[p], cg.msy[p] = sxs[i], sys[i]
		cg.mrx[p], cg.mry[p] = rxs[i], rys[i]
		cg.mlen[p] = lens[i]
		ci := cg.cellIdx[s]
		extendCell(cg, ci, sxs[i], sys[i], lens[i])
		if r := slotR[i]; r >= 0 {
			p = cg.fillTmp[r]
			cg.fillTmp[r]++
			cg.members[p] = int32(i)
			cg.msx[p], cg.msy[p] = sxs[i], sys[i]
			cg.mrx[p], cg.mry[p] = rxs[i], rys[i]
			cg.mlen[p] = lens[i]
			extendCell(cg, cg.cellIdx[r], rxs[i], rys[i], lens[i])
		} else {
			// Both endpoints share the cell: the edge to any candidate can
			// only be discovered here, so the bbox must cover both.
			extendCell(cg, ci, rxs[i], rys[i], lens[i])
		}
	}
	for _, cg := range grids {
		if cg != nil {
			cg.fillTmp = nil
		}
	}

	bs := &bucketedSearch{
		lens: lens, class: class, grids: grids, f: f, fConst: f.Const,
		h: h, gm: gm, orig: orig, maxAbs: maxAbs,
		sx: sxs, sy: sys, rx: rxs, ry: rys,
	}

	// Parallel candidate search. Each worker appends the edges its vertices
	// own — same-class neighbors j > i and all conflicting neighbors in
	// strictly higher classes — to one flat per-worker buffer drawn from the
	// shared pool (returned once the CSR scatter has consumed it).
	var mu sync.Mutex
	var bufs []*[]edge
	var qbufs []*[]float64 // index-aligned with bufs when annotating
	var stats BuildStats
	defer func() {
		for _, b := range bufs {
			edgeBufPool.Put(b)
		}
		for _, b := range qbufs {
			strengthBufPool.Put(b)
		}
	}()
	err := par.ForBlocksCtx(ctx, n, 64, func(next func() (int, int, bool)) {
		stamp := make([]int32, n)
		for i := range stamp {
			stamp[i] = -1
		}
		bufp := getEdgeBuf()
		buf := *bufp
		var qbufp *[]float64
		var qbuf []float64
		if h != nil {
			qbufp = getStrengthBuf()
			qbuf = *qbufp
		}
		// One-shot buffer reservation: at large sizes append grows slices by
		// only ~1.25×, so accumulating tens of millions of edges through the
		// default growth path allocates (and discards) several times the
		// final footprint — enough churn to drag whole GC cycles into big
		// builds. After a 1/16 prefix of this worker's expected share,
		// extrapolate the final count and reserve it once; a low estimate
		// just resumes normal append growth.
		seen, grown := 0, false
		share := n/max(runtime.GOMAXPROCS(0), 1) + 1
		var wst BuildStats
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				if h != nil {
					bs.searchLink(int32(i), stamp, &buf, &qbuf, &wst)
				} else {
					bs.searchLink(int32(i), stamp, &buf, nil, &wst)
				}
			}
			seen += hi - lo
			if !grown && seen >= share/16 && seen >= 4096 && len(buf) > 0 {
				grown = true
				proj := int(float64(len(buf)) / float64(seen) * float64(share) * 1.15)
				if proj > cap(buf) {
					nb := make([]edge, len(buf), proj)
					copy(nb, buf)
					buf = nb
					if h != nil {
						nq := make([]float64, len(qbuf), proj)
						copy(nq, qbuf)
						qbuf = nq
					}
				}
			}
		}
		*bufp = buf
		mu.Lock()
		bufs = append(bufs, bufp)
		if qbufp != nil {
			*qbufp = qbuf
			qbufs = append(qbufs, qbufp)
		}
		stats.Add(wst)
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	var edges []edge
	var qs []float64
	if len(bufs) == 1 {
		edges = *bufs[0]
		if h != nil {
			qs = *qbufs[0]
		}
	} else {
		total := 0
		for _, b := range bufs {
			total += len(*b)
		}
		mergep := getEdgeBuf()
		merge := *mergep
		if cap(merge) < total {
			merge = make([]edge, 0, total)
		}
		for _, b := range bufs {
			merge = append(merge, *b...)
		}
		*mergep = merge
		bufs = append(bufs, mergep)
		edges = merge
		if h != nil {
			// Strength buffers merge in the same worker order, keeping qs
			// aligned with edges entry for entry.
			qmergep := getStrengthBuf()
			qmerge := *qmergep
			if cap(qmerge) < total {
				qmerge = make([]float64, 0, total)
			}
			for _, b := range qbufs {
				qmerge = append(qmerge, *b...)
			}
			*qmergep = qmerge
			qbufs = append(qbufs, qmergep)
			qs = qmerge
		}
	}
	if h != nil && qs == nil {
		// Zero accepted edges: pooled buffers stay nil, but an annotated
		// build must still mark the graph filterable (non-nil Strengths).
		qs = []float64{}
	}
	g := fromEdges(links, f, edges, qs, true)
	g.Stats = stats
	return g, nil
}

// bucketedSearch carries the read-only state of one bucketed candidate
// search: precomputed lengths and classes, the per-class cell tables, and
// the link endpoints in structure-of-arrays form for the scan kernel. All
// per-link arrays are in Morton-relabeled index space; orig maps a relabeled
// index back to the caller's link index for edge emission.
type bucketedSearch struct {
	lens           []float64
	class          []int
	grids          []*classGrid
	f              Func
	fConst         float64 // Func.Const: > 0 ⟹ skip the Eval closure per pair
	h              func(x float64) float64
	gm             float64 // build γ of a strength-annotated search (h != nil)
	orig           []int32
	maxAbs         float64 // largest coordinate magnitude; scales the prune slack
	sx, sy, rx, ry []float64
}

// axisDist returns the distance from p to the interval [lo, hi] (0 inside).
func axisDist(p, lo, hi float64) float64 {
	if p < lo {
		return lo - p
	}
	if p > hi {
		return p - hi
	}
	return 0
}

// cellNear reports whether the cell rectangle [cx·s,(cx+1)·s]×[cy·s,(cy+1)·s]
// lies within the padded radius² rp2 of either endpoint of the scanning
// link. A cell beyond rp of both endpoints cannot hold a conflicting
// candidate: a conflicting pair has some endpoint q within thr ≤ r of some
// endpoint p of i, and q's cell is then within r (+ the cancellation slack
// folded into rp) of p. Skipping the cell therefore drops no edge, and in
// the rectangle walk it also skips the cell's hash probe.
func cellNear(cx, cy int64, s, rp2, sx, sy, rx, ry float64) bool {
	lox, loy := float64(cx)*s, float64(cy)*s
	hix, hiy := lox+s, loy+s
	dx, dy := axisDist(sx, lox, hix), axisDist(sy, loy, hiy)
	if dx*dx+dy*dy <= rp2 {
		return true
	}
	dx, dy = axisDist(rx, lox, hix), axisDist(ry, loy, hiy)
	return dx*dx+dy*dy <= rp2
}

// searchLink appends to *out every edge (i, j) that link i owns; when qout
// is non-nil, each edge's conflict strength is appended to *qout in lockstep.
// st accumulates the worker's pruning counters.
func (b *bucketedSearch) searchLink(i int32, stamp []int32, out *[]edge, qout *[]float64, st *BuildStats) {
	li := b.lens[i]
	ci := b.class[i]
	isx, isy := b.sx[i], b.sy[i]
	irx, iry := b.rx[i], b.ry[i]
	for c := ci; c < len(b.grids); c++ {
		cg := b.grids[c]
		if cg == nil {
			continue
		}
		// Radius bound; see buildBucketed. The 1e-9 relative pad absorbs
		// the few-ulp slop between this bound and the exact threshold
		// computed inside Conflicting.
		var x float64
		if c == ci {
			x = cg.maxL / cg.minL
		} else {
			x = cg.maxL / li
		}
		r := li * b.f.Eval(x) * (1 + 1e-9)
		s := cg.size
		// Cell pruning pad: r plus a slack dominating the worst-case absolute
		// cancellation error of the rectangle arithmetic in cellNear (a few
		// thousand ulps at the magnitude of the largest operand involved), so
		// a cell holding a true candidate can never be pruned by rounding.
		rp := r + (b.maxAbs+r+2*s)*1e-12
		rp2 := rp * rp
		// One scan over the union rectangle of both endpoint disks, clamped
		// to the class's occupied-cell bounding box (cells outside it are
		// empty, and clamping keeps a huge r — e.g. LogThreshold with α near
		// 2, where r/size can exceed 1e6 — from inflating the loop bounds).
		// The union costs no more than the former two per-endpoint passes:
		// the disks overlap heavily whenever r ≥ |SR| = l_i, and cellNear
		// prunes the cells that only the bounding rectangle (not either
		// disk) covers.
		x0 := clampCell(math.Floor((math.Min(isx, irx)-r)/s), cg.minCX, cg.maxCX)
		x1 := clampCell(math.Floor((math.Max(isx, irx)+r)/s), cg.minCX, cg.maxCX)
		y0 := clampCell(math.Floor((math.Min(isy, iry)-r)/s), cg.minCY, cg.maxCY)
		y1 := clampCell(math.Floor((math.Max(isy, iry)+r)/s), cg.minCY, cg.maxCY)
		if float64(x1-x0+1)*float64(y1-y0+1) > float64(len(cg.full)) {
			// The rectangle holds more cells than the table has slots
			// (sparse class spread over a wide extent): iterating it
			// would mostly probe empty cells, so walk the occupied
			// slots and test rectangle membership instead.
			for sl := range cg.full {
				if !cg.full[sl] {
					continue
				}
				kx, ky := cg.keyX[sl], cg.keyY[sl]
				if kx < x0 || kx > x1 || ky < y0 || ky > y1 {
					continue
				}
				if !cellNear(kx, ky, s, rp2, isx, isy, irx, iry) {
					continue
				}
				b.scanSlot(i, ci == c, li, cg, sl, stamp, out, qout, st)
			}
			continue
		}
		for cx := x0; cx <= x1; cx++ {
			for cy := y0; cy <= y1; cy++ {
				if !cellNear(cx, cy, s, rp2, isx, isy, irx, iry) {
					continue
				}
				sl := cg.slotAt(cx, cy)
				if sl < 0 {
					continue
				}
				b.scanSlot(i, ci == c, li, cg, sl, stamp, out, qout, st)
			}
		}
	}
}

// scanSlot applies the per-cell prunes to the candidate cell at slot sl and
// streams its members through scanCell when it survives. Two rejections run
// before any member is loaded:
//
//  1. Tightened radius. The class-level radius bounds every pair threshold
//     through the class-wide length extremes; replaying the same monotone
//     argument over the cell's own member-length extremes (gathered at
//     freeze time) gives a radius that is never larger — for G_γ a cell of
//     short same-class members shrinks it to cMaxL·γ.
//  2. Endpoint-bbox rect distance. A conflicting candidate j has an in-cell
//     endpoint q with |pq| ≤ thr ≤ rc for some endpoint p of i, and q lies
//     in the cell's stored-endpoint bounding box, so a cell whose bbox is
//     farther than the (slack-padded) tightened radius from both endpoints
//     of i cannot hold an owned edge. The bbox is tighter than the cell
//     rectangle cellNear tests, often by the full cell side.
//
// The surviving cell's members are then distance-tested against rc² instead
// of the class radius, tightening the per-candidate reject as well.
func (b *bucketedSearch) scanSlot(i int32, sameClass bool, li float64, cg *classGrid, sl int,
	stamp []int32, out *[]edge, qout *[]float64, st *BuildStats) {
	ic := cg.cellIdx[sl]
	cmax := cg.cMaxL[ic]
	var rc float64
	if b.fConst > 0 {
		m := li
		if sameClass && cmax < li {
			m = cmax
		}
		rc = m * b.fConst * (1 + 1e-9)
	} else if sameClass {
		lo := math.Min(li, cg.cMinL[ic])
		hi := math.Max(li, cmax)
		rc = math.Min(li, cmax) * b.f.Eval(hi/lo) * (1 + 1e-9)
	} else {
		rc = li * b.f.Eval(cmax/li) * (1 + 1e-9)
	}
	// Same absolute slack as the class-level pad: dominates the cancellation
	// error of the rect-distance arithmetic, so rounding can never prune a
	// cell holding a true candidate.
	rcp := rc + (b.maxAbs+rc+2*cg.size)*1e-12
	rcp2 := rcp * rcp
	bnx, bxx := cg.bbMinX[ic], cg.bbMaxX[ic]
	bny, bxy := cg.bbMinY[ic], cg.bbMaxY[ic]
	isx, isy := b.sx[i], b.sy[i]
	dx, dy := axisDist(isx, bnx, bxx), axisDist(isy, bny, bxy)
	if dx*dx+dy*dy > rcp2 {
		irx, iry := b.rx[i], b.ry[i]
		dx, dy = axisDist(irx, bnx, bxx), axisDist(iry, bny, bxy)
		if dx*dx+dy*dy > rcp2 {
			st.CellsPruned++
			return
		}
	}
	st.CellsScanned++
	b.scanCell(i, sameClass, rc*rc, cg, cg.start[sl], cg.start[sl+1], stamp, out, qout, st)
}

// scanCell runs the exact conflict test against every candidate in one grid
// cell, recording the edges link i owns. Candidate coordinates and lengths
// stream from the cell-local SoA mirror (one contiguous block per cell — no
// gather-loads through members), and for constant f (G_γ) the threshold
// skips the Eval closure; the arithmetic — min over the four endpoint
// squared distances against (l_min·f(l_max/l_min))² — is
// expression-identical to conflictingLens, so the edge set matches
// BuildNaive bit-for-bit.
//
// A strength-annotated search (qout non-nil) computes the threshold through
// the family factor h instead of f.Eval — lmin·(gm·h(x)), the identical
// floating-point expression by Family.At's contract — and appends each
// accepted edge's strength.
//
// The loop is ordered cheapest-reject-first: the squared distance (pure SoA
// loads and arithmetic) is compared against rr — the squared padded
// per-cell radius from scanSlot, which upper-bounds every pair threshold
// this scan can produce — before the threshold function is evaluated, and
// the stamp array is only consulted (and written) for accepted pairs, so
// rejected candidates never touch it. A candidate reachable through two
// cells is simply tested twice; the stamp still deduplicates the emitted
// edge.
func (b *bucketedSearch) scanCell(i int32, sameClass bool, rr float64,
	cg *classGrid, mlo, mhi int32, stamp []int32, out *[]edge, qout *[]float64, st *BuildStats) {
	li := b.lens[i]
	isx, isy := b.sx[i], b.sy[i]
	irx, iry := b.rx[i], b.ry[i]
	members := cg.members[mlo:mhi]
	msx := cg.msx[mlo:mhi:mhi]
	msy := cg.msy[mlo:mhi:mhi]
	mrx := cg.mrx[mlo:mhi:mhi]
	mry := cg.mry[mlo:mhi:mhi]
	mlen := cg.mlen[mlo:mhi:mhi]
	for k, j := range members {
		if j == i || (sameClass && j < i) {
			continue
		}
		jsx, jsy := msx[k], msy[k]
		jrx, jry := mrx[k], mry[k]
		st.CandScanned++
		dx, dy := isx-jsx, isy-jsy
		d := dx*dx + dy*dy
		dx, dy = isx-jrx, isy-jry
		if v := dx*dx + dy*dy; v < d {
			d = v
		}
		dx, dy = irx-jsx, iry-jsy
		if v := dx*dx + dy*dy; v < d {
			d = v
		}
		dx, dy = irx-jrx, iry-jry
		if v := dx*dx + dy*dy; v < d {
			d = v
		}
		if d > rr {
			continue
		}
		lmin, lmax := li, mlen[k]
		if lmin > lmax {
			lmin, lmax = lmax, lmin
		}
		var thr, hx float64
		if b.fConst > 0 {
			thr = lmin * b.fConst
			hx = 1
		} else if qout != nil {
			hx = b.h(lmax / lmin)
			thr = lmin * (b.gm * hx)
		} else {
			thr = lmin * b.f.Eval(lmax/lmin)
		}
		if d <= thr*thr {
			if stamp[j] == i {
				continue
			}
			stamp[j] = i
			st.CandAccepted++
			*out = append(*out, edge{b.orig[i], b.orig[j]})
			if qout != nil {
				*qout = append(*qout, strengthOf(d, lmin, hx, b.gm))
			}
		}
	}
}

// N returns the number of vertices (links).
func (g *Graph) N() int { return len(g.Links) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int { return len(g.Neighbors) / 2 }

// Row returns the sorted neighbor row of vertex i. The slice aliases the
// graph's CSR storage; callers must not modify it (test constructors like
// FromAdj excepted).
func (g *Graph) Row(i int) []int32 {
	return g.Neighbors[g.RowPtr[i]:g.RowPtr[i+1]]
}

// Degree returns the degree of vertex i.
func (g *Graph) Degree(i int) int { return int(g.RowPtr[i+1] - g.RowPtr[i]) }

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := int32(0)
	for i := 0; i < len(g.RowPtr)-1; i++ {
		if w := g.RowPtr[i+1] - g.RowPtr[i]; w > d {
			d = w
		}
	}
	return int(d)
}

// HasEdge reports whether i and j are adjacent, by binary search in i's row.
func (g *Graph) HasEdge(i, j int) bool {
	adj := g.Row(i)
	k := sort.Search(len(adj), func(k int) bool { return adj[k] >= int32(j) })
	return k < len(adj) && adj[k] == int32(j)
}

// IsIndependent reports whether the given vertex subset is pairwise
// non-adjacent.
func (g *Graph) IsIndependent(set []int) bool {
	mark := make([]bool, g.N())
	for _, v := range set {
		mark[v] = true
	}
	for _, v := range set {
		for _, w := range g.Row(v) {
			if mark[w] {
				return false
			}
		}
	}
	return true
}

// LongerNeighbors returns N⁺_i: the neighbors of i whose links are at least
// as long as link i (ties included, self excluded).
func (g *Graph) LongerNeighbors(i int) []int {
	li := g.Links[i].Length()
	var out []int
	for _, w := range g.Row(i) {
		if g.Links[w].Length() >= li {
			out = append(out, int(w))
		}
	}
	return out
}

// InductiveIndependence returns an estimate of the graph's inductive
// independence number: the maximum, over vertices i, of the size of a
// greedily-built independent subset of N⁺_i. Appendix A shows this is O(1)
// for all G_f with sub-linear f, which is what makes first-fit coloring a
// constant-factor approximation; this probe lets experiments verify the
// constant empirically. Greedy gives a lower bound on each ind. set,
// so the returned value is a lower bound on the true number.
func (g *Graph) InductiveIndependence() int {
	best := 0
	for i := range g.Links {
		cand := g.LongerNeighbors(i)
		// Greedy max independent subset: repeatedly take the candidate with
		// fewest conflicts among remaining candidates.
		taken := independentGreedy(g, cand)
		if taken > best {
			best = taken
		}
	}
	return best
}

func independentGreedy(g *Graph, cand []int) int {
	chosen := []int{}
	for _, v := range cand {
		ok := true
		for _, c := range chosen {
			if g.HasEdge(v, c) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, v)
		}
	}
	return len(chosen)
}

// AverageDegree returns 2·|E|/|V| (0 for an empty graph).
func (g *Graph) AverageDegree() float64 {
	if len(g.Links) == 0 {
		return 0
	}
	return 2 * float64(g.Edges()) / float64(len(g.Links))
}
