package conflict

import (
	"context"
	"math"
	"testing"
	"time"

	"aggrate/internal/geom"
	"aggrate/internal/mst"
	"aggrate/internal/rng"
)

// buildBucketedBG is the test-side shim over the context-aware bucketed
// build: Background never cancels, so the error leg is dead and the old
// nil-means-fallback contract is preserved for the parity suites.
func buildBucketedBG(links []geom.Link, f Func) *Graph {
	g, _ := buildBucketed(context.Background(), links, f, nil, 0)
	return g
}

// mstLinks generates the canonical test workload: the convergecast links of
// a uniform-random pointset's MST.
func mstLinks(t testing.TB, n int, seed uint64, side float64) []geom.Link {
	t.Helper()
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * side, Y: r.Float64() * side}
	}
	tree, err := mst.NewMSTTree(pts, 0)
	if err != nil {
		t.Fatalf("NewMSTTree: %v", err)
	}
	return tree.Links
}

// annulusLinks stresses high length diversity (many dyadic classes).
func annulusLinks(t testing.TB, n int, seed uint64) []geom.Link {
	t.Helper()
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		rad := math.Exp(r.Float64() * math.Log(1e5))
		ang := r.Float64() * 2 * math.Pi
		pts[i] = geom.Point{X: rad * math.Cos(ang), Y: rad * math.Sin(ang)}
	}
	tree, err := mst.NewMSTTree(pts, 0)
	if err != nil {
		t.Fatalf("NewMSTTree: %v", err)
	}
	return tree.Links
}

func testFuncs() []Func {
	return []Func{
		Gamma(1),
		Gamma(0.5),
		Gamma(3),
		PowerLaw(2, 0.5),
		PowerLaw(1, 0.25),
		LogThreshold(1.5, 3),
		LogThreshold(2, 2.5),   // exponent 4: log factor overtakes x on a wide range
		LogThreshold(1.5, 2.1), // exponent 20: search radius dwarfs the grid extent
	}
}

func graphsEqual(t *testing.T, want, got *Graph, label string) {
	t.Helper()
	if want.Edges() != got.Edges() {
		t.Fatalf("%s: edge count mismatch: naive=%d bucketed=%d", label, want.Edges(), got.Edges())
	}
	for i := 0; i < want.N(); i++ {
		wa, ga := want.Row(i), got.Row(i)
		if len(wa) != len(ga) {
			t.Fatalf("%s: vertex %d degree mismatch: naive=%d bucketed=%d", label, i, len(wa), len(ga))
		}
		for k := range wa {
			if wa[k] != ga[k] {
				t.Fatalf("%s: vertex %d adjacency differs at pos %d: naive=%d bucketed=%d",
					label, i, k, wa[k], ga[k])
			}
		}
	}
}

// TestBucketedMatchesNaive is the acceptance property: the grid-bucketed
// parallel Build must produce an edge set identical (including adjacency
// order) to the exhaustive O(n²) reference, across conflict functions and
// both homogeneous and diversity-heavy instances.
func TestBucketedMatchesNaive(t *testing.T) {
	cases := []struct {
		name  string
		links []geom.Link
	}{
		{"uniform-300", mstLinks(t, 300, 1, 1000)},
		{"uniform-1200", mstLinks(t, 1200, 2, 1000)},
		{"dense-300", mstLinks(t, 300, 3, 10)},
		{"annulus-500", annulusLinks(t, 500, 4)},
	}
	for _, tc := range cases {
		for _, f := range testFuncs() {
			naive := BuildNaive(tc.links, f)
			bucketed := buildBucketedBG(tc.links, f)
			if bucketed == nil {
				t.Fatalf("%s/%s: bucketed build fell back unexpectedly", tc.name, f.Name)
			}
			graphsEqual(t, naive, bucketed, tc.name+"/"+f.Name)
		}
	}
}

// TestBuildSmallUsesNaivePath checks the fallback below the cutoff still
// yields the same graph as an explicit naive build.
func TestBuildSmallUsesNaivePath(t *testing.T) {
	links := mstLinks(t, 60, 5, 100)
	f := Gamma(1)
	graphsEqual(t, BuildNaive(links, f), Build(links, f), "small")
}

// TestBuildDeterministic: two builds of the same instance must be
// identical despite goroutine scheduling.
func TestBuildDeterministic(t *testing.T) {
	links := mstLinks(t, 800, 6, 1000)
	f := PowerLaw(2, 0.5)
	graphsEqual(t, Build(links, f), Build(links, f), "repeat")
}

// TestNaiveAdjacencyAscending pins the invariant that let the redundant
// sort pass be removed from BuildNaive: the i<j double loop emits both
// adjacency directions in ascending order already.
func TestNaiveAdjacencyAscending(t *testing.T) {
	g := BuildNaive(mstLinks(t, 400, 7, 500), Gamma(2))
	for i := 0; i < g.N(); i++ {
		adj := g.Row(i)
		for k := 1; k < len(adj); k++ {
			if adj[k-1] >= adj[k] {
				t.Fatalf("Row(%d) not strictly ascending at pos %d: %d >= %d", i, k, adj[k-1], adj[k])
			}
		}
	}
}

// TestZeroLengthFallsBack: degenerate links (coinciding endpoints) must
// take the naive path and still conflict with everything.
func TestZeroLengthFallsBack(t *testing.T) {
	p := geom.Point{X: 1, Y: 1}
	links := []geom.Link{
		geom.NewLink(0, 1, geom.Point{}, geom.Point{X: 1}),
		geom.NewLink(2, 3, p, p), // zero length
	}
	// Pad above the cutoff so Build would prefer the bucketed path.
	r := rng.New(8)
	for len(links) <= naiveCutoff+10 {
		a := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		b := geom.Point{X: a.X + 1, Y: a.Y}
		links = append(links, geom.NewLink(len(links), len(links)+1, a, b))
	}
	g := Build(links, Gamma(1))
	if got, want := g.Degree(1), len(links)-1; got != want {
		t.Fatalf("zero-length link degree = %d, want %d (conflicts with all)", got, want)
	}
}

// TestHugeRadiusTerminates pins the fix for the unbounded cell scan: for
// LogThreshold with α near 2 the cross-class search radius can exceed the
// cell size by a factor of 1e6+, and an unclamped rectangle loop would
// visit ~1e12 cells per link, so Build effectively never finished. The
// clamped scan must complete promptly and still match the naive oracle.
func TestHugeRadiusTerminates(t *testing.T) {
	links := annulusLinks(t, 400, 4)
	f := LogThreshold(1.5, 2.1)
	done := make(chan *Graph, 1)
	go func() { done <- Build(links, f) }()
	var g *Graph
	select {
	case g = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Build did not terminate within 30s on annulus links with LogThreshold(1.5, 2.1)")
	}
	graphsEqual(t, BuildNaive(links, f), g, "huge-radius")
}

// TestBucketedFasterAt10k is the performance half of the acceptance
// criterion. Wall-clock assertions are kept loose (2×) to stay robust on
// loaded CI machines; the real margin is one to two orders of magnitude.
func TestBucketedFasterAt10k(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	links := mstLinks(t, 10_000, 9, 10_000)
	f := PowerLaw(2, 0.5)

	start := time.Now()
	bucketed := buildBucketedBG(links, f)
	bucketedSec := time.Since(start).Seconds()
	if bucketed == nil {
		t.Fatal("bucketed build fell back unexpectedly")
	}

	start = time.Now()
	naive := BuildNaive(links, f)
	naiveSec := time.Since(start).Seconds()

	graphsEqual(t, naive, bucketed, "10k")
	if bucketedSec*2 >= naiveSec {
		t.Errorf("bucketed build not measurably faster at n=10k: bucketed=%.3fs naive=%.3fs",
			bucketedSec, naiveSec)
	}
	t.Logf("n=10k: bucketed=%.3fs naive=%.3fs speedup=%.1fx", bucketedSec, naiveSec, naiveSec/bucketedSec)
}

func BenchmarkBuildBucketed10k(b *testing.B) {
	links := mstLinks(b, 10_000, 9, 10_000)
	f := PowerLaw(2, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := buildBucketedBG(links, f); g == nil {
			b.Fatal("fell back")
		}
	}
}

func BenchmarkBuildNaive10k(b *testing.B) {
	links := mstLinks(b, 10_000, 9, 10_000)
	f := PowerLaw(2, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildNaive(links, f)
	}
}

// BenchmarkScanCell isolates the candidate-scan half of the bucketed build
// (searchLink → scanSlot over the cell-local SoA mirrors): a mid-size
// uniform instance where grid setup and CSR assembly are small against the
// per-cell scans, with the pruning counters reported alongside the time so
// the cells-pruned and candidates-per-edge trajectories are visible in the
// CI bench-smoke artifact next to the ns/op.
func BenchmarkScanCell(b *testing.B) {
	links := mstLinks(b, 20_000, 9, 20_000)
	f := PowerLaw(2, 0.5)
	b.ResetTimer()
	var st BuildStats
	for i := 0; i < b.N; i++ {
		g := buildBucketedBG(links, f)
		if g == nil {
			b.Fatal("fell back")
		}
		st = g.Stats
	}
	b.ReportMetric(float64(st.CellsScanned), "cells_scanned")
	b.ReportMetric(float64(st.CellsPruned), "cells_pruned")
	b.ReportMetric(st.CandRatio(), "cand_per_edge")
}

func BenchmarkBuildBucketed50k(b *testing.B) {
	links := mstLinks(b, 50_000, 9, 30_000)
	f := PowerLaw(2, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := buildBucketedBG(links, f); g == nil {
			b.Fatal("fell back")
		}
	}
}
