package conflict

import (
	"context"
	"math"
	"testing"

	"aggrate/internal/geom"
	"aggrate/internal/mst"
	"aggrate/internal/rng"
)

// clusterLinks generates the MST links of a clustered pointset: k dense
// clusters spread far apart, so intra-cluster links are short and the
// cluster-bridging links are orders of magnitude longer.
func clusterLinks(t testing.TB, n int, seed uint64) []geom.Link {
	t.Helper()
	r := rng.New(seed)
	const k = 8
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{X: r.Float64() * 1e5, Y: r.Float64() * 1e5}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[int(r.Uint64()%k)]
		pts[i] = geom.Point{X: c.X + r.Float64()*50, Y: c.Y + r.Float64()*50}
	}
	tree, err := mst.NewMSTTree(pts, 0)
	if err != nil {
		t.Fatalf("NewMSTTree: %v", err)
	}
	return tree.Links
}

// lookaheadFamilies are the three threshold families of the paper in
// factored (γ, h) form, with the arbitrary-power graph at the pathological
// α=2.05 (exponent 40).
func lookaheadFamilies() []Family {
	return []Family{
		GammaFamily(),
		PowerLawFamily(0.5),
		LogThresholdFamily(2.05),
	}
}

// escalationLadder mirrors the experiment loop's γ schedule: start at γ₀ and
// multiply by step, computing each rung (and the lookahead ceiling) by
// iterated multiplication so the floats match the runtime's exactly.
func escalationLadder(gamma0, step float64, retries int) []float64 {
	ladder := []float64{gamma0}
	g := gamma0
	for i := 0; i < retries; i++ {
		g *= step
		ladder = append(ladder, g)
	}
	return ladder
}

// sameEdgeSet asserts two graphs over the same links have identical edge
// sets irrespective of row ordering.
func sameEdgeSet(t *testing.T, want, got *Graph, label string) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("%s: vertex count mismatch: %d vs %d", label, want.N(), got.N())
	}
	type pair struct{ i, j int32 }
	set := make(map[pair]bool, len(want.Neighbors))
	for i := 0; i < want.N(); i++ {
		for _, j := range want.Row(i) {
			set[pair{int32(i), j}] = true
		}
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%s: directed edge count mismatch: want %d, got %d",
			label, len(want.Neighbors), len(got.Neighbors))
	}
	for i := 0; i < got.N(); i++ {
		for _, j := range got.Row(i) {
			if !set[pair{int32(i), j}] {
				t.Fatalf("%s: extra edge (%d,%d) not in oracle", label, i, j)
			}
		}
	}
}

// TestLookaheadMatchesBuild is the tentpole's parity wall: one
// strength-annotated build at the escalation ceiling, filtered down to every
// ladder rung, must be bit-identical — edge set, CSR row order — to a direct
// Build at that rung, for all three threshold families over uniform, cluster,
// and annulus geometry. The smallest case additionally checks the filtered
// graph against the O(n²) BuildNaive oracle, so the property does not rest
// on Build alone.
func TestLookaheadMatchesBuild(t *testing.T) {
	cases := []struct {
		name  string
		links []geom.Link
	}{
		{"uniform-500", mstLinks(t, 500, 21, 1000)},
		{"cluster-400", clusterLinks(t, 400, 22)},
		{"annulus-400", annulusLinks(t, 400, 23)},
	}
	ladder := escalationLadder(0.8, 1.5, 4)
	gammaMax := ladder[len(ladder)-1]
	for _, tc := range cases {
		for _, fam := range lookaheadFamilies() {
			full, err := BuildLookaheadCtx(context.Background(), tc.links, fam, gammaMax)
			if err != nil {
				t.Fatalf("%s/%s: BuildLookaheadCtx: %v", tc.name, fam.Name, err)
			}
			if full.Strengths == nil || len(full.Strengths) != len(full.Neighbors) {
				t.Fatalf("%s/%s: Strengths not parallel to Neighbors: %d vs %d",
					tc.name, fam.Name, len(full.Strengths), len(full.Neighbors))
			}
			// The annotated build at the ceiling IS the direct build there.
			graphsEqual(t, Build(tc.links, fam.At(gammaMax)), full, tc.name+"/"+fam.Name+"/top")
			for _, gamma := range ladder {
				f := fam.At(gamma)
				filtered, err := full.FilterCtx(context.Background(), f, gamma)
				if err != nil {
					t.Fatalf("%s/%s γ=%g: FilterCtx: %v", tc.name, fam.Name, gamma, err)
				}
				direct := Build(tc.links, f)
				label := tc.name + "/" + fam.Name
				graphsEqual(t, direct, filtered, label)
				if tc.name == "cluster-400" {
					naive := BuildNaive(tc.links, f)
					sameEdgeSet(t, naive, filtered, label+"/naive-oracle")
				}
			}
		}
	}
}

// TestStrengthIsExactBoundary pins the definition of conflict strength: for
// every annotated edge with strength q > 0, the pair conflicts under
// fam.At(q) and does NOT conflict under fam.At(prevfloat(q)) — q is the
// exact float64 boundary of the monotone predicate, which is what makes
// "filter by q ≤ γ" reproduce the direct build at every γ.
func TestStrengthIsExactBoundary(t *testing.T) {
	links := annulusLinks(t, 300, 24)
	for _, fam := range lookaheadFamilies() {
		full, err := BuildLookaheadCtx(context.Background(), links, fam, 8)
		if err != nil {
			t.Fatalf("%s: BuildLookaheadCtx: %v", fam.Name, err)
		}
		checked := 0
		for i := 0; i < full.N(); i++ {
			row := full.Row(i)
			qs := full.Strengths[full.RowPtr[i]:full.RowPtr[i+1]]
			for k, j := range row {
				if int32(i) > j {
					continue // each undirected edge once
				}
				q := qs[k]
				if q < 0 || q > 8 {
					t.Fatalf("%s: edge (%d,%d) strength %g outside [0, γmax]", fam.Name, i, j, q)
				}
				if !Conflicting(fam.At(q), links[i], links[j]) {
					t.Fatalf("%s: edge (%d,%d) does not conflict at its own strength %g", fam.Name, i, j, q)
				}
				if q > 0 {
					below := math.Float64frombits(math.Float64bits(q) - 1)
					if Conflicting(fam.At(below), links[i], links[j]) {
						t.Fatalf("%s: edge (%d,%d) already conflicts below its strength %g", fam.Name, i, j, q)
					}
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no edges checked — fixture too sparse", fam.Name)
		}
	}
}

// TestLookaheadGraphFor covers the caching handle: the first call per link
// set builds, subsequent calls reuse via the filter scan, a γ at the ceiling
// is served by the annotated build directly, and a different link set gets
// its own build rather than a stale cache hit.
func TestLookaheadGraphFor(t *testing.T) {
	links := mstLinks(t, 400, 25, 1000)
	other := mstLinks(t, 400, 26, 1000)
	fam := GammaFamily()
	ladder := escalationLadder(1, 1.5, 2)
	la := NewLookahead(ladder[len(ladder)-1])

	g0, st0, err := la.GraphFor(context.Background(), links, fam, ladder[0])
	if err != nil {
		t.Fatalf("GraphFor: %v", err)
	}
	if st0.Reused || st0.BuildSec <= 0 {
		t.Fatalf("first call must build: %+v", st0)
	}
	graphsEqual(t, Build(links, fam.At(ladder[0])), g0, "first")

	for _, gamma := range ladder[1:] {
		g, st, err := la.GraphFor(context.Background(), links, fam, gamma)
		if err != nil {
			t.Fatalf("GraphFor(γ=%g): %v", gamma, err)
		}
		if !st.Reused || st.BuildSec != 0 {
			t.Fatalf("γ=%g: expected cache reuse, got %+v", gamma, st)
		}
		graphsEqual(t, Build(links, fam.At(gamma)), g, "reused")
	}

	// Different link content: must not be served by the first build.
	gOther, stOther, err := la.GraphFor(context.Background(), other, fam, ladder[0])
	if err != nil {
		t.Fatalf("GraphFor(other): %v", err)
	}
	if stOther.Reused {
		t.Fatal("distinct link set reported as reused")
	}
	graphsEqual(t, Build(other, fam.At(ladder[0])), gOther, "other")

	// Above the ceiling: correct (direct) build, not a cache hit.
	gHigh, stHigh, err := la.GraphFor(context.Background(), links, fam, la.GammaMax()*2)
	if err != nil {
		t.Fatalf("GraphFor(high): %v", err)
	}
	if stHigh.Reused {
		t.Fatal("out-of-coverage γ reported as reused")
	}
	graphsEqual(t, Build(links, fam.At(la.GammaMax()*2)), gHigh, "high")
}

// TestFilterCtxCancel: a canceled context must surface as (nil, err) from
// the filter scan, never as a partially filtered graph.
func TestFilterCtxCancel(t *testing.T) {
	links := mstLinks(t, 2000, 27, 1000)
	fam := GammaFamily()
	full, err := BuildLookaheadCtx(context.Background(), links, fam, 4)
	if err != nil {
		t.Fatalf("BuildLookaheadCtx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := full.FilterCtx(ctx, fam.At(2), 2)
	if err == nil || g != nil {
		t.Fatalf("FilterCtx on canceled ctx: got (%v, %v), want (nil, ctx error)", g, err)
	}
}

// TestFilterRequiresStrengths: filtering a plain (unannotated) build is a
// programming error and must fail loudly instead of returning an empty graph.
func TestFilterRequiresStrengths(t *testing.T) {
	links := mstLinks(t, 200, 28, 1000)
	g := Build(links, Gamma(2))
	if _, err := g.FilterCtx(context.Background(), Gamma(1), 1); err == nil {
		t.Fatal("FilterCtx on a strength-free graph succeeded; want error")
	}
}

// FuzzLookaheadMatchesBuild extends the build-parity fuzz wall to the
// lookahead path: on adversarial small instances (int8 lattice points, ~23
// dyadic length classes, α≈2 radii), the graph filtered from one annotated
// build at the ladder ceiling must match both Build and the O(n²) naive
// oracle at every ladder rung, for all three factored families.
func FuzzLookaheadMatchesBuild(f *testing.F) {
	f.Add(pathologicalSeed())
	f.Add([]byte{4, 0, 0, 1, 0, 8, 0, 0, 1, 0, 8, 5, 0, 2, 0, 8, 5, 0, 2, 0, 8})
	f.Add([]byte{8, 10, 10, 3, 4, 2, 10, 10, 3, 4, 14, 250, 250, 1, 1, 8, 0, 0, 100, 100, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		links := fuzzLinks(data)
		if len(links) < 2 {
			return
		}
		ladder := escalationLadder(0.8, 1.5, 3)
		gammaMax := ladder[len(ladder)-1]
		for _, fam := range lookaheadFamilies() {
			full, err := BuildLookaheadCtx(context.Background(), links, fam, gammaMax)
			if err != nil {
				t.Fatalf("%s: BuildLookaheadCtx: %v", fam.Name, err)
			}
			for _, gamma := range ladder {
				fn := fam.At(gamma)
				filtered, err := full.FilterCtx(context.Background(), fn, gamma)
				if err != nil {
					t.Fatalf("%s γ=%g: FilterCtx: %v", fam.Name, gamma, err)
				}
				naive := BuildNaive(links, fn)
				if naive.Edges() != filtered.Edges() {
					t.Fatalf("%s γ=%g: edge count %d (filtered) != %d (naive) on %v",
						fam.Name, gamma, filtered.Edges(), naive.Edges(), links)
				}
				direct := Build(links, fn)
				for i := 0; i < direct.N(); i++ {
					wa, ga := direct.Row(i), filtered.Row(i)
					if len(wa) != len(ga) {
						t.Fatalf("%s γ=%g: degree of %d differs: direct %v, filtered %v on %v",
							fam.Name, gamma, i, wa, ga, links)
					}
					for k := range wa {
						if wa[k] != ga[k] {
							t.Fatalf("%s γ=%g: adjacency of %d differs at %d: direct %v, filtered %v on %v",
								fam.Name, gamma, i, k, wa, ga, links)
						}
					}
				}
			}
		}
	})
}
