package conflict

import (
	"math"
	"slices"
	"testing"

	"aggrate/internal/geom"
)

// fuzzLinks decodes fuzz bytes into a small link set. The encoding is chosen
// to hit the bucketed build's hard cases on purpose:
//
//   - endpoints live on a small int8 lattice, so duplicate and collinear
//     points are common;
//   - the receiver offset is scaled by 2^(e-8)/8 for e ∈ [0, 16], so link
//     lengths span ~23 dyadic classes within one instance (near-zero lengths
//     included) and length diversity reaches ~10^7 — enough to push
//     LogThreshold(γ, α≈2) search radii far beyond the instance extent.
//
// Byte layout: data[0] is the link count (2–25), then 5 bytes per link:
// sender x, sender y, receiver dx, receiver dy (int8), exponent.
func fuzzLinks(data []byte) []geom.Link {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%24 + 2
	var links []geom.Link
	for k := 0; k < n; k++ {
		b := data[1+5*k:]
		if len(b) < 5 {
			break
		}
		sx := float64(int8(b[0]))
		sy := float64(int8(b[1]))
		scale := math.Ldexp(1, int(b[4]%17)-8) / 8
		rx := sx + float64(int8(b[2]))*scale
		ry := sy + float64(int8(b[3]))*scale
		links = append(links, geom.NewLink(2*k, 2*k+1,
			geom.Point{X: sx, Y: sy}, geom.Point{X: rx, Y: ry}))
	}
	return links
}

// fuzzFuncs are the three threshold families of the paper, with the
// arbitrary-power graph instantiated at α≈2 where the exponent 2/(α-2)
// blows up to 40 — the known-pathological regime for the bucketed build's
// search radii (see TestHugeRadiusTerminates) — plus the linear
// protocol-model threshold of the naive scheduling strategy, which is
// monotone but deliberately not sub-linear (Build's exactness must not
// depend on sub-linearity).
func fuzzFuncs() []Func {
	return []Func{
		Gamma(2),
		PowerLaw(2, 0.5),
		LogThreshold(2, 2.05),
		{Name: "protocol(2)", Eval: func(x float64) float64 { return 2 * x }},
	}
}

// pathologicalSeed reproduces the α≈2 hang scenario as fuzz input: a hub of
// near-zero links next to far-away long links, maximizing both the length
// diversity and the ratio between search radius and class extent.
func pathologicalSeed() []byte {
	data := []byte{14} // 16 links
	add := func(sx, sy, dx, dy int8, e byte) {
		data = append(data, byte(sx), byte(sy), byte(dx), byte(dy), e)
	}
	for i := int8(0); i < 8; i++ {
		// Tiny links (scale 2^-8/8) clustered at the origin, collinear.
		add(i%3, 0, 1, 0, 0)
	}
	for i := int8(0); i < 8; i++ {
		// Long links (scale 2^8/8) fanning out from the far corner,
		// including duplicate senders.
		add(100, 100, 2+i, -3, 16)
	}
	return data
}

// FuzzBuildMatchesNaive asserts that the grid-bucketed parallel construction
// is edge-for-edge identical to the exact O(n²) oracle on adversarial small
// instances, across all three conflict-threshold families. buildBucketed
// returning nil is the sanctioned degenerate-input fallback (Build then uses
// the naive path), so nil is skipped, not failed.
func FuzzBuildMatchesNaive(f *testing.F) {
	f.Add(pathologicalSeed())
	// Duplicate and collinear points on one axis.
	f.Add([]byte{4, 0, 0, 1, 0, 8, 0, 0, 1, 0, 8, 5, 0, 2, 0, 8, 5, 0, 2, 0, 8})
	// Mixed scales around a cluster.
	f.Add([]byte{8, 10, 10, 3, 4, 2, 10, 10, 3, 4, 14, 250, 250, 1, 1, 8, 0, 0, 100, 100, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		links := fuzzLinks(data)
		if len(links) < 2 {
			return
		}
		for _, fn := range fuzzFuncs() {
			naive := BuildNaive(links, fn)
			bucketed := buildBucketedBG(links, fn)
			if bucketed == nil {
				continue // degenerate input: Build falls back to naive
			}
			if naive.Edges() != bucketed.Edges() {
				t.Fatalf("%s: edge count %d (bucketed) != %d (naive) on %v",
					fn.Name, bucketed.Edges(), naive.Edges(), links)
			}
			for i := 0; i < naive.N(); i++ {
				if !slices.Equal(naive.Row(i), bucketed.Row(i)) {
					t.Fatalf("%s: adjacency of link %d differs: bucketed %v, naive %v on %v",
						fn.Name, i, bucketed.Row(i), naive.Row(i), links)
				}
			}
		}
	})
}

// TestFuzzSeedsDirectly runs the checked-in seeds through the fuzz body even
// when fuzzing is disabled, so the pathological case stays covered by plain
// `go test`.
func TestFuzzSeedsDirectly(t *testing.T) {
	seeds := [][]byte{
		pathologicalSeed(),
		{4, 0, 0, 1, 0, 8, 0, 0, 1, 0, 8, 5, 0, 2, 0, 8, 5, 0, 2, 0, 8},
	}
	for _, data := range seeds {
		links := fuzzLinks(data)
		if len(links) < 2 {
			t.Fatal("seed decodes to fewer than 2 links")
		}
		for _, fn := range fuzzFuncs() {
			naive := BuildNaive(links, fn)
			bucketed := buildBucketedBG(links, fn)
			if bucketed == nil {
				t.Fatalf("%s: seed unexpectedly degenerate", fn.Name)
			}
			if naive.Edges() != bucketed.Edges() {
				t.Fatalf("%s: edge count %d != %d", fn.Name, bucketed.Edges(), naive.Edges())
			}
		}
	}
}
