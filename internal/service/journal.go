// Journal: the append-only NDJSON write-ahead log that makes jobs durable.
//
// One record per line, distinguished by the "t" field:
//
//	{"t":"job","time":T,"id":"j000001","client":"k","priority":0,"req":{...}}   job accepted
//	{"t":"spec","time":T,"job":"j000001","i":3,"key":"ab12...","result":{...}}  spec i completed
//	{"t":"status","time":T,"job":"j000001","status":"done"}                     terminal transition
//
// Appends are flushed (write(2)) per record, so a SIGKILLed process loses at
// most the record being formatted; fsync happens on job boundaries (accept,
// terminal, shutdown), bounding what a power loss can take. Replay is
// prefix-tolerant: the first unparseable line — a torn tail write — ends the
// replay, and every well-formed prefix yields a consistent state (see
// journal_test.go's truncation property test).
//
// Compaction: on startup (and when the live file passes Config's
// JournalMaxBytes after a job finishes) the journal is rewritten to hold
// only the records that still matter — the job/spec records of jobs that are
// not yet terminal — into path+".tmp", fsynced, and atomically renamed over
// the old file. A crash at any point leaves either the old or the new file
// intact, never neither.
package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aggrate/internal/experiment"
)

// journalRecord is the superset of every record shape; writers fill only the
// fields of their record type, readers dispatch on T.
type journalRecord struct {
	T    string    `json:"t"`
	Time time.Time `json:"time"`

	// t=job
	ID       string      `json:"id,omitempty"`
	Client   string      `json:"client,omitempty"`
	Priority int         `json:"priority,omitempty"`
	Req      *JobRequest `json:"req,omitempty"`

	// t=spec / t=status
	Job    string             `json:"job,omitempty"`
	Index  int                `json:"i,omitempty"`
	Key    string             `json:"key,omitempty"`
	Result *experiment.Result `json:"result,omitempty"`
	Status string             `json:"status,omitempty"`
}

// journal owns the append fd. All methods are safe for concurrent use.
type journal struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      *bufio.Writer
	closed bool

	faults *faultState
	m      *metrics

	bytesSinceCompact int64
}

// replayedSpec is one completed spec recovered from the journal.
type replayedSpec struct {
	key string
	res *experiment.Result
}

// replayedJob is one job's recovered state: the submission, its last known
// status, and every completed spec.
type replayedJob struct {
	id        string
	client    string
	priority  int
	created   time.Time
	req       JobRequest
	status    string
	completed map[int]replayedSpec
}

// terminal reports whether the job finished for good. "interrupted" is NOT
// terminal here: it marks a job the previous process shut down under, which
// a restart resumes.
func (r *replayedJob) terminal() bool {
	return r.status == StatusDone || r.status == StatusCancelled
}

// replayJournal parses one journal file into per-job recovered state,
// preserving submission order. Missing files replay to empty. The first
// unparseable line ends the replay (torn tail write); records referencing
// unknown jobs are dropped.
func replayJournal(path string) ([]*replayedJob, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	byID := make(map[string]*replayedJob)
	var order []*replayedJob
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail write: everything before this line is a valid prefix.
			break
		}
		switch rec.T {
		case "job":
			if rec.ID == "" || rec.Req == nil || byID[rec.ID] != nil {
				continue
			}
			j := &replayedJob{
				id: rec.ID, client: rec.Client, priority: rec.Priority,
				created: rec.Time, req: *rec.Req, status: StatusQueued,
				completed: make(map[int]replayedSpec),
			}
			byID[rec.ID] = j
			order = append(order, j)
		case "spec":
			j := byID[rec.Job]
			if j == nil || rec.Result == nil || rec.Index < 0 {
				continue
			}
			j.completed[rec.Index] = replayedSpec{key: rec.Key, res: rec.Result}
		case "status":
			if j := byID[rec.Job]; j != nil && rec.Status != "" {
				j.status = rec.Status
			}
		}
	}
	if err := sc.Err(); err != nil && len(order) == 0 {
		return nil, err
	}
	return order, nil
}

// openJournal replays path (if present), compacts it down to the live jobs,
// and returns the journal opened for append plus the recovered jobs (live
// and terminal — the caller seeds its cache from both but only resumes the
// live ones).
func openJournal(path string, faults *faultState, m *metrics) (*journal, []*replayedJob, error) {
	replayed, err := replayJournal(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal replay %s: %w", path, err)
	}
	j := &journal{path: path, faults: faults, m: m}
	var live []*replayedJob
	for _, rj := range replayed {
		if !rj.terminal() {
			live = append(live, rj)
		}
	}
	if err := j.compact(live); err != nil {
		return nil, nil, fmt.Errorf("journal compact %s: %w", path, err)
	}
	return j, replayed, nil
}

// compact rewrites the journal to exactly the records of the given live
// jobs, atomically replacing the old file, and (re)opens it for append.
// Callers hold no lock on first use; later calls come through maybeCompact
// which holds j.mu.
func (j *journal) compact(live []*replayedJob) error {
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rj := range live {
		req := rj.req
		if err := enc.Encode(journalRecord{T: "job", Time: rj.created, ID: rj.id,
			Client: rj.client, Priority: rj.priority, Req: &req}); err != nil {
			f.Close()
			return err
		}
		for i, sp := range rj.completed {
			if err := enc.Encode(journalRecord{T: "spec", Time: rj.created, Job: rj.id,
				Index: i, Key: sp.key, Result: sp.res}); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	syncDir(j.path)
	if j.f != nil {
		j.f.Close()
	}
	af, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = af
	j.w = bufio.NewWriter(af)
	j.bytesSinceCompact = 0
	if j.m != nil {
		j.m.journalCompactions.Add(1)
	}
	return nil
}

// syncDir fsyncs the directory containing path, making a rename durable.
// Best effort: some filesystems refuse directory fsync.
func syncDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// append writes one record and flushes it to the OS (no fsync). Injected
// faults and real write errors are counted and returned; callers log and
// continue — a broken journal degrades the server to non-durable, it does
// not take it down.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(rec)
}

func (j *journal) appendLocked(rec journalRecord) error {
	if j.closed {
		return fmt.Errorf("journal closed")
	}
	if err := j.faults.beforeAppend(); err != nil {
		j.m.journalErrors.Add(1)
		return err
	}
	rec.Time = rec.Time.UTC()
	b, err := json.Marshal(rec)
	if err != nil {
		j.m.journalErrors.Add(1)
		return err
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.m.journalErrors.Add(1)
		return err
	}
	if err := j.w.Flush(); err != nil {
		j.m.journalErrors.Add(1)
		return err
	}
	j.m.journalAppends.Add(1)
	j.m.journalBytes.Add(int64(len(b)))
	j.bytesSinceCompact += int64(len(b))
	return nil
}

// appendSync appends and fsyncs — the job-boundary durability point.
func (j *journal) appendSync(rec journalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(rec); err != nil {
		return err
	}
	return j.syncLocked()
}

func (j *journal) sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *journal) syncLocked() error {
	if j.closed {
		return fmt.Errorf("journal closed")
	}
	if err := j.f.Sync(); err != nil {
		j.m.journalErrors.Add(1)
		return err
	}
	j.m.journalFsyncs.Add(1)
	return nil
}

// maybeCompact rewrites the journal when it has grown past maxBytes since
// the last compaction. live is the server's current non-terminal job state.
func (j *journal) maybeCompact(live []*replayedJob, maxBytes int64) error {
	if j == nil || maxBytes <= 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.bytesSinceCompact < maxBytes {
		return nil
	}
	if err := j.compact(live); err != nil {
		j.m.journalErrors.Add(1)
		return err
	}
	return nil
}

// close flushes, fsyncs, and closes the fd. crash (test/fault hook) skips
// the flush+fsync, modeling SIGKILL.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Sync(); err == nil {
		j.m.journalFsyncs.Add(1)
	}
	return j.f.Close()
}

func (j *journal) crash() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	_ = j.f.Close() // no flush, no fsync: what SIGKILL leaves behind
}
