package service

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// requiredSeries is the metrics contract: CI's scrape gate and dashboards
// key on these names existing from the first scrape.
var requiredSeries = []string{
	"aggrate_jobs_submitted_total",
	"aggrate_jobs_resumed_total",
	"aggrate_admission_rejected_total",
	"aggrate_specs_completed_total",
	"aggrate_journal_appends_total",
	"aggrate_journal_bytes_total",
	"aggrate_journal_fsyncs_total",
	"aggrate_journal_errors_total",
	"aggrate_journal_replayed_jobs_total",
	"aggrate_journal_replayed_specs_total",
	"aggrate_journal_compactions_total",
	"aggrate_cache_hits_total",
	"aggrate_cache_misses_total",
	"aggrate_cache_evictions_total",
	"aggrate_instance_cache_hits_total",
	"aggrate_instance_cache_misses_total",
	"aggrate_instance_cache_evictions_total",
	"aggrate_instance_cache_entries",
	"aggrate_sched_cache_hits_total",
	"aggrate_sched_cache_misses_total",
	"aggrate_queue_depth",
	"aggrate_queue_capacity",
	"aggrate_active_workers",
	"aggrate_jobs",
	"aggrate_cache_entries",
	"aggrate_cache_bytes",
	"aggrate_cache_capacity_bytes",
	"aggrate_stage_seconds",
	"aggrate_job_seconds",
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// checkExposition validates every sample line: "name{labels} value" with a
// parseable, non-NaN value.
func checkExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, val := line[:i], line[i+1:]
		if val == "NaN" || val == "-Inf" {
			t.Fatalf("series %s exposes %s", name, val)
		}
		if val == "+Inf" {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s has unparseable value %q", name, val)
		}
		samples[name] = f
	}
	return samples
}

// TestMetricsExposition: every contract series renders from the very first
// scrape (zeros included), values stay parseable, and the counters move as
// jobs run — computed specs, cache hits on resubmission, stage histograms.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Cold scrape: all series present before any job.
	text := scrape(t, ts.URL)
	for _, name := range requiredSeries {
		if !strings.Contains(text, "\n"+name) && !strings.HasPrefix(text, name) {
			t.Fatalf("cold /metrics missing series %s:\n%s", name, text)
		}
	}
	cold := checkExposition(t, text)
	if cold["aggrate_queue_capacity"] != 64 {
		t.Fatalf("queue capacity gauge %v, want 64", cold["aggrate_queue_capacity"])
	}

	// One computed run, one fully-cached rerun.
	st, code := postJob(t, ts, smallGrid)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitStatus(t, ts, st.ID, StatusDone, 30*time.Second)
	st2, _ := postJob(t, ts, smallGrid)
	waitStatus(t, ts, st2.ID, StatusDone, 30*time.Second)

	samples := checkExposition(t, scrape(t, ts.URL))
	checks := map[string]float64{
		"aggrate_jobs_submitted_total":                     2,
		`aggrate_specs_completed_total{source="computed"}`: 4,
		`aggrate_specs_completed_total{source="cache"}`:    4,
		`aggrate_jobs{state="done"}`:                       2,
		"aggrate_cache_hits_total":                         4,
		"aggrate_job_seconds_count":                        2,
	}
	for name, want := range checks {
		if got := samples[name]; got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
	// Stage histograms observed once per computed spec.
	for _, stage := range []string{"gen", "mst", "build", "order", "color", "verify"} {
		name := `aggrate_stage_seconds_count{stage="` + stage + `"}`
		if samples[name] != 4 {
			t.Fatalf("%s = %v, want 4", name, samples[name])
		}
	}
	if samples["aggrate_cache_entries"] != 4 || samples["aggrate_cache_bytes"] <= 0 {
		t.Fatalf("cache gauges: entries=%v bytes=%v",
			samples["aggrate_cache_entries"], samples["aggrate_cache_bytes"])
	}
}

// TestHistogramBuckets: cumulative bucket counts are monotone and _count
// equals the +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50, 0.05} {
		h.observe(v)
	}
	cum := int64(0)
	wantCum := []int64{2, 3, 4}
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum != wantCum[i] {
			t.Fatalf("bucket %d cumulative %d, want %d", i, cum, wantCum[i])
		}
	}
	if total := cum + h.counts[len(h.bounds)].Load(); total != h.count.Load() || total != 5 {
		t.Fatalf("count %d, +Inf cumulative %d, want 5", h.count.Load(), total)
	}
	if h.sum() < 55.59 || h.sum() > 55.61 {
		t.Fatalf("sum %v, want 55.6", h.sum())
	}
	// NaN and negatives are clamped, never exposed.
	h.observe(-3)
	if h.counts[0].Load() != 3 {
		t.Fatalf("negative observation not clamped into first bucket")
	}
}
