// Admission control: per-client token buckets, live-job quotas, and
// queue-pressure load shedding. Every rejection carries a machine-readable
// error code and a Retry-After derived from the actual state — the token
// refill time for rate limits, the queue drain rate for pressure — so
// well-behaved clients (aggrate loadtest among them) can back off precisely
// instead of hammering.
package service

import (
	"math"
	"sync"
	"time"
)

// Machine-readable error codes carried in the "code" field of error bodies.
const (
	CodeBadRequest   = "bad_request"
	CodeNotFound     = "not_found"
	CodeQueueFull    = "queue_full"
	CodeRateLimited  = "rate_limited"
	CodeQuota        = "quota"
	CodeShedLargeJob = "shed_large_job"
	CodeShuttingDown = "shutting_down"
)

// rateLimiter is a per-client token bucket: rate tokens/second refill up to
// burst. A zero rate disables it.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow takes one token for client; when none is available it reports the
// wait until the next token refills.
func (rl *rateLimiter) allow(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	if rl == nil {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[client]
	if b == nil {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[client] = b
	}
	b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rl.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// drainEstimator tracks an exponentially weighted moving average of job
// service time, turning queue depth into a Retry-After estimate.
type drainEstimator struct {
	mu   sync.Mutex
	ewma float64 // seconds per job; 0 = no observation yet
}

// observe records one completed job's wall-clock seconds.
func (d *drainEstimator) observe(sec float64) {
	if sec <= 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ewma == 0 {
		d.ewma = sec
	} else {
		d.ewma = 0.3*sec + 0.7*d.ewma
	}
}

// perJob returns the current estimate, defaulting to 2s before any job has
// completed.
func (d *drainEstimator) perJob() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ewma == 0 {
		return 2
	}
	return d.ewma
}

// retryAfter estimates how long until depth jobs ahead of a newcomer have
// drained, clamped to [1s, 300s] so headers stay sane under both an empty
// estimator and a pathological backlog.
func (d *drainEstimator) retryAfter(depth int) time.Duration {
	sec := d.perJob() * float64(depth+1)
	sec = math.Max(1, math.Min(300, math.Ceil(sec)))
	return time.Duration(sec) * time.Second
}
