// Package service exposes the experiment engine as a long-running HTTP JSON
// API — the serving layer in front of the cancellable, streaming pipeline:
//
//	POST   /v1/jobs             submit a spec grid (validated up front)
//	GET    /v1/jobs/{id}        job status, progress counts, completed results
//	GET    /v1/jobs/{id}/stream NDJSON of results as they complete
//	DELETE /v1/jobs/{id}        cancel via the engine's context plumbing
//	GET    /v1/healthz          liveness + queue/cache gauges
//
// Jobs enter a bounded queue (submission returns 503 when it is full) and
// execute one at a time; within a job, instances fan out over an
// experiment.Runner worker pool sized off experiment.Workers. Completed
// results land in an LRU cache keyed by experiment.SpecKey — the canonical
// hash of the normalized Spec — so a repeated spec (same scenario, n, seed,
// power, algo, γ configuration, …) is served without recomputation, marked
// cache_hit in every response that carries it.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"aggrate/internal/experiment"
	"aggrate/internal/scenario"
	"aggrate/internal/schedule"
	"aggrate/internal/scheduler"
	"aggrate/internal/sinr"
)

// Job lifecycle states.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusCancelled = "cancelled"
)

// Config shapes a Server.
type Config struct {
	// Workers is the per-job instance pool width, resolved through
	// experiment.Workers (<= 0 means GOMAXPROCS).
	Workers int
	// QueueSize bounds the job queue; submissions beyond it are rejected
	// with 503 rather than buffered without limit. Default 64.
	QueueSize int
	// CacheSize is the LRU result-cache capacity in specs. Default 4096.
	CacheSize int
	// MaxSpecs bounds the grid size of a single job. Default 10000.
	MaxSpecs int
	// MaxJobs bounds the job records kept in memory: when a submission
	// pushes the registry past it, the oldest *terminal* (done/cancelled)
	// jobs — and their result payloads — are evicted. Live jobs are never
	// evicted, so the registry can temporarily exceed the cap by the number
	// of queued+running jobs. Default 1024.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.MaxSpecs <= 0 {
		c.MaxSpecs = 10000
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// Server owns the job registry, the bounded queue, the executor goroutine,
// and the result cache. Create with New, serve via Handler, stop with Close.
type Server struct {
	cfg   Config
	cache *resultCache

	baseCtx context.Context
	cancel  context.CancelFunc
	queue   chan *job
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job ids in creation order, for terminal-job eviction
	seq    int
	closed bool
}

// New starts a Server (and its executor goroutine) with the given config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize),
		baseCtx: ctx,
		cancel:  cancel,
		queue:   make(chan *job, cfg.QueueSize),
		jobs:    make(map[string]*job),
	}
	s.wg.Add(1)
	go s.executor()
	return s
}

// Close cancels every job, stops accepting submissions, and waits for the
// executor to drain. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	close(s.queue)
	s.wg.Wait()
}

// job is one submitted grid and its execution state.
type job struct {
	id      string
	specs   []experiment.Spec
	keys    []string
	created time.Time
	ctx     context.Context
	cancel  context.CancelFunc

	mu        sync.Mutex
	status    string
	items     []StreamItem // completion order
	cacheHits int
	notify    chan struct{} // closed+replaced on every state change
}

// StreamItem is one completed instance as it appears on the stream and in
// the results array: the spec's position in the submitted grid, its cache
// key, whether it was served from cache, and the metric record.
type StreamItem struct {
	Index    int                `json:"index"`
	SpecKey  string             `json:"spec_key"`
	CacheHit bool               `json:"cache_hit"`
	Result   *experiment.Result `json:"result"`
}

// complete records one finished instance and wakes the streamers.
func (j *job) complete(i int, res *experiment.Result, hit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.items = append(j.items, StreamItem{Index: i, SpecKey: j.keys[i], CacheHit: hit, Result: res})
	if hit {
		j.cacheHits++
	}
	j.broadcast()
}

// broadcast wakes every waiter; callers hold j.mu.
func (j *job) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// terminal reports whether the job reached a final state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusCancelled
}

// snapshot returns the items at and past cursor, whether the job reached a
// terminal state, and the channel that closes on the next change.
func (j *job) snapshot(cursor int) ([]StreamItem, bool, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	terminal := j.status == StatusDone || j.status == StatusCancelled
	return j.items[cursor:], terminal, j.notify
}

// JobStatus is the GET /v1/jobs/{id} payload. Results are in completion
// order; Index maps each back to its position in the submitted grid.
type JobStatus struct {
	ID        string       `json:"id"`
	Status    string       `json:"status"`
	Total     int          `json:"total"`
	Completed int          `json:"completed"`
	CacheHits int          `json:"cache_hits"`
	CreatedAt time.Time    `json:"created_at"`
	Results   []StreamItem `json:"results,omitempty"`
}

func (j *job) statusPayload(withResults bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Status:    j.status,
		Total:     len(j.specs),
		Completed: len(j.items),
		CacheHits: j.cacheHits,
		CreatedAt: j.created,
	}
	if withResults {
		st.Results = append([]StreamItem(nil), j.items...)
	}
	return st
}

// JobRequest is the POST /v1/jobs payload: the same grid axes as the CLI's
// run subcommand. Zero values take the CLI defaults (uniform scenario
// excepted — Scenarios is required). Verify defaults to true; send false
// explicitly to skip SINR verification.
type JobRequest struct {
	Scenarios []string `json:"scenarios"`
	Ns        []int    `json:"ns"`
	Seeds     int      `json:"seeds"`
	Seed      uint64   `json:"seed"`
	Powers    []string `json:"powers"`
	Algos     []string `json:"algos"`
	Graph     string   `json:"graph"`
	Gamma     float64  `json:"gamma"`
	Delta     float64  `json:"delta"`
	Alpha     float64  `json:"alpha"`
	Beta      float64  `json:"beta"`
	Noise     float64  `json:"noise"`
	Verify    *bool    `json:"verify"`
	Engine    string   `json:"verify_engine"`
	// TimeoutSec, when positive, bounds the job's wall clock; on expiry the
	// job cancels like DELETE and keeps its completed prefix.
	TimeoutSec float64 `json:"timeout_sec"`
}

// specs validates the request and expands it into the instance grid. Every
// enum and range error is reported before any instance runs.
func (r *JobRequest) specs(maxSpecs int) ([]experiment.Spec, error) {
	if len(r.Scenarios) == 0 {
		return nil, fmt.Errorf("scenarios is required")
	}
	scList := make([]experiment.Scenario, 0, len(r.Scenarios))
	for _, name := range r.Scenarios {
		sc, err := scenario.Lookup(name)
		if err != nil {
			return nil, err
		}
		scList = append(scList, sc)
	}
	ns := r.Ns
	if len(ns) == 0 {
		ns = []int{1000}
	}
	for _, n := range ns {
		if n < 2 {
			return nil, fmt.Errorf("ns entries must be >= 2, got %d", n)
		}
	}
	powers := r.Powers
	if len(powers) == 0 {
		powers = []string{experiment.PowerMean}
	}
	for _, p := range powers {
		switch p {
		case experiment.PowerUniform, experiment.PowerMean, experiment.PowerLinear, experiment.PowerGlobal:
		default:
			return nil, fmt.Errorf("unknown power %q", p)
		}
	}
	algos := r.Algos
	if len(algos) == 0 {
		algos = []string{scheduler.Greedy}
	}
	for _, a := range algos {
		if _, err := scheduler.Lookup(a); err != nil {
			return nil, err
		}
	}
	graph := r.Graph
	if graph == "" {
		graph = experiment.GraphOblivious
	}
	switch graph {
	case experiment.GraphGamma, experiment.GraphOblivious, experiment.GraphArbitrary:
	default:
		return nil, fmt.Errorf("unknown graph %q", graph)
	}
	engine := r.Engine
	if engine == "" {
		engine = schedule.EngineFast
	}
	if engine != schedule.EngineFast && engine != schedule.EngineNaive {
		return nil, fmt.Errorf("unknown verify_engine %q", engine)
	}
	seeds := r.Seeds
	if seeds < 1 {
		seeds = 1
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	alpha, beta := r.Alpha, r.Beta
	if alpha == 0 {
		alpha = 3
	}
	if beta == 0 {
		beta = 2
	}
	verify := true
	if r.Verify != nil {
		verify = *r.Verify
	}
	base := experiment.Spec{
		Seed:         seed,
		Graph:        graph,
		Gamma:        r.Gamma,
		Delta:        r.Delta,
		SINR:         sinr.Params{Alpha: alpha, Beta: beta, Noise: r.Noise, Epsilon: 0.5},
		Verify:       verify,
		VerifyEngine: engine,
	}
	if err := base.SINR.Validate(); err != nil {
		return nil, err
	}
	if total := len(scList) * len(ns) * seeds * len(powers) * len(algos); total > maxSpecs {
		return nil, fmt.Errorf("grid expands to %d specs, server limit is %d", total, maxSpecs)
	}
	return experiment.Expand(scList, ns, seeds, powers, algos, base), nil
}

// Handler returns the /v1 route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // keep validation messages ('>= 2') readable
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	specs, err := req.specs(s.cfg.MaxSpecs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}
	keys := make([]string, len(specs))
	for i, sp := range specs {
		keys[i] = experiment.SpecKey(sp)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.seq++
	j := &job{
		id:      fmt.Sprintf("j%06d", s.seq),
		specs:   specs,
		keys:    keys,
		created: time.Now().UTC(),
		status:  StatusQueued,
		notify:  make(chan struct{}),
	}
	if req.TimeoutSec > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, time.Duration(req.TimeoutSec*float64(time.Second)))
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	// Enqueue while still holding s.mu: Close sets closed and closes the
	// queue under the same lock discipline, so a send can never race the
	// close. The send is non-blocking, so holding the lock is cheap.
	select {
	case s.queue <- j:
	default:
		// Bounded queue full: reject rather than buffer unboundedly.
		s.mu.Unlock()
		j.cancel()
		writeError(w, http.StatusServiceUnavailable, "job queue full (%d queued)", s.cfg.QueueSize)
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneJobs()
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, j.statusPayload(false))
}

// pruneJobs evicts the oldest terminal job records (and their result
// payloads) once the registry exceeds MaxJobs, so a long-running server's
// memory stays bounded by the cap plus the live jobs. Callers hold s.mu.
func (s *Server) pruneJobs() {
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if len(s.jobs) > s.cfg.MaxJobs && j.terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	withResults := r.URL.Query().Get("results") != "false"
	writeJSON(w, http.StatusOK, j.statusPayload(withResults))
}

// handleStream writes one NDJSON StreamItem per completed instance as it
// finishes, then a terminal line {"done":true,...}. A client disconnect
// stops the stream without affecting the job.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := 0
	for {
		items, terminal, notify := j.snapshot(cursor)
		for _, it := range items {
			if err := enc.Encode(it); err != nil {
				return
			}
		}
		cursor += len(items)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			st := j.statusPayload(false)
			_ = enc.Encode(map[string]any{
				"done": true, "status": st.Status,
				"completed": st.Completed, "total": st.Total, "cache_hits": st.CacheHits,
			})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.cancel()
	j.mu.Lock()
	// A queued job never reaches the executor's running transition, so its
	// terminal state is set here; a running one transitions when the runner
	// unwinds (within one chunk boundary of the cancel).
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.broadcast()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, j.statusPayload(false))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"jobs":          jobs,
		"queue_depth":   len(s.queue),
		"queue_size":    s.cfg.QueueSize,
		"cache_entries": s.cache.len(),
		"workers":       experiment.Workers(s.cfg.Workers, 1<<30),
	})
}

// executor drains the job queue, one job at a time: total engine
// parallelism stays bounded by the per-job worker pool regardless of how
// many jobs are queued.
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		j.mu.Lock()
		if j.status != StatusQueued { // cancelled while queued
			j.mu.Unlock()
			continue
		}
		j.status = StatusRunning
		j.broadcast()
		j.mu.Unlock()
		s.runJob(j)
	}
}

// runJob serves cache hits immediately, fans the misses out over the
// engine's streaming Runner, and stores fresh successes back in the cache.
func (s *Server) runJob(j *job) {
	defer j.cancel() // release the timeout timer, if any
	var missIdx []int
	for i := range j.specs {
		if res, ok := s.cache.get(j.keys[i]); ok {
			j.complete(i, res, true)
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) > 0 && j.ctx.Err() == nil {
		miss := make([]experiment.Spec, len(missIdx))
		for k, i := range missIdx {
			miss[k] = j.specs[i]
		}
		runner := experiment.Runner{Workers: s.cfg.Workers, Sink: func(k int, r *experiment.Result) {
			i := missIdx[k]
			if r.Err == "" {
				s.cache.add(j.keys[i], r)
			}
			j.complete(i, r, false)
		}}
		_, _ = runner.Run(j.ctx, miss)
	}
	j.mu.Lock()
	if j.ctx.Err() != nil {
		j.status = StatusCancelled
	} else {
		j.status = StatusDone
	}
	j.broadcast()
	j.mu.Unlock()
}
