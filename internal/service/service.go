// Package service exposes the experiment engine as a long-running HTTP JSON
// API — the serving layer in front of the cancellable, streaming pipeline:
//
//	POST   /v1/jobs             submit a spec grid (validated up front)
//	GET    /v1/jobs/{id}        job status, progress, events, completed results
//	GET    /v1/jobs/{id}/stream NDJSON of events and results as they happen
//	DELETE /v1/jobs/{id}        cancel via the engine's context plumbing
//	GET    /v1/healthz          liveness + queue/cache/journal gauges
//	GET    /metrics             Prometheus text exposition (see metrics.go)
//
// Jobs enter a bounded priority queue and execute one at a time; within a
// job, instances fan out over an experiment.Runner worker pool. Completed
// results land in a byte-budgeted LRU cache keyed by experiment.SpecKey, so
// a repeated spec is served without recomputation.
//
// Durability: with Config.JournalPath set, every accepted job, completed
// spec, and terminal transition is appended to an NDJSON write-ahead log
// (journal.go). A restarted server replays the journal, re-enqueues the
// jobs that were queued or in flight, serves their already-completed specs
// out of the journal (source "journal", no recompute), and runs only the
// remainder — so a kill -9 mid-grid costs the specs in flight at the
// moment of death, nothing more.
//
// Admission: per-client (X-API-Key) token-bucket rate limits and live-job
// quotas, job priorities, and queue-pressure shedding of large grids. Every
// rejection is a 429/503 with a machine-readable "code" and a Retry-After
// derived from the limiter or the measured queue drain rate (admission.go).
package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aggrate/internal/experiment"
	"aggrate/internal/scenario"
	"aggrate/internal/schedule"
	"aggrate/internal/scheduler"
	"aggrate/internal/sinr"
)

// Job lifecycle states.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusCancelled = "cancelled"
	// StatusInterrupted marks a job the server shut down under: its completed
	// prefix is durable and a restart on the same journal resumes it from
	// the last completed spec.
	StatusInterrupted = "interrupted"
)

// Result sources carried in StreamItem.Source.
const (
	SourceComputed = "computed"
	SourceCache    = "cache"
	SourceJournal  = "journal"
)

// Config shapes a Server.
type Config struct {
	// Workers is the per-job instance pool width, resolved through
	// experiment.Workers (<= 0 means GOMAXPROCS).
	Workers int
	// QueueSize bounds the job queue; submissions beyond it are rejected
	// with 503 rather than buffered without limit. Default 64.
	QueueSize int
	// CacheSize is the LRU result-cache capacity in specs. Default 4096.
	CacheSize int
	// CacheBytes is the LRU capacity in approximate encoded bytes; entries
	// are evicted when either bound is exceeded. Default 256 MiB.
	CacheBytes int64
	// InstanceCacheSize bounds the server-wide stage-split instance cache
	// (experiment.DeployCache) in deployments: specs sharing a deployment
	// prefix (scenario, n, seed) reuse one generation + EMST + lookahead
	// build across jobs. Negative disables the cache; 0 means
	// experiment.DefaultDeployCacheEntries.
	InstanceCacheSize int
	// MaxSpecs bounds the grid size of a single job. Default 10000.
	MaxSpecs int
	// MaxJobs bounds the job records kept in memory: when a submission
	// pushes the registry past it, the oldest *terminal* jobs — and their
	// result payloads — are evicted. Live jobs are never evicted. Default
	// 1024.
	MaxJobs int
	// JournalPath, when set, enables the durable job journal at this path.
	JournalPath string
	// JournalMaxBytes triggers a compaction rewrite once the journal grows
	// past it (checked at job boundaries). Default 64 MiB.
	JournalMaxBytes int64
	// RateLimit, when positive, is the per-client token-bucket refill rate
	// in submissions/second; RateBurst is the bucket depth (default
	// max(1, ceil(RateLimit))). Exceeding it returns 429 + Retry-After.
	RateLimit float64
	RateBurst int
	// MaxJobsPerClient, when positive, caps a client's live (queued or
	// running) jobs; exceeding it returns 429 + Retry-After.
	MaxJobsPerClient int
	// ShedWatermark is the queue-depth fraction past which large grids are
	// shed (503) while small ones are still admitted. Default 0.75.
	ShedWatermark float64
	// ShedMaxSpecs is the largest grid admitted while shedding. Default 64.
	ShedMaxSpecs int
	// Faults is the injectable fault layer; zero means no faults.
	Faults Faults
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxSpecs <= 0 {
		c.MaxSpecs = 10000
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.JournalMaxBytes <= 0 {
		c.JournalMaxBytes = 64 << 20
	}
	if c.ShedWatermark <= 0 || c.ShedWatermark > 1 {
		c.ShedWatermark = 0.75
	}
	if c.ShedMaxSpecs <= 0 {
		c.ShedMaxSpecs = 64
	}
	return c
}

// Server owns the job registry, the bounded priority queue, the executor
// goroutine, the result cache, the journal, and the metrics. Create with
// New, serve via Handler, stop with Shutdown (graceful) or Close (hard).
type Server struct {
	cfg      Config
	cache    *resultCache
	deploy   *experiment.DeployCache
	metrics  *metrics
	journal  *journal
	limiter  *rateLimiter
	drainEst *drainEstimator
	faults   *faultState

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	activeWorkers atomic.Int64

	mu           sync.Mutex
	cond         *sync.Cond
	pending      jobHeap
	jobs         map[string]*job
	order        []string // job ids in creation order, for terminal-job eviction
	liveByClient map[string]int
	seq          int
	closed       bool
	running      *job
}

// New starts a Server (and its executor goroutine) with the given config.
// With a JournalPath configured it first replays the journal: terminal jobs
// seed the result cache, live ones are re-enqueued to resume. The only
// error paths are journal open/replay failures.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		cache:        newResultCache(cfg.CacheSize, cfg.CacheBytes),
		deploy:       newDeployCache(cfg.InstanceCacheSize),
		metrics:      newMetrics(),
		limiter:      newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		drainEst:     &drainEstimator{},
		faults:       &faultState{Faults: cfg.Faults},
		baseCtx:      ctx,
		cancel:       cancel,
		jobs:         make(map[string]*job),
		liveByClient: make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.JournalPath != "" {
		jl, replayed, err := openJournal(cfg.JournalPath, s.faults, s.metrics)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = jl
		s.resume(replayed)
	}
	s.registerGauges()
	s.wg.Add(1)
	go s.executor()
	return s, nil
}

// resume seeds the cache from every replayed spec and re-enqueues the
// non-terminal jobs, already-completed specs pre-populated from the journal.
func (s *Server) resume(replayed []*replayedJob) {
	for _, rj := range replayed {
		if n := jobSeq(rj.id); n > s.seq {
			s.seq = n
		}
		for _, sp := range rj.completed {
			if sp.key != "" && sp.res != nil && sp.res.Err == "" {
				s.cache.add(sp.key, sp.res)
			}
		}
		if rj.terminal() {
			continue
		}
		specs, err := rj.req.specs(s.cfg.MaxSpecs)
		if err != nil {
			// A journal from a stricter config (or a corrupted req): the job
			// cannot be re-expanded. Count it and move on — the journal is a
			// recovery aid, not a reason to refuse to start.
			s.metrics.journalErrors.Add(1)
			continue
		}
		keys := make([]string, len(specs))
		for i, sp := range specs {
			keys[i] = experiment.SpecKey(sp)
		}
		j := s.newJob(rj.id, rj.client, rj.priority, rj.created, rj.req, specs, keys)
		j.resumed = true
		j.addEventLocked("submitted", "")
		j.addEventLocked("resumed", fmt.Sprintf("%d/%d specs from journal", len(rj.completed), len(specs)))
		for i := range specs {
			sp, ok := rj.completed[i]
			if !ok {
				continue
			}
			j.done[i] = true
			j.replayed++
			it := StreamItem{Index: i, SpecKey: keys[i], Source: SourceJournal, Result: sp.res}
			j.items = append(j.items, it)
			j.stream = append(j.stream, it)
			s.metrics.journalReplayedSpecs.Add(1)
			s.metrics.specsCompleted.add(SourceJournal, 1)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.liveByClient[j.client]++
		heap.Push(&s.pending, j)
		s.metrics.jobsResumed.Add(1)
		s.metrics.journalReplayedJobs.Add(1)
	}
}

// jobSeq parses the numeric suffix of a job id ("j000042" -> 42); 0 when
// malformed.
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}

func (s *Server) registerGauges() {
	m := s.metrics
	m.registerGauge("aggrate_queue_depth", "", "Jobs waiting in the bounded queue.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.pending))
	})
	m.registerGauge("aggrate_queue_capacity", "", "Bounded queue size.", func() float64 {
		return float64(s.cfg.QueueSize)
	})
	m.registerGauge("aggrate_active_workers", "", "Engine workers currently executing specs.", func() float64 {
		return float64(s.activeWorkers.Load())
	})
	for _, state := range []string{StatusQueued, StatusRunning, StatusDone, StatusCancelled, StatusInterrupted} {
		state := state
		m.registerGauge("aggrate_jobs", fmt.Sprintf("{state=%q}", state),
			"Jobs in the registry by current state.", func() float64 {
				s.mu.Lock()
				ids := make([]*job, 0, len(s.jobs))
				for _, j := range s.jobs {
					ids = append(ids, j)
				}
				s.mu.Unlock()
				n := 0
				for _, j := range ids {
					if j.curStatus() == state {
						n++
					}
				}
				return float64(n)
			})
	}
	m.registerGauge("aggrate_cache_entries", "", "Live result-cache entries.", func() float64 {
		return float64(s.cache.len())
	})
	m.registerGauge("aggrate_cache_bytes", "", "Approximate encoded bytes held by the result cache.", func() float64 {
		return float64(s.cache.sizeBytes())
	})
	m.registerGauge("aggrate_cache_capacity_bytes", "", "Result-cache byte budget.", func() float64 {
		return float64(s.cfg.CacheBytes)
	})
	m.registerCounter("aggrate_cache_hits_total", "", "Result-cache hits.", func() float64 {
		return float64(s.cache.hits.Load())
	})
	m.registerCounter("aggrate_cache_misses_total", "", "Result-cache misses.", func() float64 {
		return float64(s.cache.misses.Load())
	})
	m.registerCounter("aggrate_cache_evictions_total", "", "Result-cache evictions.", func() float64 {
		return float64(s.cache.evictions.Load())
	})
	m.registerCounter("aggrate_instance_cache_hits_total", "", "Stage-split instance-cache hits (deployments reused across specs).", func() float64 {
		h, _, _ := s.deploy.Stats()
		return float64(h)
	})
	m.registerCounter("aggrate_instance_cache_misses_total", "", "Stage-split instance-cache misses (deployments built).", func() float64 {
		_, mi, _ := s.deploy.Stats()
		return float64(mi)
	})
	m.registerCounter("aggrate_instance_cache_evictions_total", "", "Stage-split instance-cache evictions.", func() float64 {
		_, _, ev := s.deploy.Stats()
		return float64(ev)
	})
	m.registerGauge("aggrate_instance_cache_entries", "", "Deployments held by the stage-split instance cache.", func() float64 {
		return float64(s.deploy.Len())
	})
	m.registerCounter("aggrate_sched_cache_hits_total", "", "Pre-power schedule-stage cache hits (ordering+coloring builds reused across power schemes and gamma rungs).", func() float64 {
		h, _ := s.deploy.SchedStats()
		return float64(h)
	})
	m.registerCounter("aggrate_sched_cache_misses_total", "", "Pre-power schedule-stage cache misses (stage builds run).", func() float64 {
		_, mi := s.deploy.SchedStats()
		return float64(mi)
	})
}

// newDeployCache resolves the InstanceCacheSize config: negative disables
// the cache (every spec deploys cold), zero takes the experiment default.
func newDeployCache(size int) *experiment.DeployCache {
	if size < 0 {
		return nil
	}
	return experiment.NewDeployCache(size)
}

// Close hard-stops the server: every live job is cancelled immediately,
// marked interrupted in the journal, and the journal is fsynced and closed.
// Safe to call more than once.
func (s *Server) Close() {
	s.stop(context.Background(), false)
}

// Shutdown drains gracefully: submissions stop, queued jobs are marked
// interrupted, and the running job stops at its next spec boundary —
// in-flight instances run to completion and their results are journaled.
// ctx bounds the drain; on expiry the running job is hard-cancelled. Either
// way the journal is flushed, fsynced, and closed before return.
func (s *Server) Shutdown(ctx context.Context) {
	s.stop(ctx, true)
}

func (s *Server) stop(ctx context.Context, graceful bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var queued []*job
	for len(s.pending) > 0 {
		queued = append(queued, heap.Pop(&s.pending).(*job))
	}
	running := s.running
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, j := range queued {
		j.interrupted.Store(true)
		j.cancel()
		s.finish(j, StatusInterrupted)
	}
	if running != nil {
		running.interrupted.Store(true)
		if graceful {
			running.drainCancel()
		} else {
			running.cancel()
		}
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel() // drain deadline expired: hard-cancel the straggler
		<-done
	}
	s.cancel()
	_ = s.journal.close()
}

// Crash simulates kill -9 for recovery drills and tests: the journal fd is
// closed without flush or fsync and every goroutine is torn down with no
// terminal journaling — exactly the state a killed process leaves behind.
// The in-memory registry is NOT trustworthy afterwards; a new Server on the
// same journal path is the way to observe the outcome.
func (s *Server) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.journal.crash() // before cancel: post-crash appends must not land
	s.cancel()
	s.wg.Wait()
}

// job is one submitted grid and its execution state.
type job struct {
	id       string
	client   string
	priority int
	seq      int
	specs    []experiment.Spec
	keys     []string
	req      JobRequest
	created  time.Time
	resumed  bool

	ctx         context.Context
	cancel      context.CancelFunc
	drainCtx    context.Context
	drainCancel context.CancelFunc
	interrupted atomic.Bool
	startedAt   time.Time

	mu        sync.Mutex
	status    string
	items     []StreamItem // completion order
	stream    []any        // merged StreamItem + JobEvent lines, stream order
	done      map[int]bool // spec indices with a result
	cacheHits int
	replayed  int
	events    []JobEvent
	notify    chan struct{} // closed+replaced on every state change
}

// JobEvent is one entry of a job's lifecycle trace: submitted, resumed,
// running, done, cancelled, interrupted. Events ride along in the status
// payload and interleave with results on the NDJSON stream.
type JobEvent struct {
	Time   time.Time `json:"time"`
	Event  string    `json:"event"`
	Detail string    `json:"detail,omitempty"`
}

// StreamItem is one completed instance as it appears on the stream and in
// the results array: the spec's position in the submitted grid, its cache
// key, where the result came from (computed, cache, journal), and the
// metric record. CacheHit is Source == "cache", kept for compatibility.
type StreamItem struct {
	Index    int                `json:"index"`
	SpecKey  string             `json:"spec_key"`
	CacheHit bool               `json:"cache_hit"`
	Source   string             `json:"source,omitempty"`
	Result   *experiment.Result `json:"result"`
}

func (s *Server) newJob(id, client string, priority int, created time.Time,
	req JobRequest, specs []experiment.Spec, keys []string) *job {
	j := &job{
		id: id, client: client, priority: priority, seq: jobSeq(id),
		specs: specs, keys: keys, req: req, created: created,
		status: StatusQueued,
		done:   make(map[int]bool),
		notify: make(chan struct{}),
	}
	if req.TimeoutSec > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, time.Duration(req.TimeoutSec*float64(time.Second)))
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	j.drainCtx, j.drainCancel = context.WithCancel(context.Background())
	return j
}

// complete records one finished instance and wakes the streamers.
func (j *job) complete(i int, res *experiment.Result, source string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	it := StreamItem{Index: i, SpecKey: j.keys[i], CacheHit: source == SourceCache, Source: source, Result: res}
	j.items = append(j.items, it)
	j.stream = append(j.stream, it)
	j.done[i] = true
	switch source {
	case SourceCache:
		j.cacheHits++
	case SourceJournal:
		j.replayed++
	}
	j.broadcast()
}

// addEventLocked appends a lifecycle event to the trace and the stream.
// Callers hold j.mu (or own the job exclusively during construction).
func (j *job) addEventLocked(event, detail string) {
	ev := JobEvent{Time: time.Now().UTC(), Event: event, Detail: detail}
	j.events = append(j.events, ev)
	j.stream = append(j.stream, ev)
}

// broadcast wakes every waiter; callers hold j.mu.
func (j *job) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

func statusTerminal(status string) bool {
	return status == StatusDone || status == StatusCancelled || status == StatusInterrupted
}

// terminal reports whether the job reached a final state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return statusTerminal(j.status)
}

func (j *job) curStatus() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *job) completedCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// snapshot returns the stream lines at and past cursor, whether the job
// reached a terminal state, and the channel that closes on the next change.
func (j *job) snapshot(cursor int) ([]any, bool, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stream[cursor:], statusTerminal(j.status), j.notify
}

// jobHeap orders pending jobs by priority (higher first), then submission
// sequence (earlier first).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// JobStatus is the GET /v1/jobs/{id} payload. Results are in completion
// order; Index maps each back to its position in the submitted grid.
type JobStatus struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	CacheHits int    `json:"cache_hits"`
	// Replayed counts specs served from the journal after a restart.
	Replayed  int          `json:"journal_replayed,omitempty"`
	Priority  int          `json:"priority,omitempty"`
	Resumed   bool         `json:"resumed,omitempty"`
	CreatedAt time.Time    `json:"created_at"`
	Events    []JobEvent   `json:"events,omitempty"`
	Results   []StreamItem `json:"results,omitempty"`
}

func (j *job) statusPayload(withResults bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Status:    j.status,
		Total:     len(j.specs),
		Completed: len(j.items),
		CacheHits: j.cacheHits,
		Replayed:  j.replayed,
		Priority:  j.priority,
		Resumed:   j.resumed,
		CreatedAt: j.created,
		Events:    append([]JobEvent(nil), j.events...),
	}
	if withResults {
		st.Results = append([]StreamItem(nil), j.items...)
	}
	return st
}

// JobRequest is the POST /v1/jobs payload: the same grid axes as the CLI's
// run subcommand. Zero values take the CLI defaults (uniform scenario
// excepted — Scenarios is required). Verify defaults to true; send false
// explicitly to skip SINR verification. Priority orders the queue (higher
// first, same-priority FIFO; clamped to [-100, 100]).
type JobRequest struct {
	Scenarios []string `json:"scenarios"`
	Ns        []int    `json:"ns"`
	Seeds     int      `json:"seeds"`
	Seed      uint64   `json:"seed"`
	Powers    []string `json:"powers"`
	Algos     []string `json:"algos"`
	Graph     string   `json:"graph"`
	Gamma     float64  `json:"gamma"`
	Delta     float64  `json:"delta"`
	Alpha     float64  `json:"alpha"`
	Beta      float64  `json:"beta"`
	Noise     float64  `json:"noise"`
	Verify    *bool    `json:"verify"`
	Engine    string   `json:"verify_engine"`
	Priority  int      `json:"priority"`
	// TimeoutSec, when positive, bounds the job's wall clock; on expiry the
	// job cancels like DELETE and keeps its completed prefix.
	TimeoutSec float64 `json:"timeout_sec"`
}

// specs validates the request and expands it into the instance grid. Every
// enum and range error is reported before any instance runs.
func (r *JobRequest) specs(maxSpecs int) ([]experiment.Spec, error) {
	if len(r.Scenarios) == 0 {
		return nil, fmt.Errorf("scenarios is required")
	}
	scList := make([]experiment.Scenario, 0, len(r.Scenarios))
	for _, name := range r.Scenarios {
		sc, err := scenario.Lookup(name)
		if err != nil {
			return nil, err
		}
		scList = append(scList, sc)
	}
	ns := r.Ns
	if len(ns) == 0 {
		ns = []int{1000}
	}
	for _, n := range ns {
		if n < 2 {
			return nil, fmt.Errorf("ns entries must be >= 2, got %d", n)
		}
	}
	powers := r.Powers
	if len(powers) == 0 {
		powers = []string{experiment.PowerMean}
	}
	for _, p := range powers {
		switch p {
		case experiment.PowerUniform, experiment.PowerMean, experiment.PowerLinear, experiment.PowerGlobal:
		default:
			return nil, fmt.Errorf("unknown power %q", p)
		}
	}
	algos := r.Algos
	if len(algos) == 0 {
		algos = []string{scheduler.Greedy}
	}
	for _, a := range algos {
		if _, err := scheduler.Lookup(a); err != nil {
			return nil, err
		}
	}
	graph := r.Graph
	if graph == "" {
		graph = experiment.GraphOblivious
	}
	switch graph {
	case experiment.GraphGamma, experiment.GraphOblivious, experiment.GraphArbitrary:
	default:
		return nil, fmt.Errorf("unknown graph %q", graph)
	}
	engine := r.Engine
	if engine == "" {
		engine = schedule.EngineFast
	}
	if engine != schedule.EngineFast && engine != schedule.EngineNaive {
		return nil, fmt.Errorf("unknown verify_engine %q", engine)
	}
	if r.Priority < -100 || r.Priority > 100 {
		return nil, fmt.Errorf("priority %d out of range [-100, 100]", r.Priority)
	}
	seeds := r.Seeds
	if seeds < 1 {
		seeds = 1
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	alpha, beta := r.Alpha, r.Beta
	if alpha == 0 {
		alpha = 3
	}
	if beta == 0 {
		beta = 2
	}
	verify := true
	if r.Verify != nil {
		verify = *r.Verify
	}
	base := experiment.Spec{
		Seed:         seed,
		Graph:        graph,
		Gamma:        r.Gamma,
		Delta:        r.Delta,
		SINR:         sinr.Params{Alpha: alpha, Beta: beta, Noise: r.Noise, Epsilon: 0.5},
		Verify:       verify,
		VerifyEngine: engine,
	}
	if err := base.SINR.Validate(); err != nil {
		return nil, err
	}
	if total := len(scList) * len(ns) * seeds * len(powers) * len(algos); total > maxSpecs {
		return nil, fmt.Errorf("grid expands to %d specs, server limit is %d", total, maxSpecs)
	}
	return experiment.Expand(scList, ns, seeds, powers, algos, base), nil
}

// Handler returns the route multiplexer: the /v1 API plus /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.metrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // keep validation messages ('>= 2') readable
	_ = enc.Encode(v)
}

// writeError emits the error body: a human-readable message plus the
// machine-readable code (admission.go's Code* constants).
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]string{
		"error": fmt.Sprintf(format, args...),
		"code":  code,
	})
}

// writeRetryError is writeError with a Retry-After header (whole seconds,
// minimum 1 — the header's resolution).
func writeRetryError(w http.ResponseWriter, status int, code string, retryAfter time.Duration, format string, args ...any) {
	sec := int(retryAfter.Seconds() + 0.5)
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	writeError(w, status, code, format, args...)
}

// clientKey identifies the submitter for rate limits and quotas: the
// X-API-Key header, or "anonymous".
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return "anonymous"
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	specs, err := req.specs(s.cfg.MaxSpecs)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid job: %v", err)
		return
	}
	keys := make([]string, len(specs))
	for i, sp := range specs {
		keys[i] = experiment.SpecKey(sp)
	}
	client := clientKey(r)
	if ok, retry := s.limiter.allow(client, time.Now()); !ok {
		s.metrics.rejections.add("rate_limited", 1)
		writeRetryError(w, http.StatusTooManyRequests, CodeRateLimited, retry,
			"rate limit exceeded for client %q (%.3g jobs/sec)", client, s.cfg.RateLimit)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.rejections.add("shutting_down", 1)
		writeError(w, http.StatusServiceUnavailable, CodeShuttingDown, "server is shutting down")
		return
	}
	depth := len(s.pending)
	if s.cfg.MaxJobsPerClient > 0 && s.liveByClient[client] >= s.cfg.MaxJobsPerClient {
		s.mu.Unlock()
		s.metrics.rejections.add("quota", 1)
		writeRetryError(w, http.StatusTooManyRequests, CodeQuota, s.drainEst.retryAfter(depth),
			"client %q already has %d live jobs (limit %d)", client, s.cfg.MaxJobsPerClient, s.cfg.MaxJobsPerClient)
		return
	}
	if depth >= s.cfg.QueueSize {
		s.mu.Unlock()
		s.metrics.rejections.add("queue_full", 1)
		writeRetryError(w, http.StatusServiceUnavailable, CodeQueueFull, s.drainEst.retryAfter(depth),
			"job queue full (%d queued)", depth)
		return
	}
	if float64(depth) >= s.cfg.ShedWatermark*float64(s.cfg.QueueSize) && len(specs) > s.cfg.ShedMaxSpecs {
		s.mu.Unlock()
		s.metrics.rejections.add("shed_large_job", 1)
		writeRetryError(w, http.StatusServiceUnavailable, CodeShedLargeJob, s.drainEst.retryAfter(depth),
			"shedding large jobs under queue pressure (depth %d/%d): grid of %d specs exceeds the shed limit %d",
			depth, s.cfg.QueueSize, len(specs), s.cfg.ShedMaxSpecs)
		return
	}
	s.seq++
	j := s.newJob(fmt.Sprintf("j%06d", s.seq), client, req.Priority, time.Now().UTC(), req, specs, keys)
	j.addEventLocked("submitted", "")
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.liveByClient[client]++
	// Journal the acceptance (fsync: a job boundary) before the job becomes
	// runnable — the executor must never journal a spec record the replay
	// would drop for want of its job record. The fsync happens under s.mu;
	// submissions are the slow path here by design.
	reqCopy := req
	if err := s.journal.appendSync(journalRecord{T: "job", Time: j.created, ID: j.id,
		Client: client, Priority: j.priority, Req: &reqCopy}); err != nil {
		// Journal failure degrades durability, not availability; the error
		// counter and log line are the operator's signal.
		fmt.Printf("aggrate service: journal: %v\n", err)
	}
	heap.Push(&s.pending, j)
	s.pruneJobs()
	s.cond.Signal()
	s.mu.Unlock()

	s.metrics.jobsSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, j.statusPayload(false))
}

// pruneJobs evicts the oldest terminal job records (and their result
// payloads) once the registry exceeds MaxJobs, so a long-running server's
// memory stays bounded by the cap plus the live jobs. Callers hold s.mu.
func (s *Server) pruneJobs() {
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if len(s.jobs) > s.cfg.MaxJobs && j.terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	withResults := r.URL.Query().Get("results") != "false"
	writeJSON(w, http.StatusOK, j.statusPayload(withResults))
}

// handleStream writes the job's NDJSON trace as it grows: one line per
// lifecycle event ({"time":...,"event":...}) and one per completed instance
// (StreamItem), then a terminal {"done":true,...} line. A client disconnect
// stops the stream without affecting the job.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := 0
	for {
		lines, terminal, notify := j.snapshot(cursor)
		for _, it := range lines {
			if err := enc.Encode(it); err != nil {
				return
			}
		}
		cursor += len(lines)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			st := j.statusPayload(false)
			_ = enc.Encode(map[string]any{
				"done": true, "status": st.Status,
				"completed": st.Completed, "total": st.Total, "cache_hits": st.CacheHits,
			})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.cancel()
	// A queued job never reaches the executor's running transition, so its
	// terminal state is set here; a running one transitions when the runner
	// unwinds (within one chunk boundary of the cancel).
	if j.curStatus() == StatusQueued {
		s.finish(j, StatusCancelled)
	}
	writeJSON(w, http.StatusOK, j.statusPayload(false))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	depth := len(s.pending)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"jobs":          jobs,
		"queue_depth":   depth,
		"queue_size":    s.cfg.QueueSize,
		"cache_entries": s.cache.len(),
		"cache_bytes":   s.cache.sizeBytes(),
		"journal":       s.cfg.JournalPath,
		"workers":       experiment.Workers(s.cfg.Workers, 1<<30),
	})
}

// finish transitions j to a terminal status (first caller wins), records
// the event, journals and fsyncs the transition, feeds the drain estimator,
// and releases the client's quota slot.
func (s *Server) finish(j *job, status string) {
	j.mu.Lock()
	if statusTerminal(j.status) {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.addEventLocked(status, "")
	j.broadcast()
	j.mu.Unlock()

	_ = s.journal.appendSync(journalRecord{T: "status", Time: time.Now().UTC(), Job: j.id, Status: status})
	if !j.startedAt.IsZero() {
		s.drainEst.observe(time.Since(j.startedAt).Seconds())
	}
	s.metrics.jobSeconds.observe(time.Since(j.created).Seconds())
	s.mu.Lock()
	if s.liveByClient[j.client] > 1 {
		s.liveByClient[j.client]--
	} else {
		delete(s.liveByClient, j.client)
	}
	s.mu.Unlock()
}

// executor drains the priority queue, one job at a time: total engine
// parallelism stays bounded by the per-job worker pool regardless of how
// many jobs are queued.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.pending).(*job)
		s.running = j
		s.mu.Unlock()

		j.mu.Lock()
		claimed := j.status == StatusQueued
		if claimed {
			j.status = StatusRunning
			j.startedAt = time.Now()
			j.addEventLocked("running", "")
			j.broadcast()
		}
		j.mu.Unlock()
		if claimed {
			s.runJob(j)
		}

		s.mu.Lock()
		s.running = nil
		s.mu.Unlock()
	}
}

// journalSpec appends one completed spec to the journal (flush, no fsync —
// the job-boundary sync bounds the loss window).
func (s *Server) journalSpec(j *job, i int, res *experiment.Result) {
	_ = s.journal.append(journalRecord{T: "spec", Time: time.Now().UTC(),
		Job: j.id, Index: i, Key: j.keys[i], Result: res})
}

// runJob serves journal-replayed specs as already done, cache hits
// immediately, fans the misses out over the engine's streaming Runner, and
// stores fresh successes back in the cache. Every completion is journaled;
// the terminal transition is journaled with an fsync.
func (s *Server) runJob(j *job) {
	defer j.cancel() // release the timeout timer, if any
	var missIdx []int
	for i := range j.specs {
		j.mu.Lock()
		already := j.done[i]
		j.mu.Unlock()
		if already { // replayed from the journal at startup
			continue
		}
		if res, ok := s.cache.get(j.keys[i]); ok {
			j.complete(i, res, SourceCache)
			s.metrics.specsCompleted.add(SourceCache, 1)
			s.journalSpec(j, i, res)
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) > 0 && j.ctx.Err() == nil && j.drainCtx.Err() == nil {
		miss := make([]experiment.Spec, len(missIdx))
		for k, i := range missIdx {
			miss[k] = j.specs[i]
			if s.deploy == nil {
				// Instance cache disabled by config: opt every spec out so the
				// runner's per-batch fallback cache stays unused too.
				miss[k].NoInstanceCache = true
			}
		}
		s.activeWorkers.Store(int64(experiment.Workers(s.cfg.Workers, len(miss))))
		runner := experiment.Runner{Workers: s.cfg.Workers, Deploy: s.deploy, Drain: j.drainCtx, Sink: func(k int, r *experiment.Result) {
			i := missIdx[k]
			if r.Err == "" {
				s.cache.add(j.keys[i], r)
			}
			j.complete(i, r, SourceComputed)
			s.metrics.specsCompleted.add(SourceComputed, 1)
			for _, st := range r.Timings.StageSeconds() {
				s.metrics.stageSeconds.observe(st.Stage, st.Sec)
			}
			s.journalSpec(j, i, r)
			s.faults.onSpecDone()
		}}
		_, _ = runner.Run(j.ctx, miss)
		s.activeWorkers.Store(0)
	}
	var status string
	switch {
	case j.completedCount() == len(j.specs):
		status = StatusDone
	case j.ctx.Err() != nil && !j.interrupted.Load():
		status = StatusCancelled
	default:
		// The drain context stopped the runner at a spec boundary, or the
		// shutdown path hard-cancelled us: either way the completed prefix is
		// durable and a restart resumes from it.
		status = StatusInterrupted
	}
	s.finish(j, status)
	_ = s.journal.maybeCompact(s.liveReplayState(), s.cfg.JournalMaxBytes)
}

// liveReplayState snapshots every non-terminal job in journal-replay form —
// the input to a size-triggered compaction.
func (s *Server) liveReplayState() []*replayedJob {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	byID := make(map[string]*job, len(s.jobs))
	for id, j := range s.jobs {
		byID[id] = j
	}
	s.mu.Unlock()
	var out []*replayedJob
	for _, id := range ids {
		j := byID[id]
		if j == nil || j.terminal() {
			continue
		}
		rj := &replayedJob{
			id: j.id, client: j.client, priority: j.priority,
			created: j.created, req: j.req, status: StatusQueued,
			completed: make(map[int]replayedSpec),
		}
		j.mu.Lock()
		for _, it := range j.items {
			rj.completed[it.Index] = replayedSpec{key: it.SpecKey, res: it.Result}
		}
		j.mu.Unlock()
		out = append(out, rj)
	}
	return out
}
