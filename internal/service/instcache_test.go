package service

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

// TestInstanceCacheAcrossJobs: the deployment-build cache is one shared
// structure across jobs — a later job scheduling a different algorithm on a
// deployment an earlier job built reuses it, fully result-cached reruns
// never touch it, and the /metrics series track every transition.
func TestInstanceCacheAcrossJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// Job 1: two algorithms on one deployment — one build, one reuse.
	job1 := `{"scenarios":["uniform"],"ns":[200],"seeds":1,"seed":7,"algos":["greedy","dsatur"]}`
	st, code := postJob(t, ts, job1)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitStatus(t, ts, st.ID, StatusDone, 30*time.Second)
	hits, misses, _ := s.deploy.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("job1: hits=%d misses=%d, want 1/1", hits, misses)
	}

	// Job 2: a third algorithm, same deployment, different job — a result-
	// cache miss but an instance-cache hit across the job boundary.
	job2 := `{"scenarios":["uniform"],"ns":[200],"seeds":1,"seed":7,"algos":["lengthclass"]}`
	st2, _ := postJob(t, ts, job2)
	waitStatus(t, ts, st2.ID, StatusDone, 30*time.Second)
	hits, misses, _ = s.deploy.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("job2: hits=%d misses=%d, want 2/1", hits, misses)
	}

	// Job 3: resubmit job 1 — served entirely from the result cache, so the
	// instance cache must not move at all.
	st3, _ := postJob(t, ts, job1)
	fin := waitStatus(t, ts, st3.ID, StatusDone, 30*time.Second)
	if fin.CacheHits != 2 {
		t.Fatalf("resubmitted job cache_hits=%d, want 2", fin.CacheHits)
	}
	hits, misses, _ = s.deploy.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("cached rerun moved the instance cache: hits=%d misses=%d", hits, misses)
	}

	// Job 4: a new seed is a new deployment.
	job4 := `{"scenarios":["uniform"],"ns":[200],"seeds":1,"seed":8,"algos":["greedy"]}`
	st4, _ := postJob(t, ts, job4)
	waitStatus(t, ts, st4.ID, StatusDone, 30*time.Second)
	hits, misses, _ = s.deploy.Stats()
	if hits != 2 || misses != 2 || s.deploy.Len() != 2 {
		t.Fatalf("job4: hits=%d misses=%d len=%d, want 2/2/2", hits, misses, s.deploy.Len())
	}

	// The metrics contract mirrors the same numbers.
	samples := checkExposition(t, scrape(t, ts.URL))
	for name, want := range map[string]float64{
		"aggrate_instance_cache_hits_total":   2,
		"aggrate_instance_cache_misses_total": 2,
		"aggrate_instance_cache_entries":      2,
	} {
		if got := samples[name]; got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestSchedCacheAcrossPowers: a job fanning one algorithm out over power
// schemes shares the pre-power schedule stage — the deployment entry's stage
// map builds each (SchedKey, γ) rung once and serves the other power
// variants from it — and the sched-cache /metrics series track it.
func TestSchedCacheAcrossPowers(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	job := `{"scenarios":["uniform"],"ns":[200],"seeds":1,"seed":7,"algos":["greedy"],"powers":["mean","linear"]}`
	st, code := postJob(t, ts, job)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitStatus(t, ts, st.ID, StatusDone, 30*time.Second)
	hits, misses := s.deploy.SchedStats()
	if hits < 1 || misses < 1 {
		t.Fatalf("sched cache hits=%d misses=%d, want at least one build and one reuse", hits, misses)
	}
	samples := checkExposition(t, scrape(t, ts.URL))
	if samples["aggrate_sched_cache_hits_total"] != float64(hits) ||
		samples["aggrate_sched_cache_misses_total"] != float64(misses) {
		t.Fatalf("sched cache series (%v, %v) != counters (%d, %d)",
			samples["aggrate_sched_cache_hits_total"], samples["aggrate_sched_cache_misses_total"], hits, misses)
	}
}

// TestInstanceCacheEviction: a size-1 cache serving two interleaved
// deployments evicts between them; the eviction counter and entry gauge
// expose it, and results are unharmed.
func TestInstanceCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, InstanceCacheSize: 1})
	// seeds=2 expands to two deployments inside one job; with one worker the
	// specs run algo-by-algo, so the single entry thrashes between seeds.
	grid := `{"scenarios":["uniform"],"ns":[150],"seeds":2,"seed":11,"algos":["greedy","dsatur"]}`
	st, code := postJob(t, ts, grid)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	fin := waitStatus(t, ts, st.ID, StatusDone, 30*time.Second)
	if fin.Completed != 4 {
		t.Fatalf("job finished %d specs, want 4", fin.Completed)
	}
	hits, misses, evictions := s.deploy.Stats()
	if hits+misses != 4 || misses < 2 {
		t.Fatalf("stats hits=%d misses=%d, want 4 touches with >= 2 misses", hits, misses)
	}
	if evictions < 1 || s.deploy.Len() != 1 {
		t.Fatalf("evictions=%d len=%d, want >= 1 eviction and 1 entry", evictions, s.deploy.Len())
	}
	samples := checkExposition(t, scrape(t, ts.URL))
	if samples["aggrate_instance_cache_evictions_total"] != float64(evictions) {
		t.Fatalf("evictions series %v != %d", samples["aggrate_instance_cache_evictions_total"], evictions)
	}
}

// TestInstanceCacheDisabled: a negative size turns the cache off — jobs
// still complete, every spec rebuilds, and the series stay at zero.
func TestInstanceCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, InstanceCacheSize: -1})
	if s.deploy != nil {
		t.Fatal("negative InstanceCacheSize built a cache")
	}
	job := `{"scenarios":["uniform"],"ns":[200],"seeds":1,"seed":7,"algos":["greedy","dsatur"]}`
	st, code := postJob(t, ts, job)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitStatus(t, ts, st.ID, StatusDone, 30*time.Second)
	samples := checkExposition(t, scrape(t, ts.URL))
	for _, name := range []string{
		"aggrate_instance_cache_hits_total",
		"aggrate_instance_cache_misses_total",
		"aggrate_instance_cache_entries",
	} {
		if samples[name] != 0 {
			t.Fatalf("%s = %v with the cache disabled", name, samples[name])
		}
	}
}

// TestInstanceCacheJournalReplay: specs resumed from the journal are served
// without recompute, so they must not touch the instance cache — only the
// post-crash remainder generates cache traffic.
func TestInstanceCacheJournalReplay(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "journal.ndjson")
	s1, err := New(Config{Workers: 1, JournalPath: jp,
		Faults: Faults{JournalStall: 25 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	grid := `{"scenarios":["uniform"],"ns":[2000],"seeds":3,"seed":5,"algos":["greedy","dsatur"]}`
	st, code := postJob(t, ts1, grid)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts1, st.ID).Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no progress before crash")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Crash()
	ts1.Close()

	s2, err := New(Config{Workers: 1, JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	fin := waitStatus(t, ts2, st.ID, StatusDone, 60*time.Second)
	if !fin.Resumed || fin.Replayed < 1 {
		t.Fatalf("job not resumed from the journal: %+v", fin)
	}
	hits, misses, _ := s2.deploy.Stats()
	if hits+misses != int64(fin.Total-fin.Replayed) {
		t.Fatalf("instance cache saw %d touches, want one per computed spec (%d computed, %d replayed)",
			hits+misses, fin.Total-fin.Replayed, fin.Replayed)
	}
}
