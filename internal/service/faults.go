package service

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// Faults is the injectable fault layer: every knob is off (zero) by default
// and only test code, the AGGRATE_FAULT_* environment variables, or explicit
// flags turn one on. The production paths consult it through cheap atomic
// counters, so a zero Faults costs nothing measurable.
type Faults struct {
	// JournalFailEvery makes every Nth journal append fail with an injected
	// error (N >= 1; 1 fails every append). The server degrades to
	// non-durable operation: the error is counted in
	// aggrate_journal_errors_total and the job proceeds.
	JournalFailEvery int
	// JournalStall sleeps this long before every journal append — a slow or
	// contended disk. Job execution shares the append path, so stalls
	// surface as end-to-end latency, exactly like a real slow disk.
	JournalStall time.Duration
	// KillAfterSpecs hard-kills the process (exit 137, the SIGKILL code)
	// after this many spec completions — a deterministic mid-job crash for
	// recovery drills. In-process tests use (*Server).Crash instead.
	KillAfterSpecs int
}

// enabled reports whether any fault is armed.
func (f Faults) enabled() bool {
	return f.JournalFailEvery > 0 || f.JournalStall > 0 || f.KillAfterSpecs > 0
}

// faultState pairs the (copyable) Faults config with the runtime counters
// that drive every-Nth and after-Nth triggers.
type faultState struct {
	Faults
	appends atomic.Int64
	specs   atomic.Int64
}

// beforeAppend applies the journal-write faults: stall first, then maybe
// fail.
func (f *faultState) beforeAppend() error {
	if f == nil {
		return nil
	}
	if f.JournalStall > 0 {
		time.Sleep(f.JournalStall)
	}
	if f.JournalFailEvery > 0 && f.appends.Add(1)%int64(f.JournalFailEvery) == 0 {
		return fmt.Errorf("injected journal write error (append %d)", f.appends.Load())
	}
	return nil
}

// crashFn is swapped out only by tests that must not kill the test process.
var crashFn = func() { os.Exit(137) }

// onSpecDone counts a spec completion and crashes the process when
// KillAfterSpecs is armed and reached.
func (f *faultState) onSpecDone() {
	if f == nil || f.KillAfterSpecs <= 0 {
		return
	}
	if f.specs.Add(1) == int64(f.KillAfterSpecs) {
		fmt.Fprintf(os.Stderr, "aggrate: injected crash after %d specs\n", f.KillAfterSpecs)
		crashFn()
	}
}

// FaultsFromEnv reads the AGGRATE_FAULT_* variables:
//
//	AGGRATE_FAULT_JOURNAL_FAIL_EVERY=N   fail every Nth journal append
//	AGGRATE_FAULT_JOURNAL_STALL=50ms     sleep before every journal append
//	AGGRATE_FAULT_KILL_AFTER_SPECS=N     exit(137) after N spec completions
//
// Unset or unparseable variables leave the corresponding fault off.
func FaultsFromEnv() Faults {
	var f Faults
	if v, err := strconv.Atoi(os.Getenv("AGGRATE_FAULT_JOURNAL_FAIL_EVERY")); err == nil && v > 0 {
		f.JournalFailEvery = v
	}
	if d, err := time.ParseDuration(os.Getenv("AGGRATE_FAULT_JOURNAL_STALL")); err == nil && d > 0 {
		f.JournalStall = d
	}
	if v, err := strconv.Atoi(os.Getenv("AGGRATE_FAULT_KILL_AFTER_SPECS")); err == nil && v > 0 {
		f.KillAfterSpecs = v
	}
	return f
}
