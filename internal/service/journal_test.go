package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aggrate/internal/experiment"
)

// writeTestJournal builds a journal with a known history: three jobs, a mix
// of completed specs, one job done, one cancelled, one left mid-flight.
// Returns the path and the raw bytes.
func writeTestJournal(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jl := &journal{path: path, faults: &faultState{}, m: newMetrics()}
	if err := jl.compact(nil); err != nil { // creates the empty file + opens for append
		t.Fatal(err)
	}
	req := JobRequest{Scenarios: []string{"uniform"}, Ns: []int{60}, Seeds: 2, Seed: 7}
	res := func(n int) *experiment.Result {
		return &experiment.Result{N: n, Colors: 3, Verified: true}
	}
	now := time.Now().UTC()
	for jid := 1; jid <= 3; jid++ {
		id := fmt.Sprintf("j%06d", jid)
		reqCopy := req
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(jl.appendSync(journalRecord{T: "job", Time: now, ID: id, Client: "c", Priority: jid, Req: &reqCopy}))
		for i := 0; i < jid; i++ { // job N has N completed specs
			must(jl.append(journalRecord{T: "spec", Time: now, Job: id, Index: i,
				Key: fmt.Sprintf("key-%d-%d", jid, i), Result: res(60 + i)}))
		}
	}
	must2 := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must2(jl.appendSync(journalRecord{T: "status", Time: now, Job: "j000001", Status: StatusDone}))
	must2(jl.appendSync(journalRecord{T: "status", Time: now, Job: "j000002", Status: StatusCancelled}))
	must2(jl.appendSync(journalRecord{T: "status", Time: now, Job: "j000003", Status: StatusInterrupted}))
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, b
}

// TestJournalReplayFull: the complete journal replays to exactly the history
// that was written.
func TestJournalReplayFull(t *testing.T) {
	path, _ := writeTestJournal(t)
	jobs, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	wantStatus := map[string]string{
		"j000001": StatusDone, "j000002": StatusCancelled, "j000003": StatusInterrupted,
	}
	for n, j := range jobs {
		if j.id != fmt.Sprintf("j%06d", n+1) {
			t.Fatalf("job %d out of order: %s", n, j.id)
		}
		if j.status != wantStatus[j.id] {
			t.Fatalf("%s status %q, want %q", j.id, j.status, wantStatus[j.id])
		}
		if len(j.completed) != n+1 {
			t.Fatalf("%s has %d completed specs, want %d", j.id, len(j.completed), n+1)
		}
		if j.priority != n+1 || j.client != "c" {
			t.Fatalf("%s lost metadata: priority=%d client=%q", j.id, j.priority, j.client)
		}
	}
	// Terminality: done and cancelled are final, interrupted resumes.
	if !jobs[0].terminal() || !jobs[1].terminal() || jobs[2].terminal() {
		t.Fatalf("terminality: done=%v cancelled=%v interrupted=%v",
			jobs[0].terminal(), jobs[1].terminal(), jobs[2].terminal())
	}
}

// TestJournalReplayTruncationProperty: EVERY byte-prefix of a valid journal
// — including prefixes that tear a record mid-line — replays without error
// to a consistent state, and recovered knowledge grows monotonically with
// the prefix: never fewer jobs, never fewer completed specs per job.
func TestJournalReplayTruncationProperty(t *testing.T) {
	_, full := writeTestJournal(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "prefix.ndjson")

	prevJobs := -1
	prevSpecs := map[string]int{}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jobs, err := replayJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: replay error %v", cut, err)
		}
		if len(jobs) < prevJobs {
			t.Fatalf("cut=%d: job count regressed %d -> %d", cut, prevJobs, len(jobs))
		}
		prevJobs = len(jobs)
		for _, j := range jobs {
			// Consistency: every recovered spec has a result, every status is a
			// known state, and the request survived intact.
			for i, sp := range j.completed {
				if sp.res == nil || sp.key == "" {
					t.Fatalf("cut=%d: %s spec %d recovered without result/key", cut, j.id, i)
				}
			}
			switch j.status {
			case StatusQueued, StatusDone, StatusCancelled, StatusInterrupted:
			default:
				t.Fatalf("cut=%d: %s has status %q", cut, j.id, j.status)
			}
			if len(j.req.Scenarios) == 0 {
				t.Fatalf("cut=%d: %s lost its request", cut, j.id)
			}
			if len(j.completed) < prevSpecs[j.id] {
				t.Fatalf("cut=%d: %s spec count regressed %d -> %d",
					cut, j.id, prevSpecs[j.id], len(j.completed))
			}
			prevSpecs[j.id] = len(j.completed)
		}
	}
	// The longest prefix is the full journal: everything must be there.
	if prevJobs != 3 {
		t.Fatalf("full replay found %d jobs, want 3", prevJobs)
	}
}

// TestJournalTornTailIgnoresGarbage: appended garbage (a torn write) ends
// the replay at the last valid line instead of failing it.
func TestJournalTornTailIgnoresGarbage(t *testing.T) {
	path, full := writeTestJournal(t)
	if err := os.WriteFile(path, append(bytes.Clone(full), []byte(`{"t":"spec","job":"j0000`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := replayJournal(path)
	if err != nil || len(jobs) != 3 {
		t.Fatalf("torn tail: jobs=%d err=%v, want 3, nil", len(jobs), err)
	}
}

// TestJournalCompactionDropsTerminal: openJournal rewrites the file down to
// the live jobs; terminal ones are still returned (for cache seeding) but no
// longer occupy disk.
func TestJournalCompactionDropsTerminal(t *testing.T) {
	path, full := writeTestJournal(t)
	jl, replayed, err := openJournal(path, &faultState{}, newMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	if len(replayed) != 3 {
		t.Fatalf("openJournal returned %d jobs, want all 3", len(replayed))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(full) {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", len(full), len(after))
	}
	// Only the interrupted job survives on disk.
	again, err := replayJournal(path)
	if err != nil || len(again) != 1 || again[0].id != "j000003" {
		t.Fatalf("post-compaction replay: %+v err=%v, want only j000003", again, err)
	}
	if len(again[0].completed) != 3 {
		t.Fatalf("compaction lost completed specs: %d, want 3", len(again[0].completed))
	}
}
