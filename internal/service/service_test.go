package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"aggrate/internal/experiment"
)

// newTestServer boots a Server behind httptest and tears both down with the
// test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("submit response not JSON: %v", err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitStatus polls until the job reaches want (or the deadline trips).
func waitStatus(t *testing.T, ts *httptest.Server, id, want string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, ts, id)
		if st.Status == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHealthz: the liveness endpoint reports ok and the server gauges.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["queue_size"].(float64) <= 0 {
		t.Fatalf("healthz payload %v", h)
	}
}

// TestSubmitValidation: every malformed grid is rejected up front with 400
// and a pointed message — no instance ever runs.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSpecs: 10})
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty body", `{}`, "scenarios is required"},
		{"bad json", `{`, "bad request body"},
		{"unknown field", `{"scenarios":["uniform"],"bogus":1}`, "bogus"},
		{"bad scenario", `{"scenarios":["nope"]}`, "unknown preset"},
		{"small n", `{"scenarios":["uniform"],"ns":[1]}`, "must be >= 2"},
		{"bad power", `{"scenarios":["uniform"],"powers":["warp"]}`, "unknown power"},
		{"bad algo", `{"scenarios":["uniform"],"algos":["warp"]}`, "unknown algorithm"},
		{"bad graph", `{"scenarios":["uniform"],"graph":"warp"}`, "unknown graph"},
		{"bad engine", `{"scenarios":["uniform"],"verify_engine":"warp"}`, "unknown verify_engine"},
		{"bad alpha", `{"scenarios":["uniform"],"alpha":1.5}`, "alpha"},
		{"oversized grid", `{"scenarios":["uniform"],"ns":[100,200],"seeds":6}`, "server limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, buf.String())
			}
			if !strings.Contains(buf.String(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", buf.String(), tc.wantErr)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/j999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job id: err=%v status=%d, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

const smallGrid = `{"scenarios":["uniform"],"ns":[60,80],"seeds":2,"seed":21,"algos":["greedy"]}`

// TestJobLifecycleStreamAndCache is the end-to-end serve proof: submit a
// grid, stream its results as NDJSON while it runs, confirm the terminal
// status, then resubmit the identical grid and get every result back as a
// cache hit with no recomputation.
func TestJobLifecycleStreamAndCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	st, code := postJob(t, ts, smallGrid)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if st.Total != 4 || st.ID == "" {
		t.Fatalf("submit payload %+v, want 4 specs and an id", st)
	}

	// Stream: one NDJSON line per instance, then the terminal line.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var items []StreamItem
	var final map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("stream line not JSON: %v\n%s", err, line)
		}
		if probe["done"] == true {
			final = probe
			break
		}
		if _, isEvent := probe["event"]; isEvent {
			continue // lifecycle trace lines interleave with results
		}
		var it StreamItem
		if err := json.Unmarshal(line, &it); err != nil {
			t.Fatal(err)
		}
		items = append(items, it)
	}
	if len(items) != 4 || final == nil {
		t.Fatalf("streamed %d items, final=%v; want 4 and a done line", len(items), final)
	}
	seen := map[int]bool{}
	for _, it := range items {
		if it.CacheHit {
			t.Fatalf("first run reported cache_hit for index %d", it.Index)
		}
		if it.Result == nil || it.Result.Err != "" || !it.Result.Verified {
			t.Fatalf("stream item %d not a verified result: %+v", it.Index, it.Result)
		}
		seen[it.Index] = true
	}
	if len(seen) != 4 {
		t.Fatalf("stream covered indices %v, want all of 0..3", seen)
	}
	if final["status"] != StatusDone || final["completed"].(float64) != 4 {
		t.Fatalf("final stream line %v", final)
	}

	// Status endpoint agrees and carries the results array.
	done := waitStatus(t, ts, st.ID, StatusDone, 5*time.Second)
	if done.Completed != 4 || done.CacheHits != 0 || len(done.Results) != 4 {
		t.Fatalf("done status %+v", done)
	}

	// Identical resubmission: served entirely from the spec-keyed cache.
	st2, code := postJob(t, ts, smallGrid)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit status %d", code)
	}
	done2 := waitStatus(t, ts, st2.ID, StatusDone, 5*time.Second)
	if done2.CacheHits != 4 || done2.Completed != 4 {
		t.Fatalf("resubmit not served from cache: %+v", done2)
	}
	for _, it := range done2.Results {
		if !it.CacheHit {
			t.Fatalf("resubmitted index %d missed the cache", it.Index)
		}
	}
	// The records themselves are the first run's: same seed-deterministic
	// metrics, spec key for spec key.
	key0 := map[int]string{}
	for _, it := range done.Results {
		key0[it.Index] = it.SpecKey
	}
	for _, it := range done2.Results {
		if key0[it.Index] != it.SpecKey {
			t.Fatalf("spec key changed across identical submissions at index %d", it.Index)
		}
	}

	// A disjoint seed range is a different key set: no false sharing. (An
	// overlapping range would legitimately hit — the cache is per spec, not
	// per job.)
	st3, code := postJob(t, ts, strings.Replace(smallGrid, `"seed":21`, `"seed":50`, 1))
	if code != http.StatusAccepted {
		t.Fatalf("third submit status %d", code)
	}
	if done3 := waitStatus(t, ts, st3.ID, StatusDone, 10*time.Second); done3.CacheHits != 0 {
		t.Fatalf("different seed hit the cache: %+v", done3)
	}
}

// bigGrid is slow enough (tens of 2000-node instances) that cancellation
// always lands mid-flight.
const bigGrid = `{"scenarios":["uniform"],"ns":[2000],"seeds":40,"seed":31}`

// TestCancelMidFlight: DELETE stops a running job within one chunk
// boundary, the completed prefix survives, and no goroutines leak.
func TestCancelMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	st, code := postJob(t, ts, bigGrid)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Wait until at least one instance has completed so the cancel is truly
	// mid-batch.
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, st.ID).Completed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no instance completed before cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	deleteJob(t, ts, st.ID)
	fin := waitStatus(t, ts, st.ID, StatusCancelled, 5*time.Second)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v", elapsed)
	}
	if fin.Completed == 0 || fin.Completed >= fin.Total {
		t.Fatalf("cancelled job has %d/%d results, want a strict partial prefix", fin.Completed, fin.Total)
	}
	for _, it := range fin.Results {
		if it.Result == nil || it.Result.Err != "" {
			t.Fatalf("partial result %d malformed: %+v", it.Index, it.Result)
		}
	}

	// The stream of a cancelled job terminates with done=true.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	var last []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		last = append(last[:0], sc.Bytes()...)
	}
	resp.Body.Close()
	if !bytes.Contains(last, []byte(`"done":true`)) || !bytes.Contains(last, []byte(StatusCancelled)) {
		t.Fatalf("cancelled stream terminal line: %s", last)
	}

	// Teardown and goroutine accounting: everything the job and server
	// spawned must unwind.
	ts.Close()
	s.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQueueBoundsAndQueuedCancel: a full queue rejects with 503, and a
// queued job can be cancelled before it ever runs.
func TestQueueBoundsAndQueuedCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1})

	running, code := postJob(t, ts, bigGrid) // occupies the executor
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	queued, code := postJob(t, ts, smallGrid) // sits in the queue
	if code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}
	// Third submission finds the queue slot occupied.
	rejectedAt := -1
	for i := 0; i < 20; i++ {
		if _, code = postJob(t, ts, smallGrid); code == http.StatusServiceUnavailable {
			rejectedAt = i
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rejectedAt < 0 {
		t.Fatal("bounded queue never rejected a submission")
	}

	// Cancel the queued job: it must go terminal without running anything.
	if st := deleteJob(t, ts, queued.ID); st.Status != StatusCancelled {
		t.Fatalf("queued job after DELETE: %+v", st)
	}
	if st := getStatus(t, ts, queued.ID); st.Completed != 0 || st.Status != StatusCancelled {
		t.Fatalf("cancelled queued job ran: %+v", st)
	}
	deleteJob(t, ts, running.ID)
	waitStatus(t, ts, running.ID, StatusCancelled, 10*time.Second)
}

// TestJobTimeout: a request-level timeout cancels the job like DELETE,
// keeping the completed prefix.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := strings.TrimSuffix(bigGrid, "}") + `,"timeout_sec":0.35}`
	st, code := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	fin := waitStatus(t, ts, st.ID, StatusCancelled, 15*time.Second)
	if fin.Completed >= fin.Total {
		t.Fatalf("timed-out job completed fully: %+v", fin)
	}
}

// TestCacheEviction: the LRU respects its capacity and evicts oldest-first.
func TestCacheEviction(t *testing.T) {
	c := newResultCache(2, 0)
	r := &experiment.Result{}
	c.add("a", r)
	c.add("b", r)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted under capacity")
	}
	c.add("c", r) // evicts b (a was just touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
}

// TestJobRetention: past MaxJobs, the oldest finished job records are
// evicted (404 afterwards) while newer ones survive — the registry's
// memory stays bounded on a long-running server.
func TestJobRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxJobs: 2})
	grid := func(seed int) string {
		return strings.Replace(smallGrid, `"seed":21`, fmt.Sprintf(`"seed":%d`, 100+seed), 1)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		st, code := postJob(t, ts, grid(i))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		waitStatus(t, ts, st.ID, StatusDone, 10*time.Second)
		ids = append(ids, st.ID)
	}
	// The two oldest records are gone; the two newest remain.
	for _, id := range ids[:2] {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("evicted job %s: status %d, want 404", id, resp.StatusCode)
		}
	}
	for _, id := range ids[2:] {
		if st := getStatus(t, ts, id); st.Status != StatusDone {
			t.Fatalf("retained job %s in state %q", id, st.Status)
		}
	}
}

// TestSubmitAfterClose: a closed server refuses new work cleanly.
func TestSubmitAfterClose(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	if _, code := postJob(t, ts, smallGrid); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: status %d, want 503", code)
	}
	// And Close is idempotent.
	s.Close()
}
