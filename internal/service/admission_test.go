package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// postJobAs submits with an explicit client key and returns the decoded
// error body (if any), status code, and Retry-After header.
func postJobAs(t *testing.T, ts *httptest.Server, apiKey, body string) (map[string]string, int, string) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&payload)
	return payload, resp.StatusCode, resp.Header.Get("Retry-After")
}

// oneSpecGrid is the smallest admissible job: a single 60-node instance.
const oneSpecGrid = `{"scenarios":["uniform"],"ns":[60],"seeds":1,"seed":%d}`

// TestRateLimit: the per-client token bucket rejects the burst-exceeding
// submission with 429, code rate_limited, and a positive Retry-After —
// while a different API key is unaffected.
func TestRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RateLimit: 0.001, RateBurst: 1})

	if _, code, _ := postJobAs(t, ts, "alice", `{"scenarios":["uniform"],"ns":[60],"seeds":1}`); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	payload, code, retry := postJobAs(t, ts, "alice", `{"scenarios":["uniform"],"ns":[60],"seeds":1}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", code)
	}
	if payload["code"] != CodeRateLimited {
		t.Fatalf("error code %q, want %q (body %v)", payload["code"], CodeRateLimited, payload)
	}
	if sec, err := strconv.Atoi(retry); err != nil || sec < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", retry)
	}
	// A different client has its own bucket.
	if _, code, _ := postJobAs(t, ts, "bob", `{"scenarios":["uniform"],"ns":[60],"seeds":1}`); code != http.StatusAccepted {
		t.Fatalf("other client: status %d, want 202", code)
	}
}

// TestClientQuota: a client at its live-job cap gets 429 quota; finishing
// (here: cancelling) a job frees the slot.
func TestClientQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobsPerClient: 1})

	st, code, _ := func() (JobStatus, int, string) {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(bigGrid))
		req.Header.Set("X-API-Key", "alice")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var s JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&s)
		return s, resp.StatusCode, ""
	}()
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	payload, code, retry := postJobAs(t, ts, "alice", bigGrid)
	if code != http.StatusTooManyRequests || payload["code"] != CodeQuota {
		t.Fatalf("over quota: status %d code %q, want 429 %q", code, payload["code"], CodeQuota)
	}
	if retry == "" {
		t.Fatal("quota rejection carries no Retry-After")
	}
	deleteJob(t, ts, st.ID)
	waitStatus(t, ts, st.ID, StatusCancelled, 10*time.Second)
	if _, code, _ := postJobAs(t, ts, "alice", oneSpec(1)); code != http.StatusAccepted {
		t.Fatalf("after cancel: status %d, want 202 (slot freed)", code)
	}
}

func oneSpec(seed int) string {
	return strings.Replace(`{"scenarios":["uniform"],"ns":[60],"seeds":1,"seed":SEED}`,
		"SEED", strconv.Itoa(seed), 1)
}

// TestLoadShedding: past the watermark, large grids are shed with 503
// shed_large_job while small grids are still admitted — and a full queue
// rejects everything with queue_full.
func TestLoadShedding(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4, ShedWatermark: 0.5, ShedMaxSpecs: 2})

	// Occupy the executor, then put 2 jobs in the queue: depth 2 = watermark.
	running, code := postJob(t, ts, bigGrid)
	if code != http.StatusAccepted {
		t.Fatalf("running job: status %d", code)
	}
	var queued []string
	for i := 0; i < 2; i++ {
		st, code := postJob(t, ts, oneSpec(100+i))
		if code != http.StatusAccepted {
			t.Fatalf("queued job %d: status %d", i, code)
		}
		queued = append(queued, st.ID)
	}

	// A 4-spec grid exceeds ShedMaxSpecs: shed.
	payload, code, retry := postJobAs(t, ts, "", smallGrid)
	if code != http.StatusServiceUnavailable || payload["code"] != CodeShedLargeJob {
		t.Fatalf("large grid at watermark: status %d code %q, want 503 %q", code, payload["code"], CodeShedLargeJob)
	}
	if retry == "" {
		t.Fatal("shed rejection carries no Retry-After")
	}
	// A single-spec grid is still admitted.
	st, code := postJob(t, ts, oneSpec(200))
	if code != http.StatusAccepted {
		t.Fatalf("small grid at watermark: status %d, want 202", code)
	}
	queued = append(queued, st.ID)
	// One more fills the queue (depth 4); the next is queue_full.
	st, code = postJob(t, ts, oneSpec(201))
	if code != http.StatusAccepted {
		t.Fatalf("queue-filling grid: status %d", code)
	}
	queued = append(queued, st.ID)
	payload, code, retry = postJobAs(t, ts, "", oneSpec(202))
	if code != http.StatusServiceUnavailable || payload["code"] != CodeQueueFull {
		t.Fatalf("full queue: status %d code %q, want 503 %q", code, payload["code"], CodeQueueFull)
	}
	if retry == "" {
		t.Fatal("queue_full rejection carries no Retry-After")
	}

	deleteJob(t, ts, running.ID)
	for _, id := range queued {
		deleteJob(t, ts, id)
	}
}

// TestPriorityOrdering: with the executor busy, a higher-priority later
// submission starts before an earlier lower-priority one.
func TestPriorityOrdering(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	running, code := postJob(t, ts, bigGrid)
	if code != http.StatusAccepted {
		t.Fatalf("running job: status %d", code)
	}
	low, code := postJob(t, ts, `{"scenarios":["uniform"],"ns":[60],"seeds":1,"seed":301,"priority":0}`)
	if code != http.StatusAccepted {
		t.Fatalf("low-priority submit: status %d", code)
	}
	high, code := postJob(t, ts, `{"scenarios":["uniform"],"ns":[60],"seeds":1,"seed":302,"priority":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("high-priority submit: status %d", code)
	}
	deleteJob(t, ts, running.ID)
	waitStatus(t, ts, low.ID, StatusDone, 30*time.Second)
	waitStatus(t, ts, high.ID, StatusDone, 30*time.Second)

	runningAt := func(id string) time.Time {
		for _, ev := range getStatus(t, ts, id).Events {
			if ev.Event == "running" {
				return ev.Time
			}
		}
		t.Fatalf("job %s never recorded a running event", id)
		return time.Time{}
	}
	if !runningAt(high.ID).Before(runningAt(low.ID)) {
		t.Fatalf("priority 5 started at %v, after priority 0 at %v",
			runningAt(high.ID), runningAt(low.ID))
	}
}

// TestPriorityValidation: out-of-range priorities are a 400, not a silent
// clamp.
func TestPriorityValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	payload, code, _ := postJobAs(t, ts, "", `{"scenarios":["uniform"],"priority":101}`)
	if code != http.StatusBadRequest || payload["code"] != CodeBadRequest {
		t.Fatalf("priority 101: status %d code %q", code, payload["code"])
	}
}
