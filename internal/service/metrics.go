package service

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics is the server's hand-rolled Prometheus-text instrumentation: plain
// atomic counters, callback gauges resolved at scrape time, and fixed-bucket
// histograms. No dependencies — the text exposition format is stable and
// simple enough to emit directly. Every series is registered up front and
// rendered on every scrape (counters at 0 included), so dashboards and the
// CI scrape check never see a series appear late or go missing.
type metrics struct {
	// Admission / lifecycle counters.
	jobsSubmitted  atomic.Int64
	jobsResumed    atomic.Int64
	rejections     counterVec // reason: queue_full, rate_limited, quota, shed_large_job, shutting_down
	specsCompleted counterVec // source: computed, cache, journal

	// Journal counters (mirrored from the journal at scrape).
	journalAppends       atomic.Int64
	journalBytes         atomic.Int64
	journalFsyncs        atomic.Int64
	journalErrors        atomic.Int64
	journalReplayedJobs  atomic.Int64
	journalReplayedSpecs atomic.Int64
	journalCompactions   atomic.Int64

	// Per-stage pipeline latency histograms, fed from experiment.Timings.
	stageSeconds *histogramVec
	// End-to-end job duration (submit to terminal).
	jobSeconds *histogram

	// gauges and counterFns are the scrape-time callback sets; counterFns
	// render with TYPE counter (monotonic values owned elsewhere, e.g. the
	// result cache's hit/miss atomics).
	gaugeMu    sync.Mutex
	gauges     []gaugeDef
	counterFns []gaugeDef
}

type gaugeDef struct {
	name, help string
	labels     string // rendered label set, e.g. `{state="queued"}`; empty for none
	fn         func() float64
}

// counterVec is a label -> counter map with a fixed label name, pre-seeded so
// every expected series renders from the first scrape.
type counterVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*atomic.Int64
}

func (v *counterVec) init(label string, seed ...string) {
	v.label = label
	v.vals = make(map[string]*atomic.Int64)
	for _, s := range seed {
		v.vals[s] = new(atomic.Int64)
	}
}

func (v *counterVec) add(key string, n int64) {
	v.mu.Lock()
	c, ok := v.vals[key]
	if !ok {
		c = new(atomic.Int64)
		v.vals[key] = c
	}
	v.mu.Unlock()
	c.Add(n)
}

func (v *counterVec) get(key string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.vals[key]; ok {
		return c.Load()
	}
	return 0
}

func (v *counterVec) snapshot() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.vals))
	for k, c := range v.vals {
		out[k] = c.Load()
	}
	return out
}

// stageBuckets spans sub-millisecond generator times through minute-scale
// n=1e6 verifications.
var stageBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// histogram is a fixed-bucket cumulative histogram. sumBits carries the
// float64 sum as atomic bits.
type histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last bucket = +Inf
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0 // timings are wall-clock deltas; guard anyway so no NaN reaches the exposition
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *histogram) sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// histogramVec keys histograms by one label value, pre-seeded.
type histogramVec struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	vals   map[string]*histogram
	order  []string
}

func newHistogramVec(label string, bounds []float64, seed ...string) *histogramVec {
	v := &histogramVec{label: label, bounds: bounds, vals: make(map[string]*histogram)}
	for _, s := range seed {
		v.vals[s] = newHistogram(bounds)
		v.order = append(v.order, s)
	}
	return v
}

func (v *histogramVec) observe(key string, x float64) {
	v.mu.Lock()
	h, ok := v.vals[key]
	if !ok {
		h = newHistogram(v.bounds)
		v.vals[key] = h
		v.order = append(v.order, key)
	}
	v.mu.Unlock()
	h.observe(x)
}

func newMetrics() *metrics {
	m := &metrics{
		stageSeconds: newHistogramVec("stage", stageBuckets,
			"gen", "mst", "build", "order", "color", "verify"),
		jobSeconds: newHistogram(stageBuckets),
	}
	m.rejections.init("reason",
		"queue_full", "rate_limited", "quota", "shed_large_job", "shutting_down")
	m.specsCompleted.init("source", "computed", "cache", "journal")
	return m
}

// registerGauge adds a scrape-time gauge. labels is a pre-rendered label set
// (may be empty). Registration order is render order.
func (m *metrics) registerGauge(name, labels, help string, fn func() float64) {
	m.gaugeMu.Lock()
	defer m.gaugeMu.Unlock()
	m.gauges = append(m.gauges, gaugeDef{name: name, help: help, labels: labels, fn: fn})
}

// registerCounter adds a scrape-time callback rendered with TYPE counter —
// for monotonic values whose atomics live outside metrics.
func (m *metrics) registerCounter(name, labels, help string, fn func() float64) {
	m.gaugeMu.Lock()
	defer m.gaugeMu.Unlock()
	m.counterFns = append(m.counterFns, gaugeDef{name: name, help: help, labels: labels, fn: fn})
}

// fnum renders a float without exponent surprises and never as NaN (a NaN
// would poison every Prometheus consumer, and the CI scrape gate fails on
// it).
func fnum(v float64) string {
	if math.IsNaN(v) {
		return "0"
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// ServeHTTP renders the Prometheus text exposition.
func (m *metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counterV := func(name, help, label string, vals map[string]int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, vals[k])
		}
	}

	counter("aggrate_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", m.jobsSubmitted.Load())
	counter("aggrate_jobs_resumed_total", "Jobs re-enqueued from the journal at startup.", m.jobsResumed.Load())
	counterV("aggrate_admission_rejected_total", "Submissions rejected by admission control.",
		m.rejections.label, m.rejections.snapshot())
	counterV("aggrate_specs_completed_total", "Spec completions by result source.",
		m.specsCompleted.label, m.specsCompleted.snapshot())

	counter("aggrate_journal_appends_total", "Records appended to the job journal.", m.journalAppends.Load())
	counter("aggrate_journal_bytes_total", "Bytes appended to the job journal.", m.journalBytes.Load())
	counter("aggrate_journal_fsyncs_total", "Journal fsyncs (job boundaries and shutdown).", m.journalFsyncs.Load())
	counter("aggrate_journal_errors_total", "Journal append/sync failures (service degrades to non-durable).", m.journalErrors.Load())
	counter("aggrate_journal_replayed_jobs_total", "Live jobs recovered from the journal at startup.", m.journalReplayedJobs.Load())
	counter("aggrate_journal_replayed_specs_total", "Completed specs recovered from the journal at startup.", m.journalReplayedSpecs.Load())
	counter("aggrate_journal_compactions_total", "Journal compaction rewrites (startup and size-triggered).", m.journalCompactions.Load())

	m.gaugeMu.Lock()
	cdefs := append([]gaugeDef(nil), m.counterFns...)
	m.gaugeMu.Unlock()
	for _, d := range cdefs {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s%s %s\n", d.name, d.help, d.name, d.name, d.labels, fnum(d.fn()))
	}

	// Gauges, in registration order but grouped by name for valid exposition.
	m.gaugeMu.Lock()
	defs := append([]gaugeDef(nil), m.gauges...)
	m.gaugeMu.Unlock()
	byName := make(map[string][]gaugeDef)
	var nameOrder []string
	for _, d := range defs {
		if _, ok := byName[d.name]; !ok {
			nameOrder = append(nameOrder, d.name)
		}
		byName[d.name] = append(byName[d.name], d)
	}
	for _, name := range nameOrder {
		group := byName[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, group[0].help, name)
		for _, d := range group {
			fmt.Fprintf(w, "%s%s %s\n", d.name, d.labels, fnum(d.fn()))
		}
	}

	// Histograms.
	writeHist := func(name string, labels string, h *histogram) {
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			sep := "{"
			if labels != "" {
				sep = "{" + labels + ","
			}
			fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, sep, fnum(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		sep := "{"
		if labels != "" {
			sep = "{" + labels + ","
		}
		fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, sep, cum)
		if labels != "" {
			fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, labels, fnum(h.sum()), name, labels, h.count.Load())
		} else {
			fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fnum(h.sum()), name, h.count.Load())
		}
	}

	fmt.Fprintf(w, "# HELP aggrate_stage_seconds Per-stage pipeline latency of computed specs.\n# TYPE aggrate_stage_seconds histogram\n")
	m.stageSeconds.mu.Lock()
	stageOrder := append([]string(nil), m.stageSeconds.order...)
	stageVals := make(map[string]*histogram, len(m.stageSeconds.vals))
	for k, h := range m.stageSeconds.vals {
		stageVals[k] = h
	}
	m.stageSeconds.mu.Unlock()
	for _, k := range stageOrder {
		writeHist("aggrate_stage_seconds", fmt.Sprintf("%s=%q", m.stageSeconds.label, k), stageVals[k])
	}

	fmt.Fprintf(w, "# HELP aggrate_job_seconds End-to-end job duration, submit to terminal state.\n# TYPE aggrate_job_seconds histogram\n")
	writeHist("aggrate_job_seconds", "", m.jobSeconds)
}
