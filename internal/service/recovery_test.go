package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// recoveryGrid is slow enough (2000-node instances, one worker) that a
// crash after two completions reliably lands mid-grid, and small enough to
// finish in test time.
const recoveryGrid = `{"scenarios":["uniform"],"ns":[2000],"seeds":6,"seed":41,"algos":["greedy"]}`

// stripTimings removes the wall-clock fields from a result for parity
// comparison: two runs of the same spec agree on every metric, never on
// machine timing.
func stripTimings(t *testing.T, it StreamItem) string {
	t.Helper()
	b, err := json.Marshal(it.Result)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "timings")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// resultsByIndex maps a terminal job's results by grid position.
func resultsByIndex(st JobStatus) map[int]StreamItem {
	out := make(map[int]StreamItem, len(st.Results))
	for _, it := range st.Results {
		out[it.Index] = it
	}
	return out
}

// TestCrashRecoveryParity is the durability proof: kill the server mid-grid
// (no flush, no fsync — what SIGKILL leaves), restart on the same journal,
// and the job resumes from its completed prefix, serves those specs from
// the journal without recompute, finishes, and matches an uninterrupted run
// result for result.
func TestCrashRecoveryParity(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "journal.ndjson")

	// First life: submit, let a partial prefix complete, crash. The journal
	// stall puts a deterministic 25ms floor under every spec so the kill
	// window survives a loaded CI box (and exercises the slow-disk fault).
	s1, err := New(Config{Workers: 1, JournalPath: jp,
		Faults: Faults{JournalStall: 25 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	st, code := postJob(t, ts1, recoveryGrid)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Crash the instant progress is visible — the remaining five specs (tens
	// of milliseconds each) leave the job reliably mid-flight. Crash before
	// closing the test listener: Close waits for idle connections, and that
	// wait is time the job would use to finish.
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts1, st.ID).Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no progress before crash")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Crash()
	ts1.Close()

	// Second life: same journal. The job must come back resumed and finish.
	s2, err := New(Config{Workers: 1, JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	fin := waitStatus(t, ts2, st.ID, StatusDone, 60*time.Second)
	if !fin.Resumed {
		t.Fatalf("recovered job not marked resumed: %+v", fin)
	}
	if fin.Completed != fin.Total || fin.Total != 6 {
		t.Fatalf("recovered job finished %d/%d", fin.Completed, fin.Total)
	}
	if fin.Replayed < 1 {
		t.Fatalf("journal_replayed=%d, want >= 1 (the pre-crash prefix)", fin.Replayed)
	}
	replayedIdx := map[int]bool{}
	for _, it := range fin.Results {
		switch it.Source {
		case SourceJournal:
			replayedIdx[it.Index] = true
		case SourceComputed, SourceCache:
		default:
			t.Fatalf("result %d has source %q", it.Index, it.Source)
		}
	}
	if len(replayedIdx) != fin.Replayed {
		t.Fatalf("%d journal-sourced results, status says %d", len(replayedIdx), fin.Replayed)
	}

	// The no-recompute claim, asserted via metrics: the journal-sourced specs
	// are counted under source="journal", and the computed count is exactly
	// the remainder.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metricsText := string(body)
	for _, want := range []string{
		`aggrate_specs_completed_total{source="journal"}`,
		"aggrate_journal_replayed_jobs_total 1",
		"aggrate_jobs_resumed_total 1",
	} {
		if !strings.Contains(metricsText, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsText)
		}
	}
	if got := s2.metrics.specsCompleted.get(SourceJournal); int(got) != fin.Replayed {
		t.Fatalf("specs_completed{journal}=%d, want %d", got, fin.Replayed)
	}
	if got := s2.metrics.specsCompleted.get(SourceComputed); int(got) != fin.Total-fin.Replayed {
		t.Fatalf("specs_completed{computed}=%d, want %d (no recompute of the prefix)",
			got, fin.Total-fin.Replayed)
	}

	// Parity: an uninterrupted run of the same grid on a fresh server agrees
	// on every spec key and every metric (timings excepted).
	s3, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(s3.Handler())
	st3, code := postJob(t, ts3, recoveryGrid)
	if code != http.StatusAccepted {
		t.Fatalf("fresh submit status %d", code)
	}
	ref := waitStatus(t, ts3, st3.ID, StatusDone, 60*time.Second)
	got, want := resultsByIndex(fin), resultsByIndex(ref)
	for i := 0; i < fin.Total; i++ {
		if got[i].SpecKey != want[i].SpecKey {
			t.Fatalf("spec key diverged at %d: %s vs %s", i, got[i].SpecKey, want[i].SpecKey)
		}
		if g, w := stripTimings(t, got[i]), stripTimings(t, want[i]); g != w {
			t.Fatalf("result diverged at index %d:\nrecovered: %s\nfresh:     %s", i, g, w)
		}
	}
	ts3.Close()
	s3.Close()
	ts2.Close()
	s2.Close()
}

// TestGracefulShutdownInterrupts: Shutdown stops the running job at a spec
// boundary, marks it interrupted, and a restart on the same journal resumes
// and finishes it.
func TestGracefulShutdownInterrupts(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "journal.ndjson")
	s1, err := New(Config{Workers: 1, JournalPath: jp,
		Faults: Faults{JournalStall: 25 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	// A dozen 2000-node instances on one worker, each with a 25ms journal
	// stall: the drain always lands with most of the grid pending, and the
	// resumed (stall-free) run still finishes quickly.
	st, code := postJob(t, ts1, `{"scenarios":["uniform"],"ns":[2000],"seeds":12,"seed":43}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts1, st.ID).Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no progress before shutdown")
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	s1.Shutdown(shutdownCtx)
	cancel()
	if time.Since(start) > 20*time.Second {
		t.Fatal("graceful drain blew its bound")
	}
	// The job went interrupted (not cancelled): its prefix is resumable.
	fin := getStatus(t, ts1, st.ID)
	if fin.Status != StatusInterrupted {
		t.Fatalf("after Shutdown: status %q, want interrupted", fin.Status)
	}
	if fin.Completed == 0 || fin.Completed >= fin.Total {
		t.Fatalf("interrupted at %d/%d, want a strict partial prefix", fin.Completed, fin.Total)
	}
	ts1.Close()

	s2, err := New(Config{Workers: 1, JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	fin2 := waitStatus(t, ts2, st.ID, StatusDone, 60*time.Second)
	if fin2.Replayed < fin.Completed {
		t.Fatalf("resume replayed %d specs, the first life completed %d", fin2.Replayed, fin.Completed)
	}
	ts2.Close()
	s2.Close()
}

// TestJournalFaultDegradation: with every journal append failing, the
// server still serves jobs — durability degrades, availability does not —
// and the failure is visible in the error counter.
func TestJournalFaultDegradation(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "journal.ndjson")
	s, err := New(Config{Workers: 2, JournalPath: jp, Faults: Faults{JournalFailEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	st, code := postJob(t, ts, smallGrid)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	fin := waitStatus(t, ts, st.ID, StatusDone, 30*time.Second)
	if fin.Completed != fin.Total {
		t.Fatalf("job under journal faults: %d/%d", fin.Completed, fin.Total)
	}
	if s.metrics.journalErrors.Load() == 0 {
		t.Fatal("injected journal failures left no trace in aggrate_journal_errors_total")
	}
}

// TestKillAfterSpecsTrigger: the KillAfterSpecs fault fires crashFn at
// exactly the configured completion count.
func TestKillAfterSpecsTrigger(t *testing.T) {
	fired := make(chan struct{})
	old := crashFn
	crashFn = func() { close(fired) }
	defer func() { crashFn = old }()

	s, err := New(Config{Workers: 1, Faults: Faults{KillAfterSpecs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	if _, code := postJob(t, ts, smallGrid); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	select {
	case <-fired:
	case <-time.After(30 * time.Second):
		t.Fatal("KillAfterSpecs never fired")
	}
}
