package service

import (
	"container/list"
	"sync"

	"aggrate/internal/experiment"
)

// resultCache is a concurrency-safe LRU over completed experiment results,
// keyed by experiment.SpecKey. Cached *Result values are shared across jobs
// and must be treated as immutable by every reader — the HTTP layer only
// marshals them.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *experiment.Result
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result for key, promoting it to most recent.
func (c *resultCache) get(key string) (*experiment.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add inserts (or refreshes) key, evicting the least recently used entry
// when the cache is over capacity.
func (c *resultCache) add(key string, res *experiment.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	if c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// len reports the live entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
