package service

import (
	"container/list"
	"encoding/json"
	"sync"
	"sync/atomic"

	"aggrate/internal/experiment"
)

// resultCache is a concurrency-safe LRU over completed experiment results,
// keyed by experiment.SpecKey. Cached *Result values are shared across jobs
// and must be treated as immutable by every reader — the HTTP layer only
// marshals them.
//
// Capacity is tracked in approximate encoded bytes (the JSON the HTTP layer
// would emit, plus a fixed per-entry overhead), with the entry count as a
// secondary bound: one n=1e6 result weighs its real ~kilobytes against the
// budget instead of counting the same as a 60-node toy, so maxBytes caps
// actual memory rather than entry count.
type resultCache struct {
	mu       sync.Mutex
	maxItems int
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	res  *experiment.Result
	size int64
}

// cacheEntryOverhead approximates the per-entry bookkeeping (list element,
// map slot, struct headers) added on top of the encoded payload.
const cacheEntryOverhead = 256

func newResultCache(maxItems int, maxBytes int64) *resultCache {
	if maxItems < 1 {
		maxItems = 1
	}
	if maxBytes < 1 {
		maxBytes = 256 << 20
	}
	return &resultCache{
		maxItems: maxItems, maxBytes: maxBytes,
		order: list.New(), items: make(map[string]*list.Element),
	}
}

// approxResultSize is the eviction weight of one cached result: its JSON
// encoding plus key and overhead. Marshal failures (impossible for Result)
// fall back to the overhead alone.
func approxResultSize(key string, res *experiment.Result) int64 {
	n := int64(len(key) + cacheEntryOverhead)
	if b, err := json.Marshal(res); err == nil {
		n += int64(len(b))
	}
	return n
}

// get returns the cached result for key, promoting it to most recent.
func (c *resultCache) get(key string) (*experiment.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add inserts (or refreshes) key, evicting least-recently-used entries until
// both the byte and entry budgets hold. The newest entry always stays, even
// when it alone exceeds maxBytes — refusing it would make the largest
// results permanently uncacheable, the exact case the byte budget exists to
// manage.
func (c *resultCache) add(key string, res *experiment.Result) {
	size := approxResultSize(key, res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.size
		ent.res, ent.size = res, size
		c.order.MoveToFront(el)
		c.evictOver(1)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res, size: size})
	c.bytes += size
	c.evictOver(1)
}

// evictOver drops LRU entries while either budget is exceeded, always
// keeping at least keep entries. Callers hold c.mu.
func (c *resultCache) evictOver(keep int) {
	for c.order.Len() > keep && (c.order.Len() > c.maxItems || c.bytes > c.maxBytes) {
		last := c.order.Back()
		ent := last.Value.(*cacheEntry)
		c.order.Remove(last)
		delete(c.items, ent.key)
		c.bytes -= ent.size
		c.evictions.Add(1)
	}
}

// len reports the live entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// sizeBytes reports the tracked approximate byte footprint.
func (c *resultCache) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
